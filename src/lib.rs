//! # xinsight
//!
//! Facade crate for the XInsight reproduction: re-exports the public API of
//! every workspace crate so examples and downstream users need a single
//! dependency.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use xinsight_baselines as baselines;
pub use xinsight_core as core;
pub use xinsight_data as data;
pub use xinsight_discovery as discovery;
pub use xinsight_graph as graph;
pub use xinsight_service as service;
pub use xinsight_stats as stats;
pub use xinsight_synth as synth;
