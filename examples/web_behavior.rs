//! The WEB case study (user study of Sec. 4.2): explaining why some user
//! cohorts are blocked far more often than others, and checking XInsight's
//! causal claims against the generator's ground truth.
//!
//! ```sh
//! cargo run --release --example web_behavior
//! ```

use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::{ExplainRequest, WhyQuery};
use xinsight::data::{Aggregate, DatasetBuilder, Subspace};
use xinsight::synth::web;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = web::generate(3000, 1);
    println!(
        "simulated WEB dataset: {} users × {} behaviours (+ label)",
        instance.data.n_rows(),
        web::N_BEHAVIORS
    );
    println!(
        "ground-truth causal behaviours: {:?}\n",
        instance.causal_behaviors
    );

    // Re-encode the label as a 0/1 measure so AVG Why Queries apply.
    let blocked: Vec<f64> = (0..instance.data.n_rows())
        .map(|i| {
            if instance.data.value(i, "IsBlocked").unwrap().to_string() == "Yes" {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let mut builder = DatasetBuilder::new();
    for name in instance.data.schema().dimension_names() {
        if name != "IsBlocked" {
            builder = builder.dimension_column(name, instance.data.dimension(name)?.clone());
        }
    }
    let data = builder.measure("BlockedRate", blocked).build()?;

    let engine = XInsight::fit(&data, &XInsightOptions::default())?;

    // Ask: why are users who clicked B00 blocked more often than those who did not?
    let query = WhyQuery::new(
        "BlockedRate",
        Aggregate::Avg,
        Subspace::of("B00", "1"),
        Subspace::of("B00", "0"),
    )?;
    println!("why query: {query}");
    println!("Δ(D) = {:.4}\n", query.delta(&data)?);

    // Per-request top-k: ask the engine for the six best directly.
    let response = engine.execute(&ExplainRequest::builder(query).top_k(6).build())?;
    println!("top explanations:");
    for scored in &response.explanations {
        let e = &scored.explanation;
        let truly_causal = instance.causal_behaviors.iter().any(|b| b == e.attribute());
        println!(
            "  {e}   [generator says: {}]",
            if truly_causal {
                "true cause"
            } else {
                "not a cause"
            }
        );
    }

    // How well do the learned neighbours of the label match the ground truth?
    let graph = engine.graph();
    if let Some(label) = graph.id("BlockedRate") {
        let neighbours: Vec<&str> = graph
            .neighbors(label)
            .into_iter()
            .map(|n| graph.name(n))
            .collect();
        let hits = neighbours
            .iter()
            .filter(|n| instance.causal_behaviors.iter().any(|b| b == *n))
            .count();
        println!(
            "\nlearned neighbours of the label: {neighbours:?} ({hits}/{} true causes recovered)",
            instance.causal_behaviors.len()
        );
    }
    Ok(())
}
