//! Quickstart: the paper's Fig. 1 lung-cancer example, end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds the hypothetical lung-cancer dataset, fits the XInsight
//! engine (FD detection + XLearner), prints the learned causal graph, asks
//! the Why Query of Fig. 1(b) and prints the causal / non-causal explanations
//! of Fig. 1(e).

use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::{ExplainRequest, ExplanationType};
use xinsight::synth::lung_cancer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: a simulated version of Fig. 1(a).
    let data = lung_cancer::generate(5000, 7);
    println!(
        "dataset: {} rows × {} attributes\n",
        data.n_rows(),
        data.n_attributes()
    );

    // 2. Offline phase: learn the FD-augmented PAG (Fig. 1(c)).
    let engine = XInsight::fit(&data, &XInsightOptions::default())?;
    println!("learned causal graph:\n{}\n", engine.graph());

    // 3. Online phase: the Why Query of Fig. 1(b).
    let query = lung_cancer::why_query();
    println!("why query: {query}");
    println!("Δ(D) = {:.3}\n", query.delta_store(engine.data())?);

    // 4. XTranslator: which variables can explain the query, and how?
    let translation = engine.translation(&query);
    println!("XDA semantics (Fig. 1(d)):");
    for (variable, semantics) in translation.iter() {
        println!("  {variable:<12} {semantics:?}");
    }
    println!();

    // 5. XPlainer: quantitative explanations (Fig. 1(e)), via the unified
    //    request/response API.
    println!("explanations:");
    let response = engine.execute(&ExplainRequest::new(query.clone()))?;
    for scored in &response.explanations {
        println!(
            "  #{} {}   (Δ after removal: {})",
            scored.rank,
            scored.explanation,
            scored
                .explanation
                .remaining_delta
                .map(|d| format!("{d:.3}"))
                .unwrap_or_else(|| "-".into())
        );
    }

    // 6. Per-request controls: the same query, narrowed to the single best
    //    causal explanation, with provenance explaining the spend.
    let narrowed = engine.execute(
        &ExplainRequest::builder(query)
            .top_k(1)
            .allow_types([ExplanationType::Causal])
            .include_provenance(true)
            .build(),
    )?;
    if let Some(best) = narrowed.explanations.first() {
        println!("\nbest causal explanation: {}", best.explanation);
    }
    if let Some(provenance) = &narrowed.provenance {
        for (strategy, evaluations) in &provenance.strategy_evaluations {
            println!("  searched via {strategy}: {evaluations} Δ-evaluations");
        }
    }

    // 7. Batched serving: several requests answered through one shared
    //    selection cache and the thread pool (set XINSIGHT_THREADS to pin
    //    the worker count).  Results are identical to one-by-one `execute`.
    let batch = [
        ExplainRequest::new(lung_cancer::why_query()),
        ExplainRequest::new(xinsight::core::WhyQuery::new(
            "LungCancer",
            xinsight::data::Aggregate::Sum,
            xinsight::data::Subspace::of("Location", "A"),
            xinsight::data::Subspace::of("Location", "B"),
        )?),
    ];
    println!("\nbatched ({} requests via execute_batch):", batch.len());
    for (request, response) in batch.iter().zip(engine.execute_batch(&batch)?) {
        println!(
            "  {}  →  {} explanation(s) in {:?}",
            request.query(),
            response.len(),
            response.elapsed
        );
    }
    Ok(())
}
