//! The FLIGHT case study of RQ1 (Fig. 6): why are May flights more delayed
//! than November flights?
//!
//! ```sh
//! cargo run --release --example flight_delay
//! ```
//!
//! The example also demonstrates the lower-level API: running XLearner and
//! XPlainer directly instead of going through the `XInsight` facade.

use xinsight::core::{SearchStrategy, XLearner, XPlainer, XPlainerOptions};
use xinsight::data::{detect_fds, discretize_equal_frequency, FdDetectionOptions, Filter};
use xinsight::stats::{CachedCiTest, ChiSquareTest};
use xinsight::synth::flight;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = flight::generate(30_000, 1);
    let query = flight::why_query();
    println!("why query: {query}");
    println!("Δ(D) = {:.3} minutes", query.delta(&data)?);

    // The paper's headline observation: under Rain = Yes the gap reverses.
    let rainy = Filter::equals("Rain", "Yes").mask(&data)?;
    println!(
        "Δ(D | Rain=Yes) = {:.3} minutes\n",
        query.delta_over(&data, &rainy)?
    );

    // --- Functional dependencies (Month --FD--> Quarter). ---
    let (fds, _) = detect_fds(&data, &FdDetectionOptions::default())?;
    println!("detected functional dependencies:");
    for fd in fds.iter().take(6) {
        println!("  {fd}");
    }
    println!();

    // --- XLearner over the categorical view of the data. ---
    let disc = discretize_equal_frequency(&data, "DelayMinute", 4)?;
    let view = disc.apply(&data, Some("DelayBin"))?;
    let dims: Vec<&str> = view.schema().dimension_names();
    let learner = XLearner::default();
    let test = CachedCiTest::new(ChiSquareTest::new(0.05));
    let learned = learner.learn(&view, &dims, &test)?;
    println!(
        "learned graph ({} CI tests, {} FCI variables):\n{}\n",
        learned.n_ci_tests,
        learned.fci_variables.len(),
        learned.graph
    );

    // --- XPlainer on the Rain attribute (over the single-segment store). ---
    let store = data.into_segmented();
    let xplainer = XPlainer::new(XPlainerOptions::default());
    if let Some(candidate) =
        xplainer.explain_attribute(&store, &query, "Rain", SearchStrategy::Optimized, false)?
    {
        println!(
            "explanation on Rain: {}  (responsibility {:.2})",
            candidate.predicate, candidate.responsibility
        );
    }
    if let Some(candidate) =
        xplainer.explain_attribute(&store, &query, "Carrier", SearchStrategy::Optimized, true)?
    {
        println!(
            "explanation on Carrier: {}  (responsibility {:.2})",
            candidate.predicate, candidate.responsibility
        );
    } else {
        println!("Carrier admits no explanation at the configured ε (as expected: it is month-independent).");
    }
    Ok(())
}
