//! The HOTEL case study of RQ1: why is the July cancellation rate higher than
//! January's?
//!
//! ```sh
//! cargo run --release --example hotel_booking
//! ```
//!
//! Demonstrates explanations over a *discretized measure* (LeadTime), which is
//! how the paper's "LeadTime ≤ 133" explanation arises.

use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::{ExplainRequest, ExplanationType};
use xinsight::synth::hotel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = hotel::generate(30_000, 1);
    let query = hotel::why_query();
    println!("why query: {query}");
    println!(
        "Δ(D) = {:.4} (cancellation-rate gap)\n",
        query.delta(&data)?
    );

    let engine = XInsight::fit(&data, &XInsightOptions::default())?;
    println!("learned causal graph:\n{}\n", engine.graph());

    let explanations = engine
        .execute(&ExplainRequest::new(query.clone()))?
        .into_explanations();
    println!("explanations (causal first):");
    for e in &explanations {
        println!(
            "  {e}  — removing those rows leaves Δ = {}",
            e.remaining_delta
                .map(|d| format!("{d:.4}"))
                .unwrap_or_else(|| "-".into())
        );
    }

    if let Some(lead) = explanations
        .iter()
        .find(|e| e.attribute().starts_with("LeadTime"))
    {
        println!(
            "\nLeadTime verdict: {} explanation via predicate `{}`",
            match lead.explanation_type {
                ExplanationType::Causal => "causal",
                ExplanationType::NonCausal => "non-causal",
            },
            lead.predicate
        );
    }
    Ok(())
}
