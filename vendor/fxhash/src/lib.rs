//! Offline shim for the `rustc-hash`/`fxhash` crates.
//!
//! A non-cryptographic, seedable multiply-rotate hasher for the fit path,
//! where keys are dense `u32`/`u64` ids (interned variable ids, packed node
//! pairs) and SipHash's per-lookup cost is pure overhead.  The mixing step is
//! the Firefox/rustc "Fx" construction: fold each word into the state with a
//! rotate, xor, and odd-constant multiply.
//!
//! Determinism matters more than DoS resistance here: the default seed is
//! fixed, so iteration-independent structures (lookup maps, dedup sets) hash
//! identically across runs.  Nothing on the fit path iterates one of these
//! maps into output — anything serialized or rendered still goes through
//! ordered structures (see `clippy.toml`'s HashMap policy).

#![warn(missing_docs)]

use std::hash::{BuildHasher, Hasher};

/// 64-bit mixing constant: `2^64 / φ`, rounded to odd (same constant rustc
/// uses).  Odd multipliers are bijective mod 2^64, so no key information is
/// destroyed by the multiply.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// Left-rotation applied before each fold; 5 is the empirical sweet spot the
/// original Firefox implementation settled on for short keys.
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher.  One `u64` of state; each written word is
/// folded in with `state = (state.rotate_left(5) ^ word) * K`.
#[derive(Debug, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    /// A hasher starting from `seed` (the default hasher uses seed 0).
    #[inline]
    pub fn with_seed(seed: u64) -> FxHasher {
        FxHasher { state: seed }
    }

    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(K);
    }
}

impl Default for FxHasher {
    #[inline]
    fn default() -> FxHasher {
        FxHasher::with_seed(0)
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the slice, then the sub-word tail, then the
        // length (so "ab" + "c" != "a" + "bc" for composite keys).
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.fold(u64::from_le_bytes(word));
        }
        self.fold(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.fold(u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.fold(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.fold(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.fold(value);
    }

    #[inline]
    fn write_u128(&mut self, value: u128) {
        self.fold(value as u64);
        self.fold((value >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.fold(value as u64);
    }

    #[inline]
    fn write_i8(&mut self, value: i8) {
        self.write_u8(value as u8);
    }

    #[inline]
    fn write_i16(&mut self, value: i16) {
        self.write_u16(value as u16);
    }

    #[inline]
    fn write_i32(&mut self, value: i32) {
        self.write_u32(value as u32);
    }

    #[inline]
    fn write_i64(&mut self, value: i64) {
        self.write_u64(value as u64);
    }

    #[inline]
    fn write_isize(&mut self, value: isize) {
        self.write_usize(value as usize);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s from a fixed seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher {
    seed: u64,
}

impl FxBuildHasher {
    /// A build-hasher whose hashers all start from `seed`.  Two maps built
    /// with the same seed hash identically; distinct seeds decorrelate
    /// nested tables.
    #[inline]
    pub fn with_seed(seed: u64) -> FxBuildHasher {
        FxBuildHasher { seed }
    }
}

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::with_seed(self.seed)
    }
}

// The aliases below are the one sanctioned spelling of std's HashMap/HashSet
// on the fit path (see clippy.toml's disallowed-types policy): integer-keyed
// interior state that never leaks iteration order into output.
#[allow(clippy::disallowed_types)]
mod aliases {
    use super::FxBuildHasher;

    /// A `HashMap` seeded with the deterministic Fx hasher.
    pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

    /// A `HashSet` seeded with the deterministic Fx hasher.
    pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
}

pub use aliases::{FxHashMap, FxHashSet};

/// Hashes one value with the default-seeded [`FxHasher`] — convenience for
/// fingerprints and tests.
#[inline]
pub fn hash64<T: std::hash::Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash64(&42u32), hash64(&42u32));
        assert_eq!(hash64(&"skeleton"), hash64(&"skeleton"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let hashes: Vec<u64> = (0u32..64).map(|v| hash64(&v)).collect();
        let mut deduped = hashes.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), hashes.len(), "nearby ids must not collide");
    }

    #[test]
    fn seed_changes_hashes() {
        let mut a = FxHasher::with_seed(1);
        let mut b = FxHasher::with_seed(2);
        a.write_u64(7);
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_framing_includes_length() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        a.write(b"c");
        let mut b = FxHasher::default();
        b.write(b"a");
        b.write(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(3, "three");
        assert_eq!(map.get(&3), Some(&"three"));

        let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
        set.insert((1, 2));
        assert!(set.contains(&(1, 2)));
        assert!(!set.contains(&(2, 1)));
    }

    #[test]
    fn seeded_builder_is_reproducible() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::with_seed(9);
        assert_eq!(build.hash_one(123u64), build.hash_one(123u64));
    }
}
