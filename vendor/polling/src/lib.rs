//! Vendored shim of the [`polling`](https://docs.rs/polling) crate: a
//! portable readiness poller for non-blocking sockets.
//!
//! The build environment is offline, so — like the other `vendor/` crates —
//! this shim re-implements exactly the API subset the workspace uses on top
//! of `std` plus a handful of hand-declared libc syscall bindings:
//!
//! * [`Poller::new`], [`Poller::add`], [`Poller::modify`],
//!   [`Poller::delete`], [`Poller::wait`], [`Poller::notify`];
//! * [`Event`] / [`Events`].
//!
//! Two backends, chosen at [`Poller::new`] time:
//!
//! * **epoll(7)** on Linux — O(1) readiness delivery, the backend that lets
//!   thousands of idle connections park in the kernel for free;
//! * **poll(2)** everywhere else (or on Linux when the environment variable
//!   `POLLING_BACKEND=poll` forces it, which is how CI exercises the
//!   fallback) — O(n) per wait, but strictly POSIX-portable so the test
//!   suite passes on any unix.
//!
//! Semantics follow the real crate: registrations are **oneshot** — after an
//! event is delivered for a source, that source is not polled again until it
//! is re-armed with [`Poller::modify`].  [`Poller::notify`] wakes a
//! concurrent [`Poller::wait`] from any thread (self-pipe; the wakeup is
//! *not* reported as an event).  Closed/errored peers are reported with both
//! `readable` and `writable` set so the caller's next I/O attempt surfaces
//! the error.

#![warn(missing_docs)]
#![cfg(unix)]
// HashMap here never leaks iteration order into output: fd registry; snapshot order does not matter to poll(2) (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::io;
use std::os::raw::{c_int, c_short};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

/// Interest in (or readiness of) a single source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier echoed back with readiness events.
    pub key: usize,
    /// Interested in / ready for reading.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest: the source stays registered but disarmed until the next
    /// [`Poller::modify`].
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// A buffer of events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    list: Vec<Event>,
}

impl Events {
    /// An empty event buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// Iterates over the events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.list.iter().copied()
    }

    /// Number of delivered events.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the last wait delivered no events.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Clears the buffer (also done by [`Poller::wait`] itself).
    pub fn clear(&mut self) {
        self.list.clear();
    }
}

// ---------------------------------------------------------------------------
// Hand-declared syscall bindings (the workspace has no libc crate).
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
type NfdsT = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::os::raw::c_uint;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;

const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    use super::c_int;

    // x86_64 declares `struct epoll_event` packed; other architectures use
    // natural alignment (mirrors the real libc definitions).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLONESHOT: u32 = 1 << 30;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A nonblocking self-pipe: `notify` writes one byte, `drain` reads until
/// empty.  Used by both backends to make [`Poller::notify`] wake a
/// concurrent [`Poller::wait`].
#[derive(Debug)]
struct NotifyPipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl NotifyPipe {
    fn new() -> io::Result<NotifyPipe> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a valid, writable 2-element c_int array, exactly
        // what pipe(2) requires; `check` surfaces failure before use.
        check(unsafe { pipe(fds.as_mut_ptr()) })?;
        for fd in fds {
            // SAFETY: `fd` came from the successful pipe(2) call above and
            // has not been closed; F_SETFL/O_NONBLOCK takes no pointer.
            check(unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) })?;
        }
        Ok(NotifyPipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    fn notify(&self) {
        // A full pipe is fine: the pending byte already guarantees a wakeup.
        let byte = 1u8;
        // SAFETY: `byte` is a live one-byte buffer and `write_fd` is the
        // open write end owned by self; a short/failed write is acceptable.
        unsafe { write(self.write_fd, &byte, 1) };
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        // SAFETY: `buf` is a writable 64-byte buffer whose length is passed
        // alongside it, and `read_fd` is the open read end owned by self.
        while unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

impl Drop for NotifyPipe {
    fn drop(&mut self) {
        // SAFETY: both fds are owned exclusively by this NotifyPipe and are
        // closed exactly once, here.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// Sentinel key for the internal notify pipe (never reported to callers).
const NOTIFY_KEY: u64 = u64::MAX;

fn timeout_millis(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(t) => {
            // Round up so a 100µs timeout polls for 1ms instead of spinning.
            let ms = t.as_millis();
            let ms = if Duration::from_millis(ms as u64) < t {
                ms + 1
            } else {
                ms
            };
            ms.min(c_int::MAX as u128) as c_int
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend (Linux).
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
#[derive(Debug)]
struct EpollBackend {
    epfd: RawFd,
    pipe: NotifyPipe,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new() -> io::Result<EpollBackend> {
        use epoll_sys::*;
        // SAFETY: epoll_create1 takes no pointers; `check` surfaces failure.
        let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let pipe = match NotifyPipe::new() {
            Ok(p) => p,
            Err(e) => {
                // SAFETY: `epfd` was just created above, is owned here, and
                // is closed exactly once on this early-exit path.
                unsafe { close(epfd) };
                return Err(e);
            }
        };
        // The notify pipe is level-triggered and permanent (not oneshot):
        // it must wake every wait until drained.
        let mut ev = EpollEvent {
            events: EPOLLIN,
            data: NOTIFY_KEY,
        };
        // SAFETY: `epfd` and `pipe.read_fd` are live fds owned above, and
        // `ev` is a properly initialized EpollEvent that outlives the call.
        if let Err(e) = check(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, pipe.read_fd, &mut ev) }) {
            // SAFETY: `epfd` is owned here and closed exactly once on this
            // early-exit path (the pipe closes itself on drop).
            unsafe { close(epfd) };
            return Err(e);
        }
        Ok(EpollBackend { epfd, pipe })
    }

    fn flags(interest: Event) -> u32 {
        use epoll_sys::*;
        let mut flags = EPOLLONESHOT;
        if interest.readable {
            flags |= EPOLLIN;
        }
        if interest.writable {
            flags |= EPOLLOUT;
        }
        flags
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: Event) -> io::Result<()> {
        let mut ev = epoll_sys::EpollEvent {
            events: Self::flags(interest),
            data: interest.key as u64,
        };
        // SAFETY: `self.epfd` is the live epoll fd owned by this backend,
        // `ev` is initialized and outlives the call; an invalid caller `fd`
        // is reported as EBADF by the kernel, not UB.
        check(unsafe { epoll_sys::epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        use epoll_sys::*;
        let mut buf = [EpollEvent { events: 0, data: 0 }; 512];
        // SAFETY: `buf` is a writable array whose true capacity is passed
        // alongside it, and `self.epfd` is the live epoll fd owned here.
        let n = unsafe {
            epoll_wait(
                self.epfd,
                buf.as_mut_ptr(),
                buf.len() as c_int,
                timeout_millis(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for raw in buf.iter().take(n as usize) {
            let (data, got) = (raw.data, raw.events);
            if data == NOTIFY_KEY {
                self.pipe.drain();
                continue;
            }
            // ERR/HUP are delivered regardless of interest: report the
            // source as ready for everything so the caller's next I/O
            // attempt observes the failure.
            let broken = got & (EPOLLERR | EPOLLHUP) != 0;
            events.list.push(Event {
                key: data as usize,
                readable: got & EPOLLIN != 0 || broken,
                writable: got & EPOLLOUT != 0 || broken,
            });
        }
        Ok(events.list.len())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollBackend {
    fn drop(&mut self) {
        // SAFETY: `epfd` is owned exclusively by this backend and closed
        // exactly once, here.
        unsafe { close(self.epfd) };
    }
}

// ---------------------------------------------------------------------------
// poll(2) fallback backend (any unix).
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct PollBackend {
    registry: Mutex<HashMap<RawFd, Event>>,
    pipe: NotifyPipe,
}

impl PollBackend {
    fn new() -> io::Result<PollBackend> {
        Ok(PollBackend {
            registry: Mutex::new(HashMap::new()),
            pipe: NotifyPipe::new()?,
        })
    }

    fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        // Snapshot the armed interests, then release the lock across the
        // blocking poll so notify()/registration calls never deadlock.
        let mut fds = vec![PollFd {
            fd: self.pipe.read_fd,
            events: POLLIN,
            revents: 0,
        }];
        {
            let registry = self.registry.lock().expect("polling registry");
            for (&fd, interest) in registry.iter() {
                let mut mask: c_short = 0;
                if interest.readable {
                    mask |= POLLIN;
                }
                if interest.writable {
                    mask |= POLLOUT;
                }
                if mask != 0 {
                    fds.push(PollFd {
                        fd,
                        events: mask,
                        revents: 0,
                    });
                }
            }
        }
        // SAFETY: `fds` is a live, writable PollFd vector whose true length
        // is passed alongside its pointer; poll(2) writes only `revents`.
        let n = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as NfdsT,
                timeout_millis(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        let mut registry = self.registry.lock().expect("polling registry");
        for pfd in &fds {
            if pfd.revents == 0 {
                continue;
            }
            if pfd.fd == self.pipe.read_fd {
                self.pipe.drain();
                continue;
            }
            let Some(interest) = registry.get_mut(&pfd.fd) else {
                continue; // deleted while we were polling
            };
            let broken = pfd.revents & (POLLERR | POLLHUP) != 0;
            events.list.push(Event {
                key: interest.key,
                readable: pfd.revents & POLLIN != 0 || broken,
                writable: pfd.revents & POLLOUT != 0 || broken,
            });
            // Oneshot: disarm until the caller re-arms with modify().
            interest.readable = false;
            interest.writable = false;
        }
        Ok(events.list.len())
    }
}

// ---------------------------------------------------------------------------
// Public poller.
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    Poll(PollBackend),
}

/// A readiness poller over a set of registered sources.
///
/// Registrations are **oneshot**: after an event is delivered for a source
/// the source is disarmed until re-armed with [`Poller::modify`].
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Creates a poller on the best available backend: epoll(7) on Linux
    /// (unless `POLLING_BACKEND=poll` forces the fallback), poll(2)
    /// elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let force_poll = std::env::var("POLLING_BACKEND")
                .map(|v| v == "poll")
                .unwrap_or(false);
            if !force_poll {
                return Ok(Poller {
                    backend: Backend::Epoll(EpollBackend::new()?),
                });
            }
        }
        Ok(Poller {
            backend: Backend::Poll(PollBackend::new()?),
        })
    }

    /// Creates a poller on the portable poll(2) backend regardless of
    /// platform — used by tests to exercise the fallback explicitly.
    #[doc(hidden)]
    pub fn new_poll_fallback() -> io::Result<Poller> {
        Ok(Poller {
            backend: Backend::Poll(PollBackend::new()?),
        })
    }

    /// The backend's name, for diagnostics (`"epoll"` or `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    /// Registers a source with an initial interest.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(epoll_sys::EPOLL_CTL_ADD, fd, interest),
            Backend::Poll(pb) => {
                let mut registry = pb.registry.lock().expect("polling registry");
                if registry.insert(fd, interest).is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "source already registered",
                    ));
                }
                Ok(())
            }
        }
    }

    /// Re-arms (or changes) a registered source's interest.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(epoll_sys::EPOLL_CTL_MOD, fd, interest),
            Backend::Poll(pb) => {
                let mut registry = pb.registry.lock().expect("polling registry");
                match registry.get_mut(&fd) {
                    Some(slot) => {
                        *slot = interest;
                        Ok(())
                    }
                    None => Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "source is not registered",
                    )),
                }
            }
        }
    }

    /// Deregisters a source.  Must be called before closing the fd.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(epoll_sys::EPOLL_CTL_DEL, fd, Event::none(0)),
            Backend::Poll(pb) => pb
                .registry
                .lock()
                .expect("polling registry")
                .remove(&fd)
                .map(|_| ())
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "source is not registered")),
        }
    }

    /// Blocks until at least one registered source is ready, `timeout`
    /// elapses (`None` = forever), or [`Poller::notify`] is called.
    ///
    /// Clears `events`, fills it with the ready sources, and returns their
    /// count (`0` on timeout or notify).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.wait(events, timeout),
            Backend::Poll(pb) => pb.wait(events, timeout),
        }
    }

    /// Wakes a concurrent (or the next) [`Poller::wait`] from any thread.
    /// The wakeup is not reported as an event.
    pub fn notify(&self) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.pipe.notify(),
            Backend::Poll(pb) => pb.pipe.notify(),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // thread::sleep allowed: tests stage a delayed cross-thread notify (see clippy.toml).
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pollers() -> Vec<Poller> {
        #[allow(unused_mut)]
        let mut list = vec![Poller::new_poll_fallback().unwrap()];
        #[cfg(target_os = "linux")]
        list.push(Poller::new().unwrap());
        list
    }

    /// A connected nonblocking socket pair.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_fires_once_until_rearmed() {
        for poller in pollers() {
            let (a, mut b) = socket_pair();
            poller.add(&a, Event::readable(7)).unwrap();
            let mut events = Events::new();

            // Nothing to read yet: timeout, no events.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{}", poller.backend_name());

            b.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            let got: Vec<Event> = events.iter().collect();
            assert_eq!(got.len(), 1, "{}", poller.backend_name());
            assert_eq!(got[0].key, 7);
            assert!(got[0].readable);

            // Oneshot: the byte is still unread, but the source is disarmed.
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(events.is_empty(), "{}", poller.backend_name());

            // Re-arm: fires again.
            poller.modify(&a, Event::readable(7)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(events.len(), 1, "{}", poller.backend_name());

            poller.delete(&a).unwrap();
        }
    }

    #[test]
    fn writable_and_peer_close_are_reported() {
        for poller in pollers() {
            let (mut a, b) = socket_pair();
            poller.add(&a, Event::writable(1)).unwrap();
            let mut events = Events::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(events.iter().any(|e| e.key == 1 && e.writable));

            // Peer closes: a readable-armed source reports readiness (read
            // will observe EOF).
            poller.modify(&a, Event::readable(1)).unwrap();
            drop(b);
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 1 && e.readable),
                "{}",
                poller.backend_name()
            );
            let mut buf = [0u8; 8];
            assert_eq!(a.read(&mut buf).unwrap(), 0, "EOF after peer close");
            poller.delete(&a).unwrap();
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        for poller in pollers() {
            let poller = std::sync::Arc::new(poller);
            let waker = std::sync::Arc::clone(&poller);
            let started = Instant::now();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.notify().unwrap();
            });
            let mut events = Events::new();
            // Without the notify this would block for 10 seconds.
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(events.is_empty(), "notify is not an event");
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "notify must wake the wait promptly ({})",
                poller.backend_name()
            );
            handle.join().unwrap();
        }
    }
}
