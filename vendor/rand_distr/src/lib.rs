//! Offline shim for the `rand_distr` crate.
//!
//! Provides [`Distribution`], [`Normal`] (Marsaglia polar method) and
//! [`Dirichlet`] (normalized Gamma draws via Marsaglia–Tsang), which is all
//! this workspace samples.

#![warn(missing_docs)]

use rand::{Rng, RngCore};

/// Types that can draw samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; fails when `std_dev` is negative or
    /// non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; one of the pair is discarded because
        // `sample(&self)` has no mutable state to stash the spare in.
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

/// Error returned by [`Dirichlet::new`] for invalid concentrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirichletError;

impl std::fmt::Display for DirichletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Dirichlet needs >= 2 strictly positive concentrations")
    }
}

impl std::error::Error for DirichletError {}

/// The Dirichlet distribution over the probability simplex.
#[derive(Debug, Clone)]
pub struct Dirichlet {
    alpha: Vec<f64>,
}

impl Dirichlet {
    /// Creates a Dirichlet distribution from concentration parameters.
    pub fn new(alpha: &[f64]) -> Result<Self, DirichletError> {
        if alpha.len() < 2 || alpha.iter().any(|&a| !a.is_finite() || a <= 0.0) {
            return Err(DirichletError);
        }
        Ok(Dirichlet {
            alpha: alpha.to_vec(),
        })
    }
}

impl Distribution<Vec<f64>> for Dirichlet {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut draws: Vec<f64> = self.alpha.iter().map(|&a| gamma_sample(rng, a)).collect();
        let total: f64 = draws.iter().sum();
        if total <= 0.0 {
            // All draws underflowed; fall back to the simplex centre.
            let uniform = 1.0 / draws.len() as f64;
            draws.iter_mut().for_each(|d| *d = uniform);
        } else {
            draws.iter_mut().for_each(|d| *d /= total);
        }
        draws
    }
}

/// Gamma(shape, 1) sampling via Marsaglia–Tsang, with the standard boosting
/// trick for `shape < 1`.
fn gamma_sample<R: RngCore + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) · U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn normal_moments() {
        let dist = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let dist = Dirichlet::new(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let p = dist.sample(&mut rng);
            assert_eq!(p.len(), 4);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_rejects_bad_alpha() {
        assert!(Dirichlet::new(&[1.0]).is_err());
        assert!(Dirichlet::new(&[1.0, 0.0]).is_err());
    }
}
