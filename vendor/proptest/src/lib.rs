//! Offline shim for the `proptest` crate.
//!
//! Supports the subset of proptest's surface this workspace's property tests
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, `any::<T>()`, range strategies and
//! `prop::collection::vec`.
//!
//! Differences from the real crate: cases are generated from a seed derived
//! deterministically from the test name (reproducible across runs and
//! platforms), and failing cases are **not shrunk** — the panic message
//! reports the case index and seed instead.

#![warn(missing_docs)]

/// Strategies: descriptions of how to generate random values.
pub mod strategy {
    use rand::prelude::*;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64, f32);

    /// Marker returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Strategy for Any<u8> {
        type Value = u8;
        fn generate(&self, rng: &mut StdRng) -> u8 {
            rng.gen_range(0..=u8::MAX)
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut StdRng) -> u64 {
            rng.gen()
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            // Finite, sign-balanced, spanning several orders of magnitude.
            let mag = rng.gen_range(-6.0..6.0);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            sign * 10f64.powf(mag)
        }
    }

    /// Length specification for collection strategies.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a vector strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The `prop` module alias used by `prop::collection::vec(...)`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// The test runner and its configuration.
pub mod test_runner {
    use rand::prelude::*;

    /// How a single generated case ended.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case does not count.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Drives the generated cases of one property test.
    pub struct TestRunner {
        config: ProptestConfig,
        base_seed: u64,
        name: &'static str,
    }

    impl TestRunner {
        /// Creates a runner whose RNG seed derives from the test name (FNV-1a),
        /// so each property gets a distinct but reproducible stream.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            let mut seed: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            TestRunner {
                config,
                base_seed: seed,
                name,
            }
        }

        /// Number of cases to attempt.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG for one case index.
        pub fn rng_for_case(&self, case: u32) -> StdRng {
            StdRng::seed_from_u64(self.base_seed.wrapping_add(case as u64))
        }

        /// Reacts to a case outcome: panics on failure, ignores rejections.
        pub fn handle(&self, case: u32, outcome: Result<(), TestCaseError>) {
            match outcome {
                Ok(()) | Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(message)) => panic!(
                    "property '{}' failed at case {} (seed {:#x}): {}",
                    self.name,
                    case,
                    self.base_seed.wrapping_add(case as u64),
                    message
                ),
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with a formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Rejects the current case when its generated inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)` item
/// becomes a regular `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let runner =
                $crate::test_runner::TestRunner::new($config, stringify!($name));
            for case in 0..runner.cases() {
                let mut proptest_rng = runner.rng_for_case(case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strategy),
                        &mut proptest_rng,
                    );
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                runner.handle(case, outcome);
            }
        }
    )*};
}

/// Everything property tests normally import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vectors_respect_size_spec(v in prop::collection::vec(any::<bool>(), 2..5),
                                     exact in prop::collection::vec(0u8..4, 7)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(exact.len(), 7);
            prop_assert!(exact.iter().all(|&b| b < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn config_header_is_honoured(seed in 0u64..100) {
            // 16 cases only; rejection path must not fail the test.
            prop_assume!(seed != 1);
            prop_assert!(seed < 100);
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails'")]
    // The macro deliberately expands to an inner `#[test]` fn here, which the
    // harness cannot collect — this test calls it by hand instead.
    #[allow(unnameable_test_items)]
    fn failures_panic_with_case_info() {
        proptest! {
            #[test]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
