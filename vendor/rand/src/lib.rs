//! Offline shim for the `rand` crate.
//!
//! Provides the subset of rand 0.8's API this workspace uses: the [`Rng`] /
//! [`SeedableRng`] / [`RngCore`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64 — deterministic but **not**
//! bit-compatible with the real crate's ChaCha-based StdRng), uniform
//! `gen` / `gen_range` sampling for the primitive types the workspace draws,
//! and [`seq::SliceRandom::shuffle`].

#![warn(missing_docs)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's raw bit stream
/// (the shim's stand-in for rand's `Standard` distribution).
pub trait UniformSample: Sized {
    /// Draws one uniformly-distributed value.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl UniformSample for bool {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for u64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for usize {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that `Rng::gen_range` can sample values of type `T` from.  The
/// type parameter (rather than an associated type) matters: it lets the
/// compiler infer an integer range literal's type from the *use site* of the
/// sampled value (e.g. `slice[rng.gen_range(0..3)]` types the range as
/// `Range<usize>`), exactly as the real crate does.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping: bias is < 2^-64 per
                // draw, far below anything these generators can resolve.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_uniform(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f32::sample_uniform(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value of type `T`.
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_uniform(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64.  Deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly-chosen reference, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The traits and types most code wants in scope.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.8..0.9);
            assert!((-0.8..0.9).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
