//! Offline shim for the `parking_lot` crate.
//!
//! Exposes `Mutex` and `RwLock` with parking_lot's non-poisoning API,
//! implemented as thin wrappers over `std::sync`.  A thread that panics while
//! holding a lock simply releases it (the poison flag is swallowed), which
//! matches parking_lot's semantics closely enough for this workspace.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.  Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed
    /// through `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock with parking_lot's non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.  Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.  Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
