//! Offline shim for the `rayon` crate.
//!
//! Implements the subset of rayon's API this workspace uses — `par_iter` /
//! `into_par_iter` with `map` / `filter` / `filter_map` / `for_each` /
//! `collect`, plus [`ThreadPoolBuilder::build_global`] and
//! [`current_num_threads`] — on top of `std::thread::scope`.
//!
//! Work is distributed over an atomic index counter (self-scheduling loop),
//! so uneven per-item cost balances across workers; there is no work
//! stealing.  Adaptors evaluate eagerly: each `map`/`filter` call runs its
//! stage in parallel and materializes the intermediate `Vec`.  That costs an
//! allocation per stage but keeps the shim small, and every pipeline in this
//! workspace is one or two stages long.
//!
//! Worker threads are spawned per call (scoped), but drawn from a **global
//! budget** of `current_num_threads() − 1` extras: nested parallel calls that
//! find the budget drained run serially inline, so total live workers never
//! exceed the configured thread count no matter how deeply parallel stages
//! nest — and nested calls can never deadlock waiting on each other.
//!
//! Thread count resolution order: [`ThreadPoolBuilder::num_threads`] via
//! `build_global`, else the `RAYON_NUM_THREADS` environment variable, else
//! `std::thread::available_parallelism()`.  Parallel calls fall back to a
//! plain serial loop when one thread is configured or the input is tiny, so
//! results (and their order) are identical either way.

#![warn(missing_docs)]
// HashMap here never leaks iteration order into output: interior bookkeeping; results re-ordered by index (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

/// Error returned when the global pool was already configured.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring rayon's global-pool configuration.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; `0` means automatic.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally.  Fails if the pool size was
    /// already fixed by an earlier call (or by a parallel operation that
    /// latched the default).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let wanted = if self.num_threads == 0 {
            default_thread_count()
        } else {
            self.num_threads
        };
        match GLOBAL_THREADS.set(wanted) {
            Ok(()) => Ok(()),
            Err(_) if GLOBAL_THREADS.get() == Some(&wanted) => Ok(()),
            Err(_) => Err(ThreadPoolBuildError),
        }
    }
}

fn default_thread_count() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The number of threads parallel operations will use.
pub fn current_num_threads() -> usize {
    *GLOBAL_THREADS.get_or_init(default_thread_count)
}

/// Global budget of *extra* worker threads (beyond the calling thread).
/// Real rayon has one fixed pool; this shim spawns scoped threads per call,
/// so without a cap, nested parallel calls (queries → attributes → probe
/// loops) would multiply into far more live threads than cores.  Every
/// `parallel_apply` reserves workers from this budget and releases them when
/// done; a call that gets none — e.g. because it is already running *on* a
/// worker of an outer parallel call that drained the budget — simply runs
/// serially inline, which also rules out nested-wait deadlocks.
static WORKER_BUDGET: OnceLock<AtomicUsize> = OnceLock::new();

fn worker_budget() -> &'static AtomicUsize {
    WORKER_BUDGET.get_or_init(|| AtomicUsize::new(current_num_threads().saturating_sub(1)))
}

fn reserve_workers(want: usize) -> usize {
    let budget = worker_budget();
    // relaxed: the budget is a standalone admission counter — the CAS loop
    // only needs atomicity; thread handoff is synchronized by spawn/join.
    let mut available = budget.load(Ordering::Relaxed);
    loop {
        let take = available.min(want);
        if take == 0 {
            return 0;
        }
        // relaxed: see above — no data is published via the budget.
        match budget.compare_exchange_weak(
            available,
            available - take,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return take,
            Err(now) => available = now,
        }
    }
}

fn release_workers(n: usize) {
    if n > 0 {
        // relaxed: admission counter only; join already ordered the work.
        worker_budget().fetch_add(n, Ordering::Relaxed);
    }
}

/// Runs `f` over each owned item, in parallel, preserving input order in the
/// returned vector.  The core driver every adaptor bottoms out in.
fn parallel_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    // Below this size thread spawn overhead dominates any conceivable win.
    if threads <= 1 || n < 4 {
        return items.into_iter().map(f).collect();
    }
    let extra = reserve_workers(threads - 1);
    if extra == 0 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let drain = |out: &mut Vec<(usize, R)>| loop {
        // relaxed: work cursor; atomicity alone partitions the indices and
        // each slot's Mutex orders the item handoff.
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = slots[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("each slot is drained exactly once");
        out.push((i, f(item)));
    };
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..extra)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    drain(&mut out);
                    out
                })
            })
            .collect();
        // The calling thread is a worker too.
        let mut all = Vec::new();
        drain(&mut all);
        for handle in handles {
            all.extend(handle.join().expect("worker panicked"));
        }
        all
    });
    release_workers(extra);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Parallel iterator traits and adaptors.
pub mod iter {
    use super::parallel_apply;

    /// Conversion into a parallel iterator over owned items.
    pub trait IntoParallelIterator {
        /// The item type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Conversion into a parallel iterator over `&T` items (rayon's
    /// `par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// The item type (a reference).
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Returns a parallel iterator borrowing from `self`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// A data-parallel iterator.  Adaptors evaluate eagerly (see the crate
    /// docs); `Vec`-collecting terminals are free because the items are
    /// already materialized in order.
    pub trait ParallelIterator: Sized {
        /// The item type.
        type Item: Send;

        /// Drains this iterator into an ordered `Vec` (internal driver).
        fn drive(self) -> Vec<Self::Item>;

        /// Parallel map.
        fn map<R, F>(self, f: F) -> Eager<R>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Eager(parallel_apply(self.drive(), f))
        }

        /// Parallel filter.
        fn filter<F>(self, keep: F) -> Eager<Self::Item>
        where
            F: Fn(&Self::Item) -> bool + Sync,
        {
            Eager(
                parallel_apply(self.drive(), |x| if keep(&x) { Some(x) } else { None })
                    .into_iter()
                    .flatten()
                    .collect(),
            )
        }

        /// Parallel filter-map.
        fn filter_map<R, F>(self, f: F) -> Eager<R>
        where
            R: Send,
            F: Fn(Self::Item) -> Option<R> + Sync,
        {
            Eager(
                parallel_apply(self.drive(), f)
                    .into_iter()
                    .flatten()
                    .collect(),
            )
        }

        /// Parallel for-each.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            parallel_apply(self.drive(), f);
        }

        /// Number of items.
        fn count(self) -> usize {
            self.drive().len()
        }

        /// Collects into a container (only `Vec` and `Result`-of-`Vec`
        /// targets are provided).
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_ordered_items(self.drive())
        }
    }

    /// Containers a parallel iterator can collect into.
    pub trait FromParallelIterator<T> {
        /// Builds the container from items already in order.
        fn from_ordered_items(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_items(items: Vec<T>) -> Self {
            items
        }
    }

    impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
        fn from_ordered_items(items: Vec<Result<T, E>>) -> Self {
            items.into_iter().collect()
        }
    }

    /// An already-evaluated parallel stage.
    pub struct Eager<T>(Vec<T>);

    impl<T: Send> ParallelIterator for Eager<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.0
        }
    }

    /// Parallel iterator over an owned `Vec`.
    pub struct VecIter<T>(Vec<T>);

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.0
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter(self)
        }
    }

    /// Parallel iterator over slice references.
    pub struct SliceIter<'a, T>(&'a [T]);

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;
        fn drive(self) -> Vec<&'a T> {
            self.0.iter().collect()
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter(self)
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter(self.as_slice())
        }
    }

    macro_rules! impl_range_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = VecIter<$t>;
                fn into_par_iter(self) -> VecIter<$t> {
                    VecIter(self.collect())
                }
            }
        )*};
    }

    impl_range_par_iter!(usize, u64, u32, i64, i32);
}

/// The traits most code wants in scope.
pub mod prelude {
    pub use super::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    // thread::sleep allowed: tests hold workers alive to observe overlap (see clippy.toml).
    #![allow(clippy::disallowed_methods)]
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_and_owned_vecs() {
        let squares: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[99], 99 * 99);
        let owned: Vec<String> = vec!["a".to_string(), "b".to_string()]
            .into_par_iter()
            .map(|s| s + "!")
            .collect();
        assert_eq!(owned, vec!["a!", "b!"]);
    }

    #[test]
    fn filter_and_filter_map() {
        let evens: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .collect();
        assert_eq!(evens.len(), 50);
        let halves: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 0).then_some(x / 2))
            .collect();
        assert_eq!(halves, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        if super::current_num_threads() < 2 {
            return; // single-core CI; nothing to assert
        }
        let ids: Vec<std::thread::ThreadId> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                // Keep workers alive long enough to overlap.
                std::thread::sleep(std::time::Duration::from_millis(2));
                std::thread::current().id()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on >1 thread");
    }

    #[test]
    fn nested_parallelism_stays_within_the_worker_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let track = || {
            let now = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        };
        // Outer × inner parallel stages; naive per-call spawning would peak
        // near outer_n × threads concurrent workers.
        let _: Vec<Vec<usize>> = (0..8usize)
            .into_par_iter()
            .map(|_| {
                (0..8usize)
                    .into_par_iter()
                    .map(|j| {
                        track();
                        j
                    })
                    .collect()
            })
            .collect();
        let cap = super::current_num_threads();
        assert!(
            PEAK.load(Ordering::SeqCst) <= cap.max(1),
            "peak {} exceeded thread budget {}",
            PEAK.load(Ordering::SeqCst),
            cap
        );
    }

    #[test]
    fn collect_into_result() {
        let ok: Result<Vec<usize>, String> = (0..10usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|x| {
                if x == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }
}
