//! Offline shim for the `criterion` crate.
//!
//! Runs each benchmark closure with a short warmup, then measures a fixed
//! number of timed samples (default 20, configurable per group via
//! [`BenchmarkGroup::sample_size`]) and prints `mean [min .. max]` wall-clock
//! times.  No statistical regression analysis, plots or baselines — just
//! honest timings, which is what the workspace's micro-benchmarks need.
//!
//! Set `XINSIGHT_BENCH_FAST=1` to cap every benchmark at 3 samples (used to
//! smoke-test that benches still run).

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (identity function with an
/// opaque barrier).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for one benchmark within a group, rendered `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `routine`, collecting the configured number of samples after a
    /// warmup run.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warmup + lazy-init
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

fn fast_mode() -> bool {
    std::env::var("XINSIGHT_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let samples = if fast_mode() { samples.min(3) } else { samples };
    let mut bencher = Bencher::new(samples);
    f(&mut bencher);
    if bencher.results.is_empty() {
        println!("{label:<55} (no samples)");
        return;
    }
    let total: Duration = bencher.results.iter().sum();
    let mean = total / bencher.results.len() as u32;
    let min = *bencher.results.iter().min().expect("non-empty");
    let max = *bencher.results.iter().max().expect("non-empty");
    println!(
        "{label:<55} time: {:>10} [{} .. {}]  ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        bencher.results.len(),
    );
}

/// The benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finishes the group (marker for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
