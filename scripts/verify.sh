#!/usr/bin/env bash
# Full verification: tier-1 build + tests, rustdoc build, and doc-tests.
#
#   ./scripts/verify.sh          # everything
#   ./scripts/verify.sh --quick  # tier-1 only (build + tests)
#
# The rustdoc steps keep the doc examples in crates/core/src/lib.rs (and
# every other crate's API docs) compiling; `#![warn(missing_docs)]` crates
# are built with warnings denied so public items stay documented.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" == "--quick" ]]; then
    echo "==> quick mode: skipping doc build + doc-tests"
    exit 0
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable in this toolchain: skipping"
fi

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> serving smoke test (xinsight-serve + loadgen)"
# Start the server on a loopback port with a freshly fitted + saved SYN-A
# bundle, issue one /explain and one /stats through the loadgen smoke
# client, request a graceful shutdown over the wire, and assert the server
# process exits cleanly (status 0).
SMOKE_DIR="$(mktemp -d)"
cleanup_smoke() {
    [[ -n "${SERVE_PID:-}" ]] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$SMOKE_DIR"
}
trap cleanup_smoke EXIT
./target/release/xinsight-serve \
    --demo syn_a --models "$SMOKE_DIR/models" --addr 127.0.0.1:0 --workers 2 \
    > "$SMOKE_DIR/serve.log" 2> "$SMOKE_DIR/serve.err" &
SERVE_PID=$!
for _ in $(seq 1 150); do
    grep -q "listening on" "$SMOKE_DIR/serve.log" 2>/dev/null && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "xinsight-serve exited before listening:" >&2
        cat "$SMOKE_DIR/serve.err" >&2
        exit 1
    fi
    sleep 0.2
done
SERVE_ADDR="$(sed -n 's#.*listening on http://##p' "$SMOKE_DIR/serve.log")"
[[ -n "$SERVE_ADDR" ]] || { echo "no listening banner" >&2; exit 1; }
./target/release/loadgen --smoke --addr "$SERVE_ADDR"
wait "$SERVE_PID"   # graceful shutdown => exit 0 (set -e enforces it)
SERVE_PID=""
grep -q "shut down cleanly" "$SMOKE_DIR/serve.log"
echo "==> serving smoke test OK"

echo "==> OK"
