#!/usr/bin/env bash
# Full verification: tier-1 build + tests, rustfmt + clippy (both
# toolchain-guarded), xlint --deny (workspace invariants), rustdoc build,
# doc-tests, and the serving smoke test.
#
#   ./scripts/verify.sh          # everything
#   ./scripts/verify.sh --quick  # tier-1 only (build + tests)
#
# The rustdoc steps keep the doc examples in crates/core/src/lib.rs (and
# every other crate's API docs) compiling; `#![warn(missing_docs)]` crates
# are built with warnings denied so public items stay documented.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" == "--quick" ]]; then
    echo "==> quick mode: skipping doc build + doc-tests"
    exit 0
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "==> cargo fmt unavailable in this toolchain: skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable in this toolchain: skipping"
fi

echo "==> xlint --deny (workspace invariants: see xlint.toml)"
# Lock-order, hot-path allocation, panic-path, Relaxed-justification,
# SAFETY-comment and endpoint-inventory checks; any finding fails the run.
cargo run -q -p xlint --release -- --deny

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> serving smoke test (xinsight-serve + loadgen)"
# Start the server on a loopback port with a freshly fitted + saved SYN-A
# bundle and drive it with the loadgen smoke client, which gates on
# GET /healthz (polling the liveness endpoint instead of sleeping), then
# asserts one /explain, one /v2/explain with a non-default top_k, a
# GET /v2/graph fetch in all three formats (json structure, DOT and
# Mermaid headers), one streaming-ingest round trip (POST /v2/ingest a handful of rows, /stats
# must show the new segment, and a re-issued /v2/explain must answer
# against the grown store rather than replay a pre-ingest cache entry),
# an ingest-past-threshold → background-compact → re-read loop asserting
# the answer survives compaction byte-for-byte (--compact-after 3 below),
# one /stats, a /metrics scrape pushed through the Prometheus text
# exposition validator, a deliberately slow request (POST /debug/sleep
# past --trace-slow-ms) asserted to land in the /debug/traces slow
# reservoir with its stages attributed, and a graceful shutdown over the
# wire; finally assert the server process exits cleanly (status 0).
SMOKE_DIR="$(mktemp -d)"
cleanup_smoke() {
    [[ -n "${SERVE_PID:-}" ]] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$SMOKE_DIR"
}
trap cleanup_smoke EXIT
./target/release/xinsight-serve \
    --demo syn_a --models "$SMOKE_DIR/models" --addr 127.0.0.1:0 --workers 2 \
    --compact-after 3 --debug-endpoints --trace-slow-ms 100 \
    > "$SMOKE_DIR/serve.log" 2> "$SMOKE_DIR/serve.err" &
SERVE_PID=$!
# The only thing the log tail is needed for is the bound address (port 0);
# readiness itself is the smoke client's /healthz poll.
for _ in $(seq 1 150); do
    grep -q "listening on" "$SMOKE_DIR/serve.log" 2>/dev/null && break
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "xinsight-serve exited before listening:" >&2
        cat "$SMOKE_DIR/serve.err" >&2
        exit 1
    fi
    sleep 0.2
done
SERVE_ADDR="$(sed -n 's#.*listening on http://##p' "$SMOKE_DIR/serve.log")"
[[ -n "$SERVE_ADDR" ]] || { echo "no listening banner" >&2; exit 1; }
./target/release/loadgen --smoke --addr "$SERVE_ADDR"
wait "$SERVE_PID"   # graceful shutdown => exit 0 (set -e enforces it)
SERVE_PID=""
grep -q "shut down cleanly" "$SMOKE_DIR/serve.log"
echo "==> serving smoke test OK"

echo "==> open-loop smoke test (loadgen --spawn --open-loop-smoke)"
# Open-loop load generation against a spawned in-process server: a
# modest-rate Poisson run that must finish with zero errors and zero shed
# 503s, then a deterministic overload burst at 2x capacity (via
# POST /debug/sleep on a small admission queue) that must shed at least
# one 503 without a single hard failure, then a graceful shutdown (exit 0,
# set -e enforces it).
./target/release/loadgen --spawn --open-loop-smoke --demo syn_a
echo "==> open-loop smoke test OK"

echo "==> OK"
