#!/usr/bin/env bash
# Full verification: tier-1 build + tests, rustdoc build, and doc-tests.
#
#   ./scripts/verify.sh          # everything
#   ./scripts/verify.sh --quick  # tier-1 only (build + tests)
#
# The rustdoc steps keep the doc examples in crates/core/src/lib.rs (and
# every other crate's API docs) compiling; `#![warn(missing_docs)]` crates
# are built with warnings denied so public items stay documented.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" == "--quick" ]]; then
    echo "==> quick mode: skipping doc build + doc-tests"
    exit 0
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable in this toolchain: skipping"
fi

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> OK"
