//! Cross-crate integration tests: the full pipeline on the simulated case
//! studies, checked against the causal stories the paper reports.

use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::{ExplainRequest, ExplanationType};
use xinsight::synth::{flight, hotel, lung_cancer};

#[test]
fn lung_cancer_pipeline_reports_smoking_as_causal() {
    let data = lung_cancer::generate(4000, 7);
    let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
    let query = lung_cancer::why_query();
    let explanations = engine
        .execute(&ExplainRequest::new(query.clone()))
        .unwrap()
        .into_explanations();
    assert!(!explanations.is_empty());

    let smoking = explanations
        .iter()
        .find(|e| e.attribute() == "Smoking")
        .expect("Smoking must be among the explanations");
    assert_eq!(smoking.explanation_type, ExplanationType::Causal);
    assert!(smoking.responsibility > 0.2);

    // Surgery and Survival are downstream of the measure: never causal.
    for e in &explanations {
        if e.attribute() == "Surgery" || e.attribute() == "Survival" {
            assert_eq!(e.explanation_type, ExplanationType::NonCausal);
        }
    }
}

#[test]
fn lung_cancer_graph_recovers_the_smoking_to_cancer_edge() {
    let data = lung_cancer::generate(4000, 3);
    let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
    let graph = engine.graph();
    let smoking = graph.id("Smoking").expect("Smoking node");
    let cancer = graph.id("LungCancer").expect("LungCancer node");
    assert!(
        graph.adjacent(smoking, cancer),
        "Smoking and LungCancer must be adjacent in the learned graph:\n{graph}"
    );
}

#[test]
fn flight_pipeline_finds_a_weather_related_causal_explanation() {
    let data = flight::generate(20_000, 1);
    let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
    let query = flight::why_query();
    let delta = query.delta_store(engine.data()).unwrap();
    assert!(
        delta > 1.0,
        "May-vs-November delay gap must exist (Δ = {delta})"
    );

    let explanations = engine
        .execute(&ExplainRequest::new(query.clone()))
        .unwrap()
        .into_explanations();
    assert!(!explanations.is_empty());
    let weather_related = explanations.iter().any(|e| {
        (e.attribute() == "Rain"
            || e.attribute().starts_with("Humidity")
            || e.attribute().starts_with("Visibility"))
            && e.explanation_type == ExplanationType::Causal
    });
    assert!(
        weather_related,
        "a weather variable must appear among the causal explanations: {:?}",
        explanations
            .iter()
            .map(|e| e.attribute())
            .collect::<Vec<_>>()
    );
}

#[test]
fn hotel_pipeline_explains_cancellations_via_lead_time() {
    let data = hotel::generate(20_000, 1);
    let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
    let query = hotel::why_query();
    let explanations = engine
        .execute(&ExplainRequest::new(query.clone()))
        .unwrap()
        .into_explanations();
    assert!(!explanations.is_empty());
    let lead_time = explanations
        .iter()
        .find(|e| e.attribute().starts_with("LeadTime"));
    assert!(
        lead_time.is_some(),
        "LeadTime must appear among the explanations: {:?}",
        explanations
            .iter()
            .map(|e| e.attribute())
            .collect::<Vec<_>>()
    );
    let lt = lead_time.unwrap();
    assert!(lt.responsibility > 0.0);
    // The explanation predicate is over lead-time *ranges* (a discretized measure).
    assert!(lt
        .predicate
        .values()
        .iter()
        .any(|v| v.contains('≤') || v.contains('(') || v.contains('>')));
}

#[test]
fn explanations_are_ranked_causal_first_then_by_responsibility() {
    let data = lung_cancer::generate(3000, 11);
    let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
    let explanations = engine
        .execute(&ExplainRequest::new(lung_cancer::why_query()))
        .unwrap()
        .into_explanations();
    let mut seen_non_causal = false;
    let mut last_causal_resp = f64::INFINITY;
    for e in &explanations {
        match e.explanation_type {
            ExplanationType::Causal => {
                assert!(!seen_non_causal, "causal explanations must come first");
                assert!(e.responsibility <= last_causal_resp + 1e-9);
                last_causal_resp = e.responsibility;
            }
            ExplanationType::NonCausal => seen_non_causal = true,
        }
        assert!((0.0..=1.0).contains(&e.responsibility));
    }
}
