//! Property-based tests over the core data structures and algorithmic
//! invariants, using proptest.

use proptest::prelude::*;
use xinsight::core::{SearchStrategy, WhyQuery, XPlainer, XPlainerOptions};
use xinsight::data::{Aggregate, DatasetBuilder, Filter, Predicate, RowMask, Subspace};
use xinsight::graph::{separation, Dag, MixedGraph};

// ---------------------------------------------------------------------------
// RowMask algebra
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn rowmask_and_or_counts_are_consistent(bits_a in prop::collection::vec(any::<bool>(), 1..300),
                                            bits_b in prop::collection::vec(any::<bool>(), 1..300)) {
        let n = bits_a.len().min(bits_b.len());
        let a = RowMask::from_bools(bits_a[..n].iter().copied());
        let b = RowMask::from_bools(bits_b[..n].iter().copied());
        let and = a.and(&b);
        let or = a.or(&b);
        // Inclusion–exclusion.
        prop_assert_eq!(and.count() + or.count(), a.count() + b.count());
        // Difference partitions the union.
        prop_assert_eq!(a.minus(&b).count() + b.count(), or.count());
        // Complement.
        prop_assert_eq!(a.not().count(), n - a.count());
        // Idempotence.
        prop_assert_eq!(a.and(&a), a.clone());
        prop_assert_eq!(a.or(&a), a);
    }

    #[test]
    fn predicate_mask_equals_union_of_filter_masks(values in prop::collection::vec(0u8..6, 20..200),
                                                   chosen in prop::collection::vec(0u8..6, 1..4)) {
        let labels: Vec<String> = values.iter().map(|v| format!("v{v}")).collect();
        let data = DatasetBuilder::new()
            .dimension("X", labels.iter().map(String::as_str))
            .build()
            .unwrap();
        let predicate = Predicate::new("X", chosen.iter().map(|v| format!("v{v}")));
        let by_predicate = predicate.mask(&data).unwrap();
        let mut by_filters = RowMask::zeros(data.n_rows());
        for f in predicate.filters() {
            by_filters = by_filters.or(&f.mask(&data).unwrap());
        }
        prop_assert_eq!(by_predicate, by_filters);
    }
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn sum_is_additive_over_a_partition(values in prop::collection::vec(-100.0f64..100.0, 10..200),
                                        split in prop::collection::vec(any::<bool>(), 10..200)) {
        let n = values.len().min(split.len());
        let data = DatasetBuilder::new()
            .measure("M", values[..n].to_vec())
            .build()
            .unwrap();
        let part_a = RowMask::from_bools(split[..n].iter().copied());
        let part_b = part_a.not();
        let total = Aggregate::Sum.eval(&data, "M", &data.all_rows()).unwrap();
        let sum_a = Aggregate::Sum.eval(&data, "M", &part_a).unwrap();
        let sum_b = Aggregate::Sum.eval(&data, "M", &part_b).unwrap();
        prop_assert!((total - sum_a - sum_b).abs() < 1e-9);
    }

    #[test]
    fn avg_lies_between_min_and_max(values in prop::collection::vec(-50.0f64..50.0, 2..100)) {
        let data = DatasetBuilder::new()
            .measure("M", values.clone())
            .build()
            .unwrap();
        let all = data.all_rows();
        let avg = Aggregate::Avg.eval(&data, "M", &all).unwrap();
        let min = Aggregate::Min.eval(&data, "M", &all).unwrap();
        let max = Aggregate::Max.eval(&data, "M", &all).unwrap();
        prop_assert!(min - 1e-9 <= avg && avg <= max + 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Graphs and m-separation
// ---------------------------------------------------------------------------

/// Builds a random DAG over `n` nodes from a boolean edge matrix, keeping only
/// forward edges (i < j) so acyclicity holds by construction.
fn dag_from_matrix(n: usize, edges: &[bool]) -> Dag {
    let names: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
    let mut dag = Dag::new(names);
    let mut k = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            if k < edges.len() && edges[k] {
                dag.add_edge(i, j);
            }
            k += 1;
        }
    }
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn d_separation_is_symmetric_and_respects_adjacency(
        n in 3usize..7,
        edges in prop::collection::vec(any::<bool>(), 21),
        x in 0usize..7,
        y in 0usize..7,
        z in 0usize..7,
    ) {
        let dag = dag_from_matrix(n, &edges);
        let x = x % n;
        let y = y % n;
        let z = z % n;
        prop_assume!(x != y);
        let cond: Vec<usize> = if z != x && z != y { vec![z] } else { vec![] };
        let sep_xy = dag.d_separated(x, y, &cond);
        let sep_yx = dag.d_separated(y, x, &cond);
        prop_assert_eq!(sep_xy, sep_yx, "d-separation must be symmetric");
        if dag.adjacent(x, y) {
            prop_assert!(!sep_xy, "adjacent nodes can never be separated");
        }
    }

    #[test]
    fn global_markov_property_holds_on_sampled_data(
        edges in prop::collection::vec(any::<bool>(), 6),
        seed in 0u64..1000,
    ) {
        // 4-node random DAG; sample categorical data from it and check that
        // every d-separation implies (statistical) conditional independence.
        let dag = dag_from_matrix(4, &edges);
        let data = sample_from_dag(&dag, 1500, seed);
        // A very strict significance level: the property is "separation implies
        // independence", so the only failure mode we must guard against is a
        // false rejection, whose probability this α makes negligible.
        let test = xinsight::stats::ChiSquareTest::new(1e-7);
        use xinsight::stats::CiTest;
        for x in 0..4usize {
            for y in (x + 1)..4 {
                for z in 0..4usize {
                    if z == x || z == y { continue; }
                    let zs = [format!("N{z}")];
                    let zrefs: Vec<&str> = zs.iter().map(String::as_str).collect();
                    if dag.d_separated(x, y, &[z]) {
                        let independent = test
                            .independent(&data, &format!("N{x}"), &format!("N{y}"), &zrefs)
                            .unwrap();
                        prop_assert!(independent,
                            "GMP violated: N{x} ⫫ N{y} | N{z} in the DAG but not in data");
                    }
                }
            }
        }
    }
}

/// Forward-samples binary data from a DAG with fixed, strong mechanisms.
fn sample_from_dag(dag: &Dag, n_rows: usize, seed: u64) -> xinsight::data::Dataset {
    // splitmix64: well-mixed and cheap, good enough for sampling test data.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut rand01 = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    let n = dag.n_nodes();
    let order = dag.topological_order();
    let mut columns: Vec<Vec<u8>> = vec![vec![0; n_rows]; n];
    // `row` indexes several columns at once (parents read, `v` written),
    // so a range loop is the clearest form here.
    #[allow(clippy::needless_range_loop)]
    for row in 0..n_rows {
        for &v in &order {
            let parent_sum: u32 = dag.parents(v).iter().map(|&p| columns[p][row] as u32).sum();
            let p1 = match parent_sum {
                0 => 0.25,
                1 => 0.75,
                _ => 0.9,
            };
            columns[v][row] = (rand01() < p1) as u8;
        }
    }
    let mut builder = DatasetBuilder::new();
    for (v, column) in columns.iter().enumerate() {
        let labels: Vec<&str> = column
            .iter()
            .map(|&c| if c == 1 { "1" } else { "0" })
            .collect();
        builder = builder.dimension(dag.name(v), labels);
    }
    builder.build().unwrap()
}

// ---------------------------------------------------------------------------
// Why Queries and XPlainer invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn responsibility_is_always_a_valid_probability(
        categories in prop::collection::vec(0u8..5, 60..200),
        values in prop::collection::vec(0.0f64..100.0, 60..200),
        seed in 0u64..50,
    ) {
        let n = categories.len().min(values.len());
        let x: Vec<&str> = (0..n).map(|i| if (i + seed as usize).is_multiple_of(2) { "a" } else { "b" }).collect();
        let y: Vec<String> = categories[..n].iter().map(|c| format!("c{c}")).collect();
        let data = DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y.iter().map(String::as_str))
            .measure("M", values[..n].to_vec())
            .build()
            .unwrap();
        let query = WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        ).unwrap();
        let Ok(query) = query.oriented(&data) else { return Ok(()); };
        let store = data.clone().into_segmented();
        let xplainer = XPlainer::new(XPlainerOptions::default());
        for strategy in [SearchStrategy::Optimized, SearchStrategy::BruteForce] {
            if let Ok(Some(c)) = xplainer.explain_attribute(&store, &query, "Y", strategy, false) {
                prop_assert!(c.responsibility > 0.0 && c.responsibility <= 1.0 + 1e-9);
                prop_assert!(!c.predicate.is_empty());
                // The explanation must actually reduce the difference when defined.
                if let Some(rem) = c.remaining_delta {
                    prop_assert!(rem <= query.delta(&data).unwrap() + 1e-9);
                }
            }
        }
    }

    #[test]
    fn cached_parallel_search_equals_serial_search(
        categories in prop::collection::vec(0u8..6, 80..200),
        values in prop::collection::vec(0.0f64..100.0, 80..200),
        seed in 0u64..40,
    ) {
        // The tentpole invariant of the parallel engine: answering the same
        // attribute search through a shared SelectionCache with parallel
        // probe loops yields byte-identical explanations to the serial,
        // cold-cache path — for both aggregates and both strategies.
        use std::sync::Arc;
        use xinsight::core::SelectionCache;

        let n = categories.len().min(values.len());
        let x: Vec<&str> = (0..n).map(|i| if (i + seed as usize).is_multiple_of(3) { "b" } else { "a" }).collect();
        let y: Vec<String> = categories[..n].iter().map(|c| format!("c{c}")).collect();
        let data = DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y.iter().map(String::as_str))
            .measure("M", values[..n].to_vec())
            .build()
            .unwrap();
        let store = data.clone().into_segmented();
        let shared = Arc::new(SelectionCache::new());
        for aggregate in [Aggregate::Sum, Aggregate::Avg] {
            let query = WhyQuery::new(
                "M",
                aggregate,
                Subspace::of("X", "a"),
                Subspace::of("X", "b"),
            ).unwrap();
            let Ok(query) = query.oriented(&data) else { return Ok(()); };
            let serial = XPlainer::new(XPlainerOptions {
                parallel: false,
                ..XPlainerOptions::default()
            });
            let parallel = XPlainer::new(XPlainerOptions::default());
            for strategy in [SearchStrategy::Optimized, SearchStrategy::BruteForce] {
                let cold = serial.explain_attribute(&store, &query, "Y", strategy, false);
                let warm = parallel.explain_attribute_cached(
                    &store, &query, "Y", strategy, false, Arc::clone(&shared));
                let (Ok(cold), Ok(warm)) = (cold, warm) else {
                    prop_assert!(false, "searches must not error on valid input");
                    return Ok(());
                };
                match (&cold, &warm) {
                    (None, None) => {}
                    (Some(c), Some(w)) => {
                        prop_assert_eq!(c.predicate.values(), w.predicate.values());
                        prop_assert_eq!(
                            c.responsibility.to_bits(), w.responsibility.to_bits(),
                            "responsibility must be bit-identical"
                        );
                        prop_assert_eq!(
                            c.remaining_delta.map(f64::to_bits),
                            w.remaining_delta.map(f64::to_bits)
                        );
                        prop_assert_eq!(
                            c.contingency.as_ref().map(|p| p.values().to_vec()),
                            w.contingency.as_ref().map(|p| p.values().to_vec())
                        );
                    }
                    _ => prop_assert!(
                        false,
                        "cached/parallel and serial paths disagree on existence: {:?} vs {:?}",
                        cold, warm
                    ),
                }
            }
        }
    }

    #[test]
    fn delta_over_full_mask_equals_delta(values in prop::collection::vec(0.0f64..10.0, 20..100)) {
        let n = values.len();
        let x: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let data = DatasetBuilder::new()
            .dimension("X", x)
            .measure("M", values)
            .build()
            .unwrap();
        let query = WhyQuery::new(
            "M",
            Aggregate::Sum,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        ).unwrap();
        let full = query.delta(&data).unwrap();
        let over = query.delta_over(&data, &data.all_rows()).unwrap();
        prop_assert!((full - over).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Deterministic cross-checks (not property-based but cross-crate)
// ---------------------------------------------------------------------------

#[test]
fn m_separation_on_converted_dag_matches_d_separation() {
    let mut dag = Dag::new(["A", "B", "C", "D"]);
    dag.add_edge(0, 1);
    dag.add_edge(1, 2);
    dag.add_edge(3, 2);
    let graph: MixedGraph = dag.to_mixed_graph();
    for x in 0..4usize {
        for y in 0..4usize {
            if x == y {
                continue;
            }
            for z in 0..4usize {
                if z == x || z == y {
                    continue;
                }
                assert_eq!(
                    dag.d_separated(x, y, &[z]),
                    separation::m_separated(&graph, x, y, &[z]),
                    "mismatch at ({x},{y}|{z})"
                );
            }
        }
    }
}

#[test]
fn filters_and_subspaces_compose() {
    let data = DatasetBuilder::new()
        .dimension("A", ["x", "x", "y", "y"])
        .dimension("B", ["1", "2", "1", "2"])
        .build()
        .unwrap();
    let s = Subspace::new([Filter::equals("A", "x"), Filter::equals("B", "2")]).unwrap();
    assert_eq!(
        s.mask(&data).unwrap().iter_selected().collect::<Vec<_>>(),
        vec![1]
    );
}
