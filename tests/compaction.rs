//! Ingest/compaction equivalence suite.
//!
//! The segment-scoped cache and the background compactor both claim to be
//! *invisible in the answers*.  This suite pins those claims down:
//!
//! * property test — over random segment boundaries on SYN-A (and fixed
//!   boundaries on FLIGHT), `with_compacted()` folds any segmentation into
//!   a store that is row-for-row, dictionary-for-dictionary identical to
//!   the never-segmented store, with byte-identical explanations;
//! * HTTP test — across an ingest epoch bump, the prefix-scoped cache
//!   (promotion when the new rows provably cannot move the answer, merge
//!   through the partial cache otherwise) answers byte-identically to a
//!   cold engine holding the same grown store;
//! * concurrency test — compaction running *under* live reads and ingests
//!   never serves a torn snapshot: every answer is byte-identical to the
//!   reference, and the served generation only moves forward;
//! * fault test — a compactor that dies mid-rewrite leaves the server
//!   state intact: the old snapshot keeps serving, the partial rewrite is
//!   discarded, no lock is poisoned, no LRU bytes leak, and the next
//!   compaction succeeds.

// thread::sleep allowed: tests poll the background compactor with real sleeps (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use xinsight::core::json::Json;
use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::{ExplainRequest, FittedModel, WhyQuery};
use xinsight::data::{Aggregate, Dataset, DatasetBuilder, RowMask, Subspace, Value};
use xinsight::service::{
    demo::syn_a_serving_data, demo_queries, wire, CacheKey, HttpClient, Lookup, ModelRegistry,
    ResultCache, ServerConfig,
};
use xinsight::synth::flight;

fn explain_wire(engine: &XInsight, query: &WhyQuery) -> String {
    wire::explanations_to_string(
        &engine
            .execute(&ExplainRequest::new(query.clone()))
            .unwrap()
            .into_explanations(),
    )
}

/// Rows `lo..hi` of a dataset as a standalone dataset.
fn rows_range(data: &Dataset, lo: usize, hi: usize) -> Dataset {
    data.filter_rows(&RowMask::from_bools(
        (0..data.n_rows()).map(|i| (lo..hi).contains(&i)),
    ))
    .unwrap()
}

/// An engine over `data` restored from `model`, segmented at `cuts`.
fn chunked_engine(
    data: &Dataset,
    model: FittedModel,
    options: &XInsightOptions,
    cuts: &[usize],
) -> XInsight {
    let mut bounds = vec![0usize];
    bounds.extend(cuts.iter().copied());
    bounds.push(data.n_rows());
    let mut engine =
        XInsight::from_fitted(&rows_range(data, bounds[0], bounds[1]), model, options).unwrap();
    for pair in bounds[1..].windows(2) {
        engine = engine
            .with_ingested(&rows_range(data, pair[0], pair[1]))
            .unwrap();
    }
    engine
}

/// Serializes the raw rows of a dataset as JSON row objects — used as a
/// row-for-row, value-for-value store comparison.
fn wire_rows(data: &Dataset) -> String {
    let rows: Vec<Json> = (0..data.n_rows())
        .map(|row| {
            Json::Obj(
                data.schema()
                    .iter()
                    .map(|meta| {
                        let value = match data.value(row, &meta.name).unwrap() {
                            Value::Category(s) => Json::Str(s),
                            Value::Number(x) => Json::Num(x),
                            Value::Null => Json::Null,
                        };
                        (meta.name.clone(), value)
                    })
                    .collect(),
            )
        })
        .collect();
    Json::Arr(rows).to_string()
}

/// One fitted dataset shared across property cases: raw rows, offline
/// artifact, the never-segmented reference engine and its wire answers.
struct Fixture {
    data: Dataset,
    model: FittedModel,
    options: XInsightOptions,
    single: XInsight,
    queries: Vec<WhyQuery>,
    reference: Vec<String>,
}

impl Fixture {
    fn build(data: Dataset, mut queries: Vec<WhyQuery>) -> Fixture {
        let options = XInsightOptions::default();
        let fitted = XInsight::fit(&data, &options).unwrap();
        let model = fitted.fitted_model();
        let single = XInsight::from_fitted(&data, model.clone(), &options).unwrap();
        queries.truncate(4);
        let reference = queries.iter().map(|q| explain_wire(&single, q)).collect();
        Fixture {
            data,
            model,
            options,
            single,
            queries,
            reference,
        }
    }

    /// `compact(segmented(cuts)) == never-segmented`: one segment, the
    /// same rows in the same order with the same dictionary, byte-equal
    /// answers — and compacting again is the identity.
    fn assert_compaction_identity(&self, cuts: &[usize]) {
        let chunked = chunked_engine(&self.data, self.model.clone(), &self.options, cuts);
        let compacted = chunked.with_compacted().unwrap();
        let store = compacted.data();
        assert_eq!(store.n_segments(), 1, "compaction must fold to one segment");
        assert_eq!(store.n_rows(), self.data.n_rows());
        assert_eq!(
            store.dictionary_len(),
            self.single.data().dictionary_len(),
            "compaction must not grow or shrink the dictionary"
        );
        assert_eq!(
            wire_rows(&store.to_dataset().unwrap()),
            wire_rows(&self.single.data().to_dataset().unwrap()),
            "segmentation {cuts:?} survived compaction with different rows"
        );
        for (query, expected) in self.queries.iter().zip(&self.reference) {
            assert_eq!(
                &explain_wire(&compacted, query),
                expected,
                "segmentation {cuts:?} changed the compacted answer to {query}"
            );
        }
        // Idempotence: a single-segment store compacts to itself.
        let again = compacted.with_compacted().unwrap();
        assert_eq!(again.data().n_segments(), 1);
        assert_eq!(again.data().epoch(), store.epoch());
    }
}

fn syn_a_fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = syn_a_serving_data(360, 13).unwrap();
        let queries = demo_queries(&data, 4).unwrap();
        Fixture::build(data, queries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Random segment boundaries over SYN-A: compacting any segmentation
    // reproduces the never-segmented store byte-for-byte.
    #[test]
    fn compacting_any_segmentation_yields_the_single_segment_store_on_syn_a(
        cuts in prop::collection::vec(1usize..359, 1..5),
    ) {
        let mut cuts = cuts;
        cuts.sort_unstable();
        cuts.dedup();
        syn_a_fixture().assert_compaction_identity(&cuts);
    }
}

#[test]
fn compacting_any_segmentation_yields_the_single_segment_store_on_flight() {
    let data = flight::generate(1200, 3);
    let mut queries = vec![flight::why_query()];
    queries.extend(demo_queries(&data, 3).unwrap());
    let fixture = Fixture::build(data, queries);
    fixture.assert_compaction_identity(&[90]);
    fixture.assert_compaction_identity(&[400, 800]);
    fixture.assert_compaction_identity(&[150, 300, 450, 600, 750, 900, 1050]);
}

/// A three-location dataset: the A-vs-B query never touches the `C` rows,
/// so ingesting `C` rows grows the store without being able to move the
/// answer — the promotion case — while ingesting `A` rows forces the
/// merge-and-recompute case.
fn tri_data(n: usize) -> Dataset {
    let mut location = Vec::new();
    let mut smoking = Vec::new();
    let mut severity = Vec::new();
    for i in 0..n {
        let loc = ["A", "B", "C"][i % 3];
        location.push(loc);
        let smokes = i % 7 < 3;
        smoking.push(if smokes { "Yes" } else { "No" });
        severity.push(match (loc, smokes) {
            ("A", true) => 3.0,
            ("A", false) => 2.0,
            ("B", _) => 1.0,
            _ => 1.5,
        });
    }
    DatasetBuilder::new()
        .dimension("Location", location)
        .dimension("Smoking", smoking)
        .measure("Severity", severity)
        .build()
        .unwrap()
}

/// Rows pinned to one location (categories already present in
/// [`tri_data`], so ingesting them never grows the dictionary).
fn located_rows(n: usize, loc: &str, salt: usize) -> Dataset {
    DatasetBuilder::new()
        .dimension("Location", vec![loc; n])
        .dimension(
            "Smoking",
            (0..n)
                .map(|i| {
                    if (i + salt).is_multiple_of(3) {
                        "Yes"
                    } else {
                        "No"
                    }
                })
                .collect::<Vec<_>>(),
        )
        .measure(
            "Severity",
            (0..n)
                .map(|i| ((i * 7 + salt) % 5) as f64 / 2.0)
                .collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

fn ab_query() -> WhyQuery {
    WhyQuery::new(
        "Severity",
        Aggregate::Avg,
        Subspace::of("Location", "A"),
        Subspace::of("Location", "B"),
    )
    .unwrap()
}

// The prefix-scoped cache across an ingest epoch bump, over HTTP: a
// promoted answer (untouched suffix) and a merged answer (intersecting
// suffix) must both be byte-identical to a cold engine holding the same
// grown store — the cache is invisible in the answers, it only decides
// how much work the server re-did.
#[test]
fn prefix_scoped_cache_answers_equal_cold_recompute_across_ingest() {
    let dir = std::env::temp_dir().join(format!("xinsight_compaction_pm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let base = tri_data(150);
    let query = ab_query();
    let options = XInsightOptions::default();
    let registry = ModelRegistry::open_empty(&dir, options);
    registry
        .fit_and_save("pm", &base, vec![query.clone()])
        .unwrap();
    let loaded = registry.load("pm").unwrap();
    let base_engine = &loaded.engine;

    let handle = xinsight::service::start(Arc::new(registry), &ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let body = format!("{{\"model\":\"pm\",\"query\":{}}}", query.to_json());
    let explain = |client: &mut HttpClient| -> (bool, String) {
        let resp = client.post("/explain", &body).unwrap();
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let doc = Json::parse(&resp.body).unwrap();
        (
            doc.get("cached").unwrap().as_bool().unwrap(),
            doc.get("explanations").unwrap().to_string(),
        )
    };

    // Warm: recompute then replay on the pristine store.
    let (cached, answer) = explain(&mut client);
    assert!(!cached);
    assert_eq!(answer, explain_wire(base_engine, &query));
    let (cached, _) = explain(&mut client);
    assert!(cached);

    // Non-intersecting ingest: the suffix segment holds only `C` rows, so
    // the cached entry is *promoted* — and its bytes must still equal a
    // cold engine over the grown store.
    let c_rows = located_rows(18, "C", 1);
    let resp = client.ingest_v2("pm", &wire_rows(&c_rows)).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let grown_c = base_engine.with_ingested(&c_rows).unwrap();
    let (cached, answer) = explain(&mut client);
    assert!(
        cached,
        "untouched-suffix ingest must promote, not recompute"
    );
    assert_eq!(
        answer,
        explain_wire(&grown_c, &query),
        "promoted answer diverged from a cold recompute over the grown store"
    );

    // Intersecting ingest: `A` rows can move the A-vs-B scores, so the
    // server must recompute (merging the replayed per-prefix partials with
    // fresh partials for the new segment) — byte-equal to the cold engine.
    let a_rows = located_rows(12, "A", 2);
    let resp = client.ingest_v2("pm", &wire_rows(&a_rows)).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let grown_ca = grown_c.with_ingested(&a_rows).unwrap();
    let (cached, answer) = explain(&mut client);
    assert!(!cached, "intersecting ingest must force a recompute");
    assert_eq!(
        answer,
        explain_wire(&grown_ca, &query),
        "merged answer diverged from a cold recompute over the grown store"
    );
    // And the recomputed entry replays on the next request.
    let (cached, answer) = explain(&mut client);
    assert!(cached);
    assert_eq!(answer, explain_wire(&grown_ca, &query));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// Background compaction under live reads and ingests: every concurrently
// served answer stays byte-identical to the reference (the ingested rows
// provably cannot move it), the served generation only moves forward, and
// the store quiesces to a single compacted segment.
#[test]
fn concurrent_compaction_never_serves_a_torn_snapshot() {
    let dir = std::env::temp_dir().join(format!("xinsight_compaction_cc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let base = tri_data(150);
    let query = ab_query();
    let registry = ModelRegistry::open_empty(&dir, XInsightOptions::default());
    registry
        .fit_and_save("cc", &base, vec![query.clone()])
        .unwrap();
    let loaded = registry.load("cc").unwrap();
    let expected = explain_wire(&loaded.engine, &query);

    let handle = xinsight::service::start(
        Arc::new(registry),
        &ServerConfig {
            workers: 4,
            compact_after: 3,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    let body = format!("{{\"model\":\"cc\",\"query\":{}}}", query.to_json());

    // Reader: every answer, whichever snapshot served it, must equal the
    // reference bytes — a torn snapshot could not.
    let reader = {
        let body = body.clone();
        let expected = expected.clone();
        std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).unwrap();
            for i in 0..150 {
                let resp = client.post("/explain", &body).unwrap();
                assert_eq!(resp.status, 200, "read {i}: {}", resp.body);
                let doc = Json::parse(&resp.body).unwrap();
                assert_eq!(
                    doc.get("explanations").unwrap().to_string(),
                    expected,
                    "read {i} served a divergent answer during compaction"
                );
            }
        })
    };
    // Ingester: keeps pushing the store past the compaction threshold.
    let ingester = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        for i in 0..10 {
            let rows = located_rows(6, "C", i);
            let resp = client.ingest_v2("cc", &wire_rows(&rows)).unwrap();
            assert_eq!(resp.status, 200, "ingest {i}: {}", resp.body);
            std::thread::sleep(Duration::from_millis(25));
        }
    });
    // Monitor: the served generation is monotone while ingests and
    // compactions race.
    let monitor = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        let mut last = 0u64;
        for _ in 0..40 {
            let resp = client.get("/models").unwrap();
            let doc = Json::parse(&resp.body).unwrap();
            let generation = doc
                .as_arr()
                .unwrap()
                .iter()
                .find(|m| m.get("id").unwrap().as_str().unwrap() == "cc")
                .unwrap()
                .get("generation")
                .unwrap()
                .as_u64()
                .unwrap();
            assert!(
                generation >= last,
                "generation went backwards: {last} -> {generation}"
            );
            last = generation;
            std::thread::sleep(Duration::from_millis(10));
        }
    });
    reader.join().unwrap();
    ingester.join().unwrap();
    monitor.join().unwrap();

    // Quiesce: with ingests stopped the compactor folds the store to one
    // segment, and the answer is still byte-identical.
    let mut client = HttpClient::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client.get("/stats").unwrap();
        let doc = Json::parse(&resp.body).unwrap();
        let runs = doc
            .get("compaction")
            .and_then(|c| c.get("runs"))
            .and_then(Json::as_u64)
            .unwrap();
        let segments = doc
            .get("models")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|m| m.get("id").unwrap().as_str().unwrap() == "cc")
            .unwrap()
            .get("segments")
            .unwrap()
            .as_u64()
            .unwrap();
        if runs >= 1 && segments == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "compactor did not quiesce the store: runs={runs}, segments={segments}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let resp = client.post("/explain", &body).unwrap();
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.body).unwrap();
    assert_eq!(doc.get("explanations").unwrap().to_string(), expected);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// Fault injection: a compactor that panics mid-rewrite (after the
// expensive off-lock rewrite, before the swap) must leave everything as
// it was — old snapshot served, partial rewrite discarded, no poisoned
// lock, no leaked LRU bytes — and the *next* compaction must succeed.
#[test]
fn killed_compactor_leaves_the_serving_state_intact() {
    let dir =
        std::env::temp_dir().join(format!("xinsight_compaction_fault_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let base = tri_data(120);
    let query = ab_query();
    let registry = ModelRegistry::open_empty(&dir, XInsightOptions::default());
    registry
        .fit_and_save("fault", &base, vec![query.clone()])
        .unwrap();
    registry.load("fault").unwrap();
    registry.ingest("fault", &located_rows(9, "C", 1)).unwrap();
    registry.ingest("fault", &located_rows(9, "A", 2)).unwrap();
    let before = registry.get("fault").unwrap();
    assert_eq!(before.engine.data().n_segments(), 3);
    let answer = explain_wire(&before.engine, &query);

    // The LRU as the server would hold it: one warm entry under the
    // current fingerprint.
    let cache = ResultCache::new(64 * 1024);
    let key = CacheKey {
        model: "fault".to_owned(),
        query: query.clone(),
        options: String::new(),
    };
    cache.insert(
        key.clone(),
        before.fingerprint.clone(),
        before.dict_len,
        Arc::from(answer.as_str()),
    );
    let bytes_before = cache.stats().bytes;

    // Kill the compactor mid-rewrite.
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        registry.compact_with_fault("fault", || panic!("compactor killed mid-rewrite"))
    }));
    assert!(crashed.is_err(), "the injected panic must unwind out");

    // Old snapshot still served, partial rewrite discarded.
    let after = registry.get("fault").unwrap();
    assert!(
        Arc::ptr_eq(&before, &after),
        "a crashed compaction must not swap the model"
    );
    assert_eq!(after.engine.data().n_segments(), 3);
    assert_eq!(explain_wire(&after.engine, &query), answer);

    // No leaked or lost LRU bytes: the warm entry still hits under the
    // unchanged fingerprint with unchanged accounting.
    assert_eq!(cache.stats().bytes, bytes_before);
    match cache.lookup(&key, &after.fingerprint, after.dict_len) {
        Lookup::Hit(value) => assert_eq!(&*value, answer.as_str()),
        other => panic!("warm entry lost after crashed compaction: {other:?}"),
    }

    // No poisoned lock: the next compaction starts clean and succeeds.
    let report = registry
        .compact("fault")
        .unwrap()
        .expect("post-crash compaction must run");
    assert_eq!(report.segments_before, 3);
    assert_eq!(report.segments_after, 1);
    let compacted = registry.get("fault").unwrap();
    assert_eq!(compacted.engine.data().n_segments(), 1);
    assert_eq!(explain_wire(&compacted.engine, &query), answer);

    // Remap as the compactor loop does post-swap: the entry survives with
    // consistent byte accounting and serves under the new fingerprint.
    cache.remap_model("fault", &report.old_fingerprint, &report.new_fingerprint);
    let stats = cache.stats();
    assert_eq!(stats.entries, 1);
    match cache.lookup(&key, &compacted.fingerprint, compacted.dict_len) {
        Lookup::Hit(value) => assert_eq!(&*value, answer.as_str()),
        other => panic!("entry did not survive the compaction remap: {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}
