//! Event-loop serving suite.
//!
//! PR 7 replaced the thread-per-connection server with a readiness-driven
//! event loop (vendored epoll/poll shim, non-blocking sockets,
//! per-connection state machines) feeding the same bounded worker pool.
//! The loop's correctness bar:
//!
//! * **invisible in the answers** — v1, v2 and ingest wire bytes served
//!   through the event loop (and the segment-scoped LRU, across ingest
//!   epoch bumps) are byte-identical to direct `execute_batch` on an
//!   engine holding the same store (property test);
//! * **scales past the pool** — far more concurrent idle keep-alive
//!   connections than workers all stay parked and all answer correctly;
//! * **sheds, never hangs** — at 2× capacity every request gets a real
//!   response (`200` or a clean `503`), and the server still drains to a
//!   graceful exit;
//! * **isolates slow peers** — a slow-loris partial request times out
//!   with `408` without stalling other connections.

// thread::sleep allowed: tests pace real sockets with real sleeps deliberately (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use proptest::prelude::*;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use xinsight::core::json::Json;
use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::{ExplainRequest, WhyQuery};
use xinsight::data::{Aggregate, Dataset, DatasetBuilder, Subspace, Value};
use xinsight::service::{
    demo_queries, wire, HttpClient, ModelRegistry, ServerConfig, ServerHandle,
};

fn tri_data(n: usize) -> Dataset {
    let mut location = Vec::new();
    let mut smoking = Vec::new();
    let mut severity = Vec::new();
    for i in 0..n {
        let loc = ["A", "B", "C"][i % 3];
        location.push(loc);
        let smokes = i % 7 < 3;
        smoking.push(if smokes { "Yes" } else { "No" });
        severity.push(match (loc, smokes) {
            ("A", true) => 3.0,
            ("A", false) => 2.0,
            ("B", _) => 1.0,
            _ => 1.5,
        });
    }
    DatasetBuilder::new()
        .dimension("Location", location)
        .dimension("Smoking", smoking)
        .measure("Severity", severity)
        .build()
        .unwrap()
}

/// Rows pinned to one location (categories already present in
/// [`tri_data`], so ingesting them is always schema-valid).
fn located_rows(n: usize, loc: &str, salt: usize) -> Dataset {
    DatasetBuilder::new()
        .dimension("Location", vec![loc; n])
        .dimension(
            "Smoking",
            (0..n)
                .map(|i| {
                    if (i + salt).is_multiple_of(3) {
                        "Yes"
                    } else {
                        "No"
                    }
                })
                .collect::<Vec<_>>(),
        )
        .measure(
            "Severity",
            (0..n)
                .map(|i| ((i * 7 + salt) % 5) as f64 / 2.0)
                .collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

/// Serializes the raw rows of a dataset as JSON row objects for
/// `/v2/ingest`.
fn wire_rows(data: &Dataset) -> String {
    let rows: Vec<Json> = (0..data.n_rows())
        .map(|row| {
            Json::Obj(
                data.schema()
                    .iter()
                    .map(|meta| {
                        let value = match data.value(row, &meta.name).unwrap() {
                            Value::Category(s) => Json::Str(s),
                            Value::Number(x) => Json::Num(x),
                            Value::Null => Json::Null,
                        };
                        (meta.name.clone(), value)
                    })
                    .collect(),
            )
        })
        .collect();
    Json::Arr(rows).to_string()
}

/// Direct reference path: `execute_batch` on an engine holding the same
/// store the server holds, serialized with the same wire encoder.
fn direct_wire(engine: &XInsight, query: &WhyQuery) -> String {
    let response = engine
        .execute_batch(&[ExplainRequest::new(query.clone())])
        .unwrap()
        .into_iter()
        .next()
        .unwrap();
    wire::explanations_to_string(&response.into_explanations())
}

/// One fitted tri-location engine + query pool, shared across tests and
/// property cases (the fit is the expensive part).
struct Fixture {
    base: Dataset,
    engine: XInsight,
    queries: Vec<WhyQuery>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let base = tri_data(180);
        let engine = XInsight::fit(&base, &XInsightOptions::default()).unwrap();
        let mut queries = demo_queries(&base, 4).unwrap();
        queries.push(
            WhyQuery::new(
                "Severity",
                Aggregate::Avg,
                Subspace::of("Location", "A"),
                Subspace::of("Location", "B"),
            )
            .unwrap(),
        );
        Fixture {
            base,
            engine,
            queries,
        }
    })
}

/// Saves the fixture bundle into a fresh dir and serves it.
fn serve_fixture(tag: &str, config: &ServerConfig) -> (ServerHandle, std::path::PathBuf) {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let fx = fixture();
    let dir = std::env::temp_dir().join(format!(
        "xinsight_event_loop_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    xinsight::service::save_bundle(&dir, "ev", &fx.base, &fx.engine, &fx.queries).unwrap();
    let registry = ModelRegistry::open(&dir, XInsightOptions::default()).unwrap();
    let handle = xinsight::service::start(Arc::new(registry), config).unwrap();
    xinsight::service::wait_healthy(handle.addr(), Duration::from_secs(10)).unwrap();
    (handle, dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // A random interleaving of v1 explains, v2 explains (varying top_k)
    // and ingest epoch bumps, served through the event loop and the
    // segment-scoped LRU, answers byte-identically to direct
    // `execute_batch` on an engine grown by the same ingests.  Repeats in
    // the stream replay cached entries, so the equivalence covers cold,
    // cached and post-ingest (promoted/merged) answers alike.
    #[test]
    fn served_bytes_equal_direct_execution_across_v1_v2_and_ingest(
        // Each op packs (kind, pick): kind = op % 5, pick = op / 5.
        raw_ops in prop::collection::vec(0usize..60, 1..12),
    ) {
        let fx = fixture();
        let (handle, dir) = serve_fixture("prop", &ServerConfig::default());
        let registry = ModelRegistry::open(&dir, XInsightOptions::default()).unwrap();
        let loaded = registry.load("ev").unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        // The reference store: starts as the loaded bundle, grows with
        // every ingest the server applies.
        let mut grown: Option<XInsight> = None;
        for (step, &raw) in raw_ops.iter().enumerate() {
            let (kind, pick) = (raw % 5, raw / 5);
            let engine: &XInsight = grown.as_ref().unwrap_or(&loaded.engine);
            let query = &fx.queries[pick % fx.queries.len()];
            match kind {
                // Ingest epoch bump: the server and the reference engine
                // grow by the same rows.
                4 => {
                    let loc = ["A", "B", "C"][pick % 3];
                    let chunk = located_rows(5 + pick % 4, loc, step);
                    let resp = client.ingest_v2("ev", &wire_rows(&chunk)).unwrap();
                    prop_assert_eq!(resp.status, 200, "step {}: {}", step, resp.body);
                    grown = Some(engine.with_ingested(&chunk).unwrap());
                }
                // v2 wire with a per-request top_k.
                2 | 3 => {
                    let expected = direct_wire(engine, query);
                    let direct_doc = Json::parse(&expected).unwrap();
                    let direct_arr = direct_doc.as_arr().unwrap();
                    let top_k = 1 + pick % 4;
                    let options = format!("{{\"top_k\":{top_k}}}");
                    let resp = client
                        .explain_v2("ev", &query.to_json(), Some(&options))
                        .unwrap();
                    prop_assert_eq!(resp.status, 200, "step {}: {}", step, resp.body);
                    let doc = Json::parse(&resp.body).unwrap();
                    let result = doc.get("result").unwrap();
                    let slots_json = result.get("explanations").unwrap();
                    let slots = slots_json.as_arr().unwrap();
                    prop_assert_eq!(slots.len(), direct_arr.len().min(top_k), "step {}", step);
                    prop_assert_eq!(
                        result.get("truncated").unwrap().as_bool().unwrap(),
                        direct_arr.len() > top_k,
                        "step {}", step
                    );
                    for (rank0, (slot, direct)) in slots.iter().zip(direct_arr).enumerate() {
                        prop_assert_eq!(
                            slot.get("rank").unwrap().as_u64().unwrap(),
                            (rank0 + 1) as u64
                        );
                        prop_assert_eq!(
                            slot.get("explanation").unwrap().to_string(),
                            direct.to_string(),
                            "step {} rank {} diverged from direct execute_batch",
                            step, rank0 + 1
                        );
                    }
                }
                // v1 wire.
                _ => {
                    let expected = direct_wire(engine, query);
                    let body = format!("{{\"model\":\"ev\",\"query\":{}}}", query.to_json());
                    let resp = client.post("/explain", &body).unwrap();
                    prop_assert_eq!(resp.status, 200, "step {}: {}", step, resp.body);
                    let doc = Json::parse(&resp.body).unwrap();
                    prop_assert_eq!(
                        doc.get("explanations").unwrap().to_string(),
                        expected,
                        "step {} diverged from direct execute_batch", step
                    );
                }
            }
        }
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// Far more idle keep-alive connections than workers: 1100 clients against
// a 2-worker pool all connect, answer, park idle through sweep ticks (the
// readiness loop holds them without a thread each — the thread-per-
// connection design this PR replaced could not), and all answer again.
#[test]
fn a_thousand_idle_keep_alives_park_and_all_answer() {
    const CLIENTS: usize = 1100;
    let fx = fixture();
    let (handle, dir) = serve_fixture(
        "park",
        &ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let query = &fx.queries[0];
    let expected = direct_wire(&fx.engine, query);
    let body = format!("{{\"model\":\"ev\",\"query\":{}}}", query.to_json());

    let mut clients = Vec::with_capacity(CLIENTS);
    for i in 0..CLIENTS {
        let mut client = HttpClient::connect(addr).unwrap();
        let resp = client.post("/explain", &body).unwrap();
        assert_eq!(resp.status, 200, "client {i}: {}", resp.body);
        assert!(!resp.closing, "client {i} was not kept alive");
        let doc = Json::parse(&resp.body).unwrap();
        assert_eq!(
            doc.get("explanations").unwrap().to_string(),
            expected,
            "client {i} answer diverged"
        );
        clients.push(client);
    }

    // Let several sweep ticks pass, then read the connection gauges: every
    // client is still connected, and (but for scheduling slop) parked.
    std::thread::sleep(Duration::from_millis(250));
    let mut probe = HttpClient::connect(addr).unwrap();
    let resp = probe.get("/stats").unwrap();
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.body).unwrap();
    let conns = doc.get("connections").unwrap();
    let active = conns.get("active").unwrap().as_u64().unwrap();
    let parked = conns.get("parked_idle").unwrap().as_u64().unwrap();
    assert!(active >= CLIENTS as u64, "only {active} active connections");
    assert!(parked >= 1024, "only {parked} parked idle connections");

    // Every parked connection answers again, correctly, on the same socket.
    for (i, client) in clients.iter_mut().enumerate() {
        let resp = client.post("/explain", &body).unwrap();
        assert_eq!(resp.status, 200, "parked client {i}: {}", resp.body);
        let doc = Json::parse(&resp.body).unwrap();
        assert_eq!(
            doc.get("explanations").unwrap().to_string(),
            expected,
            "parked client {i} answer diverged"
        );
    }
    drop(clients);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// Overload at well past capacity: a 1-worker, 2-slot admission queue under
// 12 concurrent clients must answer *every* request — 200 or a clean 503,
// never a hang or a dropped connection — and still drain to a graceful
// shutdown afterwards.
#[test]
fn overload_sheds_503s_and_drains_cleanly() {
    let dir = std::env::temp_dir().join(format!("xinsight_event_loop_ov_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let registry = ModelRegistry::open_empty(&dir, XInsightOptions::default());
    let handle = xinsight::service::start(
        Arc::new(registry),
        &ServerConfig {
            workers: 1,
            queue_capacity: 2,
            debug_endpoints: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    xinsight::service::wait_healthy(addr, Duration::from_secs(10)).unwrap();

    let mut threads = Vec::new();
    for _ in 0..12 {
        threads.push(std::thread::spawn(move || {
            let mut http = HttpClient::connect(addr).unwrap();
            let (mut ok, mut shed) = (0usize, 0usize);
            for _ in 0..5 {
                let resp = http.post("/debug/sleep", "{\"ms\":40}").unwrap();
                match resp.status {
                    200 => ok += 1,
                    503 => shed += 1,
                    other => panic!("unexpected status {other}: {}", resp.body),
                }
                if resp.closing {
                    http = HttpClient::connect(addr).unwrap();
                }
            }
            (ok, shed)
        }));
    }
    let (mut ok, mut shed) = (0usize, 0usize);
    for thread in threads {
        let (o, s) = thread.join().unwrap();
        ok += o;
        shed += s;
    }
    assert_eq!(ok + shed, 60, "some requests got no response");
    assert!(shed >= 1, "2x+ overload never shed");
    assert!(ok >= 1, "overload starved every request");

    // The queue empties once the load stops; shutdown may briefly shed,
    // then must be admitted and drain the server to a clean exit.
    let mut accepted = false;
    for _ in 0..100 {
        let mut client = HttpClient::connect(addr).unwrap();
        let resp = client.post("/admin/shutdown", "{}").unwrap();
        if resp.status == 200 {
            accepted = true;
            break;
        }
        assert_eq!(resp.status, 503, "body: {}", resp.body);
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(accepted, "shutdown was never admitted");
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// A slow-loris peer — a request that arrives a few bytes and then stalls —
// is timed out with `408` at the request deadline, while other connections
// keep answering the whole time.  The loop never donates a worker (or
// itself) to a peer that hasn't produced a full request.
#[test]
fn slow_loris_partial_request_times_out_without_stalling_others() {
    let dir = std::env::temp_dir().join(format!("xinsight_event_loop_sl_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let registry = ModelRegistry::open_empty(&dir, XInsightOptions::default());
    let handle = xinsight::service::start(
        Arc::new(registry),
        &ServerConfig {
            workers: 2,
            request_deadline: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();
    xinsight::service::wait_healthy(addr, Duration::from_secs(10)).unwrap();

    // Complete headers, stalled body: the parser holds a partial request.
    let mut loris = std::net::TcpStream::connect(addr).unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    loris
        .write_all(b"POST /explain HTTP/1.1\r\nContent-Length: 64\r\n\r\n{\"mod")
        .unwrap();
    let stalled_at = Instant::now();

    // Meanwhile the server keeps answering everyone else, spanning the
    // loris deadline.
    let mut other = HttpClient::connect(addr).unwrap();
    for round in 0..10 {
        let resp = other.get("/healthz").unwrap();
        assert_eq!(resp.status, 200, "round {round} stalled behind the loris");
        std::thread::sleep(Duration::from_millis(40));
    }

    // The loris gets a 408 and a close — not silence, not a hang.
    let mut buf = Vec::new();
    loris.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "expected a 408 timeout, got: {text}"
    );
    assert!(
        stalled_at.elapsed() < Duration::from_secs(8),
        "read timeout took {:?}",
        stalled_at.elapsed()
    );

    let resp = other.get("/stats").unwrap();
    let doc = Json::parse(&resp.body).unwrap();
    let timeouts = doc
        .get("connections")
        .unwrap()
        .get("read_timeouts")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(timeouts >= 1, "read_timeouts gauge never moved");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
