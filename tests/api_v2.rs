//! Equivalence tests for the unified execution API and the `/v2` wire
//! surface.
//!
//! The redesign's correctness bar has two halves:
//!
//! * **engine level** — `execute` with a default [`ExplainRequest`] is
//!   byte-identical to the legacy (now deprecated) `explain` path,
//!   including when served through the bounded LRU (property test);
//! * **wire level** — on a served SYN-A bundle, the v1 endpoints and
//!   `/v2` with default options answer with the same explanation bytes,
//!   and the v2 per-request controls (`top_k`, type allowlist, deadline)
//!   behave end-to-end, with differently-parameterized requests never
//!   aliasing in the result cache.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use xinsight::core::json::Json;
use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::{ExplainRequest, WhyQuery};
use xinsight::service::{
    demo::syn_a_serving_data, demo_queries, demo_v2_options, lru::CacheKey, lru::ResultCache, wire,
    HttpClient, ModelRegistry, ServerConfig,
};

/// One fitted SYN-A serving engine + query pool + per-query *legacy-path*
/// wire answers, shared across property cases (the fit is the expensive
/// part).
struct Fixture {
    engine: XInsight,
    queries: Vec<WhyQuery>,
    /// Serialized explanation lists produced by the deprecated `explain`
    /// shim — the pre-redesign behavior the new core must reproduce.
    legacy: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = syn_a_serving_data(500, 7).unwrap();
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let queries = demo_queries(&data, 6).unwrap();
        #[allow(deprecated)]
        let legacy = queries
            .iter()
            .map(|q| wire::explanations_to_string(&engine.explain(q).unwrap()))
            .collect();
        Fixture {
            engine,
            queries,
            legacy,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // `execute` with default options — directly and served through a
    // tiny, eviction-heavy LRU — reproduces the deprecated `explain`
    // path's bytes exactly.
    #[test]
    fn default_execute_is_byte_identical_to_legacy_explain(
        stream in prop::collection::vec(0usize..6, 1..20),
        budget_entries in 1usize..4,
    ) {
        let fx = fixture();
        let per_entry = fx.queries[0].to_json().len()
            + fx.legacy.iter().map(String::len).max().unwrap()
            + xinsight::service::lru::ENTRY_OVERHEAD_BYTES
            + 16 // one-segment fingerprint
            + 8;
        let cache = ResultCache::new(budget_entries * per_entry);
        // One fixed store snapshot for the whole stream.
        let fingerprint = vec![(1u64, 1u64)];
        let dict_len = 7usize;
        for &raw in &stream {
            let i = raw % fx.queries.len();
            let query = &fx.queries[i];
            // Direct: the new unified core.
            let response = fx
                .engine
                .execute(&ExplainRequest::new(query.clone()))
                .unwrap();
            prop_assert!(!response.truncated);
            prop_assert!(!response.deadline_hit);
            for (rank0, scored) in response.explanations.iter().enumerate() {
                prop_assert_eq!(scored.rank, rank0 + 1);
                prop_assert_eq!(
                    scored.score.to_bits(),
                    scored.explanation.responsibility.to_bits()
                );
            }
            let direct = wire::explanations_to_string(&response.into_explanations());
            prop_assert_eq!(&direct, &fx.legacy[i], "query {} diverged from legacy path", i);

            // Through the LRU, exactly as the v1 serving adapter caches it.
            let key = CacheKey {
                model: "syn_a".to_owned(),
                query: query.clone(),
                options: String::new(),
            };
            let served: Arc<str> = match cache.lookup(&key, &fingerprint, dict_len) {
                xinsight::service::lru::Lookup::Hit(hit) => hit,
                _ => {
                    let json: Arc<str> = Arc::from(direct.as_str());
                    cache.insert(key, fingerprint.clone(), dict_len, Arc::clone(&json));
                    json
                }
            };
            prop_assert_eq!(&*served, fx.legacy[i].as_str(),
                            "query {} diverged through the LRU", i);
        }
    }
}

/// Serves the fixture's SYN-A bundle over real HTTP, for wire-level tests.
fn serve_fixture(tag: &str) -> (xinsight::service::ServerHandle, std::path::PathBuf) {
    let fx = fixture();
    let data = syn_a_serving_data(500, 7).unwrap();
    let dir = std::env::temp_dir().join(format!("xinsight_api_v2_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let options = XInsightOptions::default();
    xinsight::service::save_bundle(&dir, "syn_a", &data, &fx.engine, &fx.queries).unwrap();
    let registry = ModelRegistry::open(&dir, options).unwrap();
    let handle = xinsight::service::start(Arc::new(registry), &ServerConfig::default()).unwrap();
    xinsight::service::wait_healthy(handle.addr(), std::time::Duration::from_secs(10)).unwrap();
    (handle, dir)
}

/// v1 and v2-with-default-options answer every served SYN-A query with the
/// same explanation content, and the v2 envelope is well-formed.
#[test]
fn v1_wire_equals_v2_wire_with_defaults_on_served_syn_a() {
    let fx = fixture();
    let (handle, dir) = serve_fixture("equiv");
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    for (i, query) in fx.queries.iter().enumerate() {
        let v1_body = format!("{{\"model\":\"syn_a\",\"query\":{}}}", query.to_json());
        let v1 = client.post("/explain", &v1_body).unwrap();
        assert_eq!(v1.status, 200, "v1 query {i}: {}", v1.body);
        let v1_doc = Json::parse(&v1.body).unwrap();
        let v1_explanations = v1_doc.get("explanations").unwrap();
        assert_eq!(
            v1_explanations.to_string(),
            fx.legacy[i],
            "v1 wire diverged from the pre-redesign bytes on query {i}"
        );

        let v2 = client.explain_v2("syn_a", &query.to_json(), None).unwrap();
        assert_eq!(v2.status, 200, "v2 query {i}: {}", v2.body);
        let v2_doc = Json::parse(&v2.body).unwrap();
        assert!(!v2_doc.get("deadline_hit").unwrap().as_bool().unwrap());
        let result = v2_doc.get("result").unwrap();
        assert!(!result.get("truncated").unwrap().as_bool().unwrap());
        let slots = result.get("explanations").unwrap().as_arr().unwrap();
        let v1_list = v1_explanations.as_arr().unwrap();
        assert_eq!(slots.len(), v1_list.len(), "query {i} cardinality");
        for (rank0, (slot, v1_entry)) in slots.iter().zip(v1_list).enumerate() {
            assert_eq!(
                slot.get("rank").unwrap().as_u64().unwrap(),
                (rank0 + 1) as u64
            );
            assert_eq!(
                slot.get("explanation").unwrap().to_string(),
                v1_entry.to_string(),
                "query {i} rank {} diverged between v1 and v2",
                rank0 + 1
            );
        }
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The v2 controls work end-to-end over HTTP: `top_k` truncates (and is
/// its own cache key), the type allowlist filters, a zero deadline yields
/// a flagged partial answer that is never cached, and the demo option pool
/// parses against the live server.
#[test]
fn v2_controls_work_end_to_end_on_served_syn_a() {
    let fx = fixture();
    let (handle, dir) = serve_fixture("controls");
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    // Pick a query with a non-empty answer so top_k has something to trim.
    let (query, full_len) = fx
        .queries
        .iter()
        .zip(&fx.legacy)
        .map(|(q, legacy)| {
            let n = Json::parse(legacy).unwrap().as_arr().unwrap().len();
            (q, n)
        })
        .max_by_key(|&(_, n)| n)
        .unwrap();
    let query_json = query.to_json();
    assert!(full_len >= 1, "fixture has no explainable query");

    // Warm the default-options entry, then check top_k=1 misses (distinct
    // key) and truncates.
    let first = client.explain_v2("syn_a", &query_json, None).unwrap();
    assert_eq!(first.status, 200, "body: {}", first.body);
    let top1 = client
        .explain_v2("syn_a", &query_json, Some("{\"top_k\":1}"))
        .unwrap();
    let doc = Json::parse(&top1.body).unwrap();
    assert!(
        !doc.get("cached").unwrap().as_bool().unwrap(),
        "top_k=1 aliased the default-options LRU entry"
    );
    let result = doc.get("result").unwrap();
    let slots = result.get("explanations").unwrap().as_arr().unwrap();
    assert!(slots.len() <= 1);
    assert_eq!(
        result.get("truncated").unwrap().as_bool().unwrap(),
        full_len > 1
    );
    // Its repeat is a hit on its own entry.
    let again = client
        .explain_v2("syn_a", &query_json, Some("{\"top_k\":1}"))
        .unwrap();
    assert!(Json::parse(&again.body)
        .unwrap()
        .get("cached")
        .unwrap()
        .as_bool()
        .unwrap());

    // Causal-only allowlist: every returned explanation is causal.
    let causal = client
        .explain_v2("syn_a", &query_json, Some("{\"types\":[\"causal\"]}"))
        .unwrap();
    let doc = Json::parse(&causal.body).unwrap();
    for slot in doc
        .get("result")
        .unwrap()
        .get("explanations")
        .unwrap()
        .as_arr()
        .unwrap()
    {
        assert_eq!(
            slot.get("explanation")
                .unwrap()
                .get("type")
                .unwrap()
                .as_str()
                .unwrap(),
            "causal"
        );
    }

    // A zero deadline: flagged partial answer, and *not* cached — the
    // repeat recomputes (cached:false again) instead of replaying the
    // partiality.
    for round in 0..2 {
        let rushed = client
            .explain_v2("syn_a", &query_json, Some("{\"deadline_ms\":0}"))
            .unwrap();
        let doc = Json::parse(&rushed.body).unwrap();
        assert!(
            !doc.get("cached").unwrap().as_bool().unwrap(),
            "round {round}"
        );
        assert!(
            doc.get("deadline_hit").unwrap().as_bool().unwrap(),
            "round {round}"
        );
    }

    // The demo option pool is servable as-is.
    for options in demo_v2_options(6) {
        let resp = client
            .explain_v2("syn_a", &query_json, Some(&options))
            .unwrap();
        assert_eq!(resp.status, 200, "options {options}: {}", resp.body);
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /v2/graph` serves the fitted graph of a loaded model in all three
/// formats, the renderings match the shared emitter applied to the
/// engine's own fitted model, and parameter errors are structured.
#[test]
fn graph_v2_serves_json_dot_and_mermaid() {
    let fx = fixture();
    let (handle, dir) = serve_fixture("graph");
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let fitted = fx.engine.fitted_model();

    // JSON: nodes in dense-id order, edges referencing them with marks from
    // the closed vocabulary, sepset ids resolved to names.
    let resp = client.get("/v2/graph?model=syn_a").unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let doc = Json::parse(&resp.body).unwrap();
    assert_eq!(doc.get("model").unwrap().as_str().unwrap(), "syn_a");
    let graph = doc.get("graph").unwrap();
    let nodes: Vec<String> = graph.get("nodes").unwrap().as_string_vec().unwrap();
    assert_eq!(&nodes, fitted.graph.names());
    let edges = graph.get("edges").unwrap().as_arr().unwrap();
    assert_eq!(edges.len(), fitted.graph.n_edges());
    for edge in edges {
        let a = edge.get("a").unwrap().as_u64().unwrap() as usize;
        let b = edge.get("b").unwrap().as_u64().unwrap() as usize;
        assert!(a < nodes.len() && b < nodes.len());
        for key in ["mark_a", "mark_b"] {
            let mark = edge.get(key).unwrap().as_str().unwrap().to_owned();
            assert!(matches!(mark.as_str(), "tail" | "arrow" | "circle"));
        }
    }
    let fci_variables: Vec<String> = doc.get("fci_variables").unwrap().as_string_vec().unwrap();
    assert_eq!(fci_variables, fitted.fci_variables);
    for entry in doc.get("sepsets").unwrap().as_arr().unwrap() {
        for key in ["x", "y"] {
            let name = entry.get(key).unwrap().as_str().unwrap().to_owned();
            assert!(fci_variables.contains(&name), "unknown sepset name {name}");
        }
    }
    assert_eq!(
        doc.get("n_ci_tests").unwrap().as_u64().unwrap() as usize,
        fitted.n_ci_tests
    );

    // DOT and Mermaid bytes come from the one shared emitter.
    let dot = client.get("/v2/graph?model=syn_a&format=dot").unwrap();
    assert_eq!(dot.status, 200);
    assert_eq!(dot.body, xinsight::graph::render::to_dot(&fitted.graph));
    let mermaid = client.get("/v2/graph?model=syn_a&format=mermaid").unwrap();
    assert_eq!(mermaid.status, 200);
    assert_eq!(
        mermaid.body,
        xinsight::graph::render::to_mermaid(&fitted.graph)
    );
    // Identical requests serve identical bytes (deterministic emission).
    let dot2 = client.get("/v2/graph?model=syn_a&format=dot").unwrap();
    assert_eq!(dot2.body, dot.body);

    // Parameter errors are structured JSON, not panics.
    let missing = client.get("/v2/graph").unwrap();
    assert_eq!(missing.status, 400, "body: {}", missing.body);
    assert!(missing.body.contains("model"));
    let unknown_model = client.get("/v2/graph?model=nope").unwrap();
    assert_eq!(unknown_model.status, 404);
    let bad_format = client.get("/v2/graph?model=syn_a&format=png").unwrap();
    assert_eq!(bad_format.status, 400);
    assert!(bad_format.body.contains("format"));
    let typo = client.get("/v2/graph?model=syn_a&fromat=dot").unwrap();
    assert_eq!(typo.status, 400, "body: {}", typo.body);
    // Method guard: POST on the endpoint is a 405, not a 404.
    let post = client.post("/v2/graph", "{}").unwrap();
    assert_eq!(post.status, 405);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
