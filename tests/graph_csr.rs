//! Behavioral equivalence of the CSR-backed `MixedGraph` against a naive
//! map-based reference model, under random edge scripts.
//!
//! The CSR core packs adjacency into per-node sorted blocks in one shared
//! pool and mutates in place (insert-shift, relocate-on-grow, re-mark
//! without moving).  These tests drive both implementations through the
//! same random sequence of `add_edge` / `set_mark` / `remove_edge`
//! operations and assert that every observable — neighbors, per-endpoint
//! marks, degrees, the edge list, edge classification, m-separation — is
//! identical, and that a graph rebuilt from scratch in bulk equals the
//! incrementally mutated one.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xinsight::graph::{separation, Mark, MixedGraph};

/// Naive reference semantics: a map from ordered node pairs to the two
/// endpoint marks.  `marks[(a, b)]` is the mark at `a` on the edge `a – b`.
#[derive(Default, Clone)]
struct RefGraph {
    n: usize,
    marks: BTreeMap<(usize, usize), Mark>,
}

impl RefGraph {
    fn new(n: usize) -> Self {
        RefGraph {
            n,
            marks: BTreeMap::new(),
        }
    }

    fn add_edge(&mut self, a: usize, b: usize, near_a: Mark, near_b: Mark) {
        self.marks.insert((a, b), near_a);
        self.marks.insert((b, a), near_b);
    }

    fn remove_edge(&mut self, a: usize, b: usize) {
        self.marks.remove(&(a, b));
        self.marks.remove(&(b, a));
    }

    fn set_mark(&mut self, at: usize, other: usize, mark: Mark) {
        self.marks.insert((at, other), mark);
    }

    fn adjacent(&self, a: usize, b: usize) -> bool {
        self.marks.contains_key(&(a, b))
    }

    fn neighbors(&self, a: usize) -> Vec<usize> {
        self.marks
            .range((a, 0)..=(a, usize::MAX))
            .map(|(&(_, b), _)| b)
            .collect()
    }
}

/// One scripted mutation over a pair of distinct nodes.
#[derive(Debug, Clone)]
enum Op {
    Add { near_a: Mark, near_b: Mark },
    SetMark { at_a: bool, mark: Mark },
    Remove,
}

fn mark_of(v: u64) -> Mark {
    match v % 3 {
        0 => Mark::Tail,
        1 => Mark::Arrow,
        _ => Mark::Circle,
    }
}

/// Decodes one script word into a node pair plus an operation, weighted
/// 3:2:1 towards Add so scripts build graphs before churning them.
fn decode(word: u64, n_nodes: usize) -> (usize, usize, Op) {
    let a = (word & 0xff) as usize % n_nodes;
    let b = ((word >> 8) & 0xff) as usize % n_nodes;
    let op = match (word >> 16) % 6 {
        0..=2 => Op::Add {
            near_a: mark_of(word >> 24),
            near_b: mark_of(word >> 32),
        },
        3 | 4 => Op::SetMark {
            at_a: (word >> 40) & 1 == 1,
            mark: mark_of(word >> 24),
        },
        _ => Op::Remove,
    };
    (a, b, op)
}

/// A script: each word decodes to a node pair plus an operation.
fn script_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 1..120)
}

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("N{i}")).collect()
}

/// Applies one script step to both implementations, keeping them legal
/// (self loops and no-edge mark updates are skipped for both).
fn apply(graph: &mut MixedGraph, reference: &mut RefGraph, a: usize, b: usize, op: &Op) {
    if a == b {
        return;
    }
    match op {
        Op::Add { near_a, near_b } => {
            if !reference.adjacent(a, b) {
                graph.add_edge(a, b, *near_a, *near_b);
                reference.add_edge(a, b, *near_a, *near_b);
            }
        }
        Op::SetMark { at_a, mark } => {
            if reference.adjacent(a, b) {
                let (at, other) = if *at_a { (a, b) } else { (b, a) };
                graph.set_mark(at, other, *mark);
                reference.set_mark(at, other, *mark);
            }
        }
        Op::Remove => {
            if reference.adjacent(a, b) {
                graph.remove_edge(a, b);
                reference.remove_edge(a, b);
            }
        }
    }
}

fn assert_equivalent(graph: &MixedGraph, reference: &RefGraph) {
    assert_eq!(graph.n_nodes(), reference.n);
    let mut n_edges = 0usize;
    for a in 0..reference.n {
        let expected = reference.neighbors(a);
        assert_eq!(
            graph.neighbors(a),
            expected,
            "neighbor walk of node {a} diverged"
        );
        assert_eq!(graph.degree(a), expected.len());
        for (i, &b) in expected.iter().enumerate() {
            assert_eq!(graph.neighbor_at(a, i), b);
            assert_eq!(graph.mark_at(a, b), reference.marks.get(&(a, b)).copied());
            assert_eq!(graph.mark_at(b, a), reference.marks.get(&(b, a)).copied());
            let (nb, near_a, near_b) = graph.entry_at(a, i);
            assert_eq!(nb, b);
            assert_eq!(Some(near_a), reference.marks.get(&(a, b)).copied());
            assert_eq!(Some(near_b), reference.marks.get(&(b, a)).copied());
        }
        for b in 0..reference.n {
            assert_eq!(graph.adjacent(a, b), reference.adjacent(a, b));
        }
        n_edges += expected.len();
    }
    assert_eq!(graph.n_edges(), n_edges / 2);
    // The edge list reports each edge once, ascending by (a, b).
    let listed: Vec<(usize, usize)> = graph.edges().iter().map(|e| (e.a, e.b)).collect();
    let mut expected_edges: Vec<(usize, usize)> = reference
        .marks
        .keys()
        .filter(|&&(a, b)| a < b)
        .copied()
        .collect();
    expected_edges.sort_unstable();
    assert_eq!(listed, expected_edges);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Every observable of the CSR graph matches the reference after an
    // arbitrary mutation script.
    #[test]
    fn csr_graph_matches_reference_under_random_scripts(
        n_nodes in 2usize..12,
        script in script_strategy(),
    ) {
        let mut graph = MixedGraph::new(names(n_nodes));
        let mut reference = RefGraph::new(n_nodes);
        for &word in &script {
            let (a, b, op) = decode(word, n_nodes);
            apply(&mut graph, &mut reference, a, b, &op);
        }
        assert_equivalent(&graph, &reference);
    }

    // A graph that lived through insertions, removals and re-marks equals
    // a fresh graph bulk-built from the surviving edges — mutation history
    // (block relocation, pool garbage) is never observable, including
    // through m-separation and the skeleton/metric views.
    #[test]
    fn mutation_history_is_unobservable(
        n_nodes in 2usize..10,
        script in script_strategy(),
        x in 0usize..10,
        y in 0usize..10,
        z in prop::collection::vec(0usize..10, 0..3),
    ) {
        let mut graph = MixedGraph::new(names(n_nodes));
        let mut reference = RefGraph::new(n_nodes);
        for &word in &script {
            let (a, b, op) = decode(word, n_nodes);
            apply(&mut graph, &mut reference, a, b, &op);
        }
        // Bulk rebuild from the reference's surviving edges.
        let mut rebuilt = MixedGraph::new(names(n_nodes));
        for (&(a, b), &near_a) in &reference.marks {
            if a < b {
                let near_b = reference.marks[&(b, a)];
                rebuilt.add_edge(a, b, near_a, near_b);
            }
        }
        prop_assert_eq!(&graph, &rebuilt);
        prop_assert_eq!(graph.to_text(), rebuilt.to_text());
        prop_assert_eq!(graph.skeleton(), rebuilt.skeleton());
        let (x, y) = (x % n_nodes, y % n_nodes);
        let z: Vec<usize> = z.iter().map(|&v| v % n_nodes)
            .filter(|&v| v != x && v != y).collect();
        prop_assert_eq!(
            separation::m_separated(&graph, x, y, &z),
            separation::m_separated(&rebuilt, x, y, &z)
        );
        prop_assert_eq!(graph.has_directed_cycle(), rebuilt.has_directed_cycle());
        prop_assert_eq!(graph.is_ancestral(), rebuilt.is_ancestral());
    }
}
