//! Serving-layer equivalence tests.
//!
//! The online subsystem's core correctness claim is that every caching and
//! concurrency layer it adds is *invisible* in the answers:
//!
//! * serving through the bounded LRU [`ResultCache`] — including after
//!   forced evictions and recomputation — returns explanation bytes
//!   identical to direct [`XInsight::explain_many`] (property test);
//! * a `fit → save bundle → serve over HTTP → N concurrent clients`
//!   round trip answers every query byte-identically to a serial,
//!   freshly fitted engine (integration test).

// HashMap here never leaks iteration order into output: scratch counting map in an assertion (see clippy.toml).
#![allow(clippy::disallowed_types)]

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::{ExplainRequest, WhyQuery};
use xinsight::data::{Aggregate, Dataset, DatasetBuilder, Subspace};
use xinsight::service::{
    demo_queries, lru::CacheKey, lru::ResultCache, wire, HttpClient, ModelRegistry, ServerConfig,
};

/// A small lung-cancer-style dataset: enough structure that explanations
/// are non-trivial, small enough that `fit` is test-speed.
fn serving_data() -> Dataset {
    let mut location = Vec::new();
    let mut stress = Vec::new();
    let mut smoking = Vec::new();
    let mut severity = Vec::new();
    for i in 0..240 {
        let loc_a = i % 2 == 0;
        location.push(if loc_a { "A" } else { "B" });
        let high = i % 3 == 0;
        stress.push(if high { "High" } else { "Low" });
        let smokes = match (loc_a, high) {
            (true, true) => i % 10 < 9,
            (true, false) => i % 10 < 7,
            (false, true) => i % 10 < 4,
            (false, false) => i % 10 < 1,
        };
        smoking.push(if smokes { "Yes" } else { "No" });
        severity.push(match (smokes, i % 5) {
            (true, 0..=3) => 3.0,
            (true, _) => 2.0,
            (false, 0) => 2.0,
            (false, _) => 1.0,
        });
    }
    DatasetBuilder::new()
        .dimension("Location", location)
        .dimension("Stress", stress)
        .dimension("Smoking", smoking)
        .measure("LungCancer", severity)
        .build()
        .unwrap()
}

/// One fitted engine + query pool + per-query direct wire answers, shared
/// across property cases (the fit is the expensive part).
struct Fixture {
    engine: XInsight,
    queries: Vec<WhyQuery>,
    direct: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = serving_data();
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let mut queries = demo_queries(&data, 6).unwrap();
        queries.push(
            WhyQuery::new(
                "LungCancer",
                Aggregate::Avg,
                Subspace::of("Location", "A"),
                Subspace::of("Location", "B"),
            )
            .unwrap(),
        );
        let direct = queries
            .iter()
            .map(|q| {
                let response = engine.execute(&ExplainRequest::new(q.clone())).unwrap();
                wire::explanations_to_string(&response.into_explanations())
            })
            .collect();
        Fixture {
            engine,
            queries,
            direct,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Serving a random request stream through a (tiny, eviction-heavy)
    // LRU returns byte-identical answers to the direct engine path.
    #[test]
    fn lru_cached_serving_is_byte_identical_to_direct(
        stream in prop::collection::vec(0usize..7, 1..30),
        budget_entries in 1usize..4,
    ) {
        let fx = fixture();
        // Budget sized in "entries" so most streams force evictions: one
        // entry is roughly key + value + overhead.
        let per_entry = fx.queries[0].to_json().len()
            + fx.direct.iter().map(String::len).max().unwrap()
            + xinsight::service::lru::ENTRY_OVERHEAD_BYTES
            + 16 // one-segment fingerprint
            + 8;
        let cache = ResultCache::new(budget_entries * per_entry);
        // A fixed store snapshot for the whole stream: one sealed segment,
        // one dictionary size.  (The fingerprint-scoped paths — promotion,
        // merge, remap — are unit-tested in the lru module and exercised
        // over HTTP in tests/compaction.rs.)
        let fingerprint = vec![(1u64, 1u64)];
        let dict_len = 7usize;
        for &raw in &stream {
            let i = raw % fx.queries.len();
            let query = &fx.queries[i];
            let key = CacheKey {
                model: "m".to_owned(),
                query: query.clone(),
                options: String::new(),
            };
            // The serving path: LRU hit, or engine + insert on miss.
            let served: Arc<str> = match cache.lookup(&key, &fingerprint, dict_len) {
                xinsight::service::lru::Lookup::Hit(hit) => hit,
                _ => {
                    let answers = fx.engine
                        .execute_batch(&[ExplainRequest::new(query.clone())])
                        .unwrap();
                    let explanations = answers.into_iter().next().unwrap().into_explanations();
                    let json: Arc<str> =
                        Arc::from(wire::explanations_to_string(&explanations).as_str());
                    cache.insert(key, fingerprint.clone(), dict_len, Arc::clone(&json));
                    json
                }
            };
            prop_assert_eq!(&*served, fx.direct[i].as_str(),
                            "query {} diverged through the LRU", i);
        }
        let stats = cache.stats();
        prop_assert!(stats.bytes <= stats.byte_budget);
        // When the distinct working set cannot co-reside under the budget,
        // evictions must actually have happened — the equivalence above
        // then covered the recompute-after-eviction path too.  Dedupe by
        // query *value*: two pool indices can carry equal queries and then
        // share one cache entry.
        let distinct: std::collections::HashMap<&WhyQuery, usize> = stream
            .iter()
            .map(|raw| raw % fx.queries.len())
            .map(|i| (&fx.queries[i], i))
            .collect();
        let working_set_bytes: usize = distinct
            .values()
            .map(|&i| {
                "m".len()
                    + fx.queries[i].to_json().len()
                    + fx.direct[i].len()
                    + 16 // one-segment fingerprint
                    + xinsight::service::lru::ENTRY_OVERHEAD_BYTES
            })
            .sum();
        // (An entry can also be refused outright when it alone exceeds the
        // budget — that is the other bounded-cache path, equally covered
        // by the byte-equivalence loop above.)
        if working_set_bytes > stats.byte_budget {
            prop_assert!(stats.evictions > 0 || stats.uncacheable > 0,
                         "working set of {working_set_bytes} bytes vs budget {} \
                          with neither evictions nor refusals",
                         stats.byte_budget);
        }
    }
}

/// `fit → save → serve → N concurrent clients == serial direct answers`,
/// over real HTTP with the bundle reloaded from disk.
#[test]
fn concurrent_http_serving_matches_serial_direct_answers() {
    let fx = fixture();
    let data = serving_data();
    let dir = std::env::temp_dir().join(format!("xinsight_serving_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // fit → save: persist the bundle, then serve it from disk only.
    let options = XInsightOptions::default();
    let registry = ModelRegistry::open_empty(&dir, options.clone());
    xinsight::service::save_bundle(&dir, "served", &data, &fx.engine, &fx.queries).unwrap();
    drop(registry);
    let registry = ModelRegistry::open(&dir, options).unwrap();
    let handle = xinsight::service::start(
        Arc::new(registry),
        &ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // N concurrent clients, each issuing every query (offset start) plus
    // one batch request; every answer must equal the serial direct bytes.
    let mut clients = Vec::new();
    for offset in 0..4usize {
        clients.push(std::thread::spawn(move || {
            let fx = fixture();
            let mut http = HttpClient::connect(addr).unwrap();
            for round in 0..fx.queries.len() {
                let i = (offset + round) % fx.queries.len();
                let body = format!(
                    "{{\"model\":\"served\",\"query\":{}}}",
                    fx.queries[i].to_json()
                );
                let resp = http.post("/explain", &body).unwrap();
                assert_eq!(resp.status, 200, "client {offset}: {}", resp.body);
                let doc = xinsight::core::json::Json::parse(&resp.body).unwrap();
                assert_eq!(
                    doc.get("explanations").unwrap().to_string(),
                    fx.direct[i],
                    "client {offset} query {i} diverged over HTTP"
                );
            }
            // One batch covering the whole pool, order preserved.
            let batch: Vec<String> = fx.queries.iter().map(WhyQuery::to_json).collect();
            let body = format!("{{\"model\":\"served\",\"queries\":[{}]}}", batch.join(","));
            let resp = http.post("/explain_batch", &body).unwrap();
            assert_eq!(resp.status, 200, "client {offset}: {}", resp.body);
            let doc = xinsight::core::json::Json::parse(&resp.body).unwrap();
            let results = doc.get("results").unwrap().as_arr().unwrap().to_vec();
            assert_eq!(results.len(), fx.queries.len());
            for (i, result) in results.iter().enumerate() {
                assert_eq!(
                    result.get("explanations").unwrap().to_string(),
                    fx.direct[i],
                    "client {offset} batch slot {i} diverged"
                );
            }
        }));
    }
    for client in clients {
        client.join().unwrap();
    }

    // Graceful shutdown over the wire; the handle drains cleanly.
    let mut http = HttpClient::connect(addr).unwrap();
    assert_eq!(http.post("/admin/shutdown", "{}").unwrap().status, 200);
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
