//! Integration tests for the discovery stack: XLearner vs FCI on SYN-A data,
//! i.e. a miniature version of the Table 6 experiment run as a test.

/// The bench crate is not a dependency of the facade; re-implement the tiny
/// comparison helper here so the test exercises the public APIs directly.
mod bench_support {
    use xinsight::core::{XLearner, XLearnerOptions};
    use xinsight::discovery::{fci, FciOptions};
    use xinsight::graph::metrics::{skeleton_metrics, PrecisionRecall};
    use xinsight::stats::{CachedCiTest, ChiSquareTest};
    use xinsight::synth::syn_a::SynAInstance;

    pub fn compare(instance: &SynAInstance) -> (PrecisionRecall, PrecisionRecall) {
        let vars: Vec<&str> = instance.observed.iter().map(String::as_str).collect();
        let fci_opts = FciOptions {
            max_cond_size: Some(3),
            ..FciOptions::default()
        };
        let learner = XLearner::new(XLearnerOptions {
            fci: fci_opts.clone(),
            ..XLearnerOptions::default()
        });
        let test = CachedCiTest::new(ChiSquareTest::new(0.05));
        let xl = learner
            .learn_with_fd_graph(&instance.data, &vars, &test, &instance.fd_graph)
            .unwrap()
            .graph;
        let test2 = CachedCiTest::new(ChiSquareTest::new(0.05));
        let plain = fci(&instance.data, &vars, &test2, &fci_opts).unwrap().pag;
        (
            skeleton_metrics(&xl, &instance.ground_truth),
            skeleton_metrics(&plain, &instance.ground_truth),
        )
    }
}

use xinsight::synth::syn_a::{generate, SynAOptions};

#[test]
fn xlearner_beats_fci_on_fd_heavy_synthetic_data() {
    let mut xl_f1 = Vec::new();
    let mut fci_f1 = Vec::new();
    for seed in [1u64, 2, 3] {
        let instance = generate(&SynAOptions {
            n_core_variables: 10,
            n_rows: 1500,
            fd_nodes_per_leaf: 2,
            seed,
            ..SynAOptions::default()
        });
        let (xl, plain) = bench_support::compare(&instance);
        xl_f1.push(xl.f1);
        fci_f1.push(plain.f1);
    }
    let xl_mean = xl_f1.iter().sum::<f64>() / xl_f1.len() as f64;
    let fci_mean = fci_f1.iter().sum::<f64>() / fci_f1.len() as f64;
    assert!(
        xl_mean > fci_mean,
        "XLearner mean F1 ({xl_mean:.2}) must beat FCI ({fci_mean:.2}) in the presence of FDs"
    );
}

#[test]
fn xlearner_recall_advantage_comes_from_fd_edges() {
    let instance = generate(&SynAOptions {
        n_core_variables: 10,
        n_rows: 1500,
        fd_nodes_per_leaf: 2,
        seed: 5,
        ..SynAOptions::default()
    });
    let (xl, plain) = bench_support::compare(&instance);
    assert!(
        xl.recall >= plain.recall,
        "recall: {} vs {}",
        xl.recall,
        plain.recall
    );
    assert!(xl.precision > 0.5);
}
