//! Segmented-store equivalence tests.
//!
//! The storage refactor's core correctness claim: **segmentation is
//! invisible in the answers**.  However the same rows are split across
//! sealed segments — one monolithic base segment, or any number of
//! streaming-ingest batches — the engine returns byte-identical
//! explanations (ranks, scores, serialized wire bytes), because per-segment
//! partial aggregates merge with exact summation.
//!
//! * property test — random segment boundaries over SYN-A serving data:
//!   `from_fitted(prefix) + with_ingested(chunks…) == from_fitted(all)`;
//! * integration test — the same invariant on the FLIGHT simulator;
//! * HTTP test — the invariant holds end-to-end over the wire: serve a
//!   bundle, `POST /v2/ingest` the remaining rows, and the re-issued
//!   explains (through the LRU, across the ingest epoch bump) match a
//!   direct engine holding the same segmented store.

use proptest::prelude::*;
use std::sync::OnceLock;
use xinsight::core::json::Json;
use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::{ExplainRequest, FittedModel, WhyQuery};
use xinsight::data::{Dataset, RowMask, Value};
use xinsight::service::{
    demo::syn_a_serving_data, demo_queries, wire, HttpClient, ModelRegistry, ServerConfig,
};
use xinsight::synth::flight;

fn explain_wire(engine: &XInsight, query: &WhyQuery) -> String {
    wire::explanations_to_string(
        &engine
            .execute(&ExplainRequest::new(query.clone()))
            .unwrap()
            .into_explanations(),
    )
}

/// Rows `lo..hi` of a dataset as a standalone dataset.
fn rows_range(data: &Dataset, lo: usize, hi: usize) -> Dataset {
    data.filter_rows(&RowMask::from_bools(
        (0..data.n_rows()).map(|i| (lo..hi).contains(&i)),
    ))
    .unwrap()
}

/// An engine over `data` restored from `model`, with the rows segmented at
/// the (sorted, in-range) `cuts`: the first chunk is the restore base, each
/// further chunk arrives as one streaming-ingest batch.
fn chunked_engine(
    data: &Dataset,
    model: FittedModel,
    options: &XInsightOptions,
    cuts: &[usize],
) -> XInsight {
    let mut bounds = vec![0usize];
    bounds.extend(cuts.iter().copied());
    bounds.push(data.n_rows());
    let mut engine =
        XInsight::from_fitted(&rows_range(data, bounds[0], bounds[1]), model, options).unwrap();
    for pair in bounds[1..].windows(2) {
        engine = engine
            .with_ingested(&rows_range(data, pair[0], pair[1]))
            .unwrap();
    }
    engine
}

/// One fitted dataset: the raw rows, the offline artifact, a reference
/// engine over the whole data as a single segment, a query pool and the
/// reference wire answers.  Shared across property cases (the fit is the
/// expensive part).
struct Fixture {
    data: Dataset,
    model: FittedModel,
    options: XInsightOptions,
    queries: Vec<WhyQuery>,
    reference: Vec<String>,
}

impl Fixture {
    fn build(data: Dataset, mut queries: Vec<WhyQuery>) -> Fixture {
        let options = XInsightOptions::default();
        let fitted = XInsight::fit(&data, &options).unwrap();
        let model = fitted.fitted_model();
        let full = XInsight::from_fitted(&data, model.clone(), &options).unwrap();
        queries.truncate(4);
        let reference = queries.iter().map(|q| explain_wire(&full, q)).collect();
        Fixture {
            data,
            model,
            options,
            queries,
            reference,
        }
    }

    fn assert_equivalent(&self, cuts: &[usize]) {
        let chunked = chunked_engine(&self.data, self.model.clone(), &self.options, cuts);
        assert_eq!(chunked.data().n_segments(), cuts.len() + 1);
        assert_eq!(chunked.data().epoch(), cuts.len() as u64);
        for (query, expected) in self.queries.iter().zip(&self.reference) {
            assert_eq!(
                &explain_wire(&chunked, query),
                expected,
                "segmentation {cuts:?} changed the answer to {query}"
            );
        }
    }
}

fn syn_a_fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = syn_a_serving_data(420, 7).unwrap();
        let queries = demo_queries(&data, 4).unwrap();
        Fixture::build(data, queries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Random segment boundaries over SYN-A: the chunked engine (restore on
    // the first chunk, ingest the rest) answers byte-identically to the
    // single-segment engine over the same rows and model.
    #[test]
    fn segmented_explain_equals_single_segment_explain_on_syn_a(
        cuts in prop::collection::vec(1usize..419, 1..4),
    ) {
        let mut cuts = cuts;
        cuts.sort_unstable();
        cuts.dedup();
        syn_a_fixture().assert_equivalent(&cuts);
    }
}

#[test]
fn segmented_explain_equals_single_segment_explain_on_flight() {
    let data = flight::generate(2500, 1);
    let mut queries = vec![flight::why_query()];
    queries.extend(demo_queries(&data, 3).unwrap());
    let fixture = Fixture::build(data, queries);
    // A lopsided and an even segmentation, plus a many-segment one.
    fixture.assert_equivalent(&[100]);
    fixture.assert_equivalent(&[833, 1666]);
    fixture.assert_equivalent(&[400, 800, 1200, 1600, 2000, 2400]);
}

/// Serializes the raw rows of a dataset as `/v2/ingest` wire row objects.
fn wire_rows(data: &Dataset) -> String {
    let rows: Vec<Json> = (0..data.n_rows())
        .map(|row| {
            Json::Obj(
                data.schema()
                    .iter()
                    .map(|meta| {
                        let value = match data.value(row, &meta.name).unwrap() {
                            Value::Category(s) => Json::Str(s),
                            Value::Number(x) => Json::Num(x),
                            Value::Null => Json::Null,
                        };
                        (meta.name.clone(), value)
                    })
                    .collect(),
            )
        })
        .collect();
    Json::Arr(rows).to_string()
}

// End-to-end over HTTP: a served model ingests rows over the wire and then
// answers — through the LRU, across the epoch/generation bump — exactly
// like a direct engine holding the same segmented store.  This pins down
// the full path: wire row parsing, schema validation, f64 round-tripping,
// the atomic registry swap and the LRU generation keying.
#[test]
fn http_ingest_round_trip_matches_direct_segmented_engine() {
    let dir = std::env::temp_dir().join(format!("xinsight_segments_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let data = syn_a_serving_data(360, 11).unwrap();
    let base = rows_range(&data, 0, 280);
    let extra = rows_range(&data, 280, 360);
    let queries = demo_queries(&data, 3).unwrap();

    let options = XInsightOptions::default();
    let registry = ModelRegistry::open_empty(&dir, options.clone());
    registry
        .fit_and_save("seg", &base, queries.clone())
        .unwrap();
    let loaded = registry.load("seg").unwrap();
    // The reference: the served engine's store grown by the same batch.
    let direct = loaded.engine.with_ingested(&extra).unwrap();
    let expected: Vec<String> = queries.iter().map(|q| explain_wire(&direct, q)).collect();

    let handle =
        xinsight::service::start(std::sync::Arc::new(registry), &ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // Warm the LRU pre-ingest.
    for query in &queries {
        let body = format!("{{\"model\":\"seg\",\"query\":{}}}", query.to_json());
        assert_eq!(client.post("/explain", &body).unwrap().status, 200);
    }

    // Ingest the remaining rows over the wire: one sealed segment, no
    // model reload.
    let resp = client.ingest_v2("seg", &wire_rows(&extra)).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let doc = Json::parse(&resp.body).unwrap();
    assert_eq!(doc.get("ingested").unwrap().as_u64().unwrap(), 80);
    assert_eq!(doc.get("segments").unwrap().as_u64().unwrap(), 2);
    assert_eq!(doc.get("epoch").unwrap().as_u64().unwrap(), 1);

    // Every post-ingest answer matches the direct segmented engine — the
    // first request freshly computed (the epoch bump rolled the LRU keys),
    // the second a cache replay of identical bytes.
    for (query, expected) in queries.iter().zip(&expected) {
        let body = format!("{{\"model\":\"seg\",\"query\":{}}}", query.to_json());
        for (round, want_cached) in [(1, false), (2, true)] {
            let resp = client.post("/explain", &body).unwrap();
            assert_eq!(resp.status, 200, "body: {}", resp.body);
            let doc = Json::parse(&resp.body).unwrap();
            assert_eq!(
                doc.get("cached").unwrap().as_bool().unwrap(),
                want_cached,
                "round {round} of {query}"
            );
            assert_eq!(
                doc.get("explanations").unwrap().to_string(),
                *expected,
                "round {round} of {query}"
            );
        }
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
