//! Equivalence guarantees of the offline discovery engine:
//!
//! 1. the depth-parallel skeleton/FCI path produces **identical** graphs,
//!    sepsets and CI-test counts to the serial path (the frozen-batch +
//!    deterministic-merge construction), property-tested over SYN-A seeds
//!    and checked on a SYN-B-derived discovery workload, and
//! 2. a fitted model survives save → load → serve byte-identically:
//!    `from_fitted` answers exactly like the engine that produced it.

use proptest::prelude::*;
use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::FittedModel;
use xinsight::core::{ExplainRequest, Explanation, WhyQuery};
use xinsight::data::Aggregate;
use xinsight::discovery::{fci, fci_skeleton, FciOptions};
use xinsight::stats::{CachedCiTest, ChiSquareTest};
use xinsight::synth::{lung_cancer, syn_a, syn_b};

/// The new-API equivalent of the old `explain` shape, for equivalence
/// assertions.
fn explain(engine: &XInsight, query: &WhyQuery) -> Vec<Explanation> {
    engine
        .execute(&ExplainRequest::new(query.clone()))
        .unwrap()
        .into_explanations()
}

fn explain_many(engine: &XInsight, queries: &[WhyQuery]) -> Vec<Vec<Explanation>> {
    let requests: Vec<ExplainRequest> = queries
        .iter()
        .map(|q| ExplainRequest::new(q.clone()))
        .collect();
    engine
        .execute_batch(&requests)
        .unwrap()
        .into_iter()
        .map(|response| response.into_explanations())
        .collect()
}

fn fci_options(parallel: bool) -> FciOptions {
    FciOptions {
        max_cond_size: Some(3),
        parallel,
        ..FciOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Depth-parallel FCI equals serial FCI on SYN-A instances — edges,
    // endpoint marks, sepsets and the `n_ci_tests` accounting.
    #[test]
    fn parallel_fci_is_byte_identical_to_serial_on_syn_a(seed in 1u64..500) {
        let instance = syn_a::generate(&syn_a::SynAOptions {
            n_core_variables: 8,
            n_rows: 600,
            seed,
            ..syn_a::SynAOptions::default()
        });
        let vars: Vec<&str> = instance.observed.iter().map(String::as_str).collect();
        let serial_test = CachedCiTest::new(ChiSquareTest::new(0.05));
        let parallel_test = CachedCiTest::new(ChiSquareTest::new(0.05));
        let serial = fci(&instance.data, &vars, &serial_test, &fci_options(false)).unwrap();
        let parallel = fci(&instance.data, &vars, &parallel_test, &fci_options(true)).unwrap();
        prop_assert_eq!(&serial.pag, &parallel.pag);
        prop_assert_eq!(&serial.sepsets, &parallel.sepsets);
        prop_assert_eq!(serial.n_ci_tests, parallel.n_ci_tests);
    }

    // Same guarantee for the skeleton phase alone (the piece XLearner calls),
    // and independently of whether the CI cache is interposed.
    #[test]
    fn parallel_skeleton_is_identical_with_and_without_cache(seed in 1u64..500) {
        let instance = syn_a::generate(&syn_a::SynAOptions {
            n_core_variables: 7,
            n_rows: 500,
            seed,
            ..syn_a::SynAOptions::default()
        });
        let vars: Vec<&str> = instance.observed.iter().map(String::as_str).collect();
        let plain = ChiSquareTest::new(0.05);
        let cached = CachedCiTest::new(ChiSquareTest::new(0.05));
        let serial = fci_skeleton(&instance.data, &vars, &plain, &fci_options(false)).unwrap();
        let parallel = fci_skeleton(&instance.data, &vars, &cached, &fci_options(true)).unwrap();
        prop_assert_eq!(&serial.graph, &parallel.graph);
        prop_assert_eq!(&serial.sepsets, &parallel.sepsets);
        prop_assert_eq!(serial.n_ci_tests, parallel.n_ci_tests);
    }
}

/// SYN-B's X → Y → Z structure, discovered over the binned measure: the
/// parallel and serial fits agree end to end (graph and explanations).
#[test]
fn parallel_fit_equals_serial_fit_on_syn_b() {
    let instance = syn_b::generate(&syn_b::SynBOptions {
        n_rows: 4000,
        cardinality: 8,
        seed: 3,
        ..syn_b::SynBOptions::default()
    });
    let parallel = XInsight::fit(&instance.data, &XInsightOptions::default()).unwrap();
    let serial = XInsight::fit(
        &instance.data,
        &XInsightOptions {
            parallel: false,
            ..XInsightOptions::default()
        },
    )
    .unwrap();
    assert_eq!(parallel.graph(), serial.graph());
    assert_eq!(parallel.fitted_model(), serial.fitted_model());
    let query = instance.query(Aggregate::Avg);
    assert_eq!(explain(&parallel, &query), explain(&serial, &query));
}

/// fit → save → load → explain equals fit → explain, through an actual file.
#[test]
fn fitted_model_file_round_trip_serves_identically() {
    let data = lung_cancer::generate(1500, 7);
    let options = XInsightOptions::default();
    let engine = XInsight::fit(&data, &options).unwrap();
    let query = lung_cancer::why_query();
    let direct = explain(&engine, &query);

    let path = std::env::temp_dir().join("xinsight_offline_equivalence_model.json");
    engine.fitted_model().save(&path).unwrap();
    let loaded = FittedModel::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, engine.fitted_model());

    let restored = XInsight::from_fitted(&data, loaded, &options).unwrap();
    assert_eq!(restored.graph(), engine.graph());
    assert_eq!(explain(&restored, &query), direct);

    // Batch serving from the loaded artifact matches too.
    let queries = [query.clone(), query];
    assert_eq!(
        explain_many(&restored, &queries),
        explain_many(&engine, &queries)
    );
}
