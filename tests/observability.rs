//! Observability suite: `/metrics` exposition, counter reconciliation,
//! request-lifecycle traces and the `/debug/traces` surface.
//!
//! The bar, per stage of the pipeline:
//!
//! * **valid exposition** — `GET /metrics` parses under the exposition
//!   validator AND under independent structural checks in this file
//!   (`TYPE` precedes samples, histogram buckets are cumulative, `+Inf`
//!   closes every histogram), so the validator can't vouch for itself;
//! * **counters reconcile** — per-endpoint request counters equal the
//!   exact number of HTTP requests this test issued, endpoint by
//!   endpoint;
//! * **spans attribute honestly** — every trace's spans are monotonic on
//!   one clock, stay inside the request window, and for a known-duration
//!   request sum to ≥95% of the end-to-end total;
//! * **bounded retention** — the recent-trace ring stays at its capacity
//!   under a flood while slow traces survive in the reservoir;
//! * **gated surface** — `/debug/traces` 404s without `--debug-endpoints`
//!   while `/metrics` stays public;
//! * **cache accounting closes** — `/stats` reports result-cache tiers
//!   with `hits + prefix_hits + merged + misses == lookups` exactly.

// HashMap here never leaks iteration order into output: scratch maps for exposition parsing (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use xinsight::core::json::Json;
use xinsight::core::pipeline::{XInsight, XInsightOptions};
use xinsight::core::WhyQuery;
use xinsight::data::{Aggregate, Dataset, DatasetBuilder, Subspace, Value};
use xinsight::service::{
    demo_queries, validate_exposition, HttpClient, ModelRegistry, ServerConfig, ServerHandle,
};

fn tri_data(n: usize) -> Dataset {
    let mut location = Vec::new();
    let mut smoking = Vec::new();
    let mut severity = Vec::new();
    for i in 0..n {
        let loc = ["A", "B", "C"][i % 3];
        location.push(loc);
        let smokes = i % 7 < 3;
        smoking.push(if smokes { "Yes" } else { "No" });
        severity.push(match (loc, smokes) {
            ("A", true) => 3.0,
            ("A", false) => 2.0,
            ("B", _) => 1.0,
            _ => 1.5,
        });
    }
    DatasetBuilder::new()
        .dimension("Location", location)
        .dimension("Smoking", smoking)
        .measure("Severity", severity)
        .build()
        .unwrap()
}

/// Serializes raw dataset rows as JSON row objects for `/v2/ingest`.
fn wire_rows(data: &Dataset) -> String {
    let rows: Vec<Json> = (0..data.n_rows())
        .map(|row| {
            Json::Obj(
                data.schema()
                    .iter()
                    .map(|meta| {
                        let value = match data.value(row, &meta.name).unwrap() {
                            Value::Category(s) => Json::Str(s),
                            Value::Number(x) => Json::Num(x),
                            Value::Null => Json::Null,
                        };
                        (meta.name.clone(), value)
                    })
                    .collect(),
            )
        })
        .collect();
    Json::Arr(rows).to_string()
}

struct Fixture {
    base: Dataset,
    engine: XInsight,
    queries: Vec<WhyQuery>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let base = tri_data(150);
        let engine = XInsight::fit(&base, &XInsightOptions::default()).unwrap();
        let mut queries = demo_queries(&base, 4).unwrap();
        queries.push(
            WhyQuery::new(
                "Severity",
                Aggregate::Avg,
                Subspace::of("Location", "A"),
                Subspace::of("Location", "B"),
            )
            .unwrap(),
        );
        Fixture {
            base,
            engine,
            queries,
        }
    })
}

/// Saves the fixture bundle into a fresh dir and serves it.
fn serve_fixture(tag: &str, config: &ServerConfig) -> (ServerHandle, std::path::PathBuf) {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let fx = fixture();
    let dir = std::env::temp_dir().join(format!(
        "xinsight_observability_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    xinsight::service::save_bundle(&dir, "obs", &fx.base, &fx.engine, &fx.queries).unwrap();
    let registry = ModelRegistry::open(&dir, XInsightOptions::default()).unwrap();
    let handle = xinsight::service::start(Arc::new(registry), config).unwrap();
    xinsight::service::wait_healthy(handle.addr(), Duration::from_secs(10)).unwrap();
    (handle, dir)
}

/// The value of one exposition series, parsed straight off the text —
/// `series` is the full sample name including labels.
fn series_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let (name, value) = line.rsplit_once(' ')?;
        (name == series).then(|| value.parse().ok())?
    })
}

/// Independent structural checks on the exposition — deliberately NOT the
/// library validator, so the two can disagree.
fn check_exposition_independently(text: &str) {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    // Cumulative-bucket state per histogram label-set.
    let mut last_bucket: HashMap<String, (f64, f64)> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line names a family");
            let kind = parts.next().expect("TYPE line carries a kind");
            types.insert(name.to_owned(), kind.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().expect("sample value is a number");
        let name = series.split('{').next().unwrap();
        // Every sample's family must have been typed beforehand
        // (histogram children map onto their base family).
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                types.contains_key(base).then(|| base.to_owned())
            })
            .unwrap_or_else(|| name.to_owned());
        assert!(
            types.contains_key(&family),
            "sample `{series}` appears before its TYPE header"
        );
        if name.ends_with("_bucket") {
            let labels = series.split('{').nth(1).unwrap_or("");
            let (prefix, le) = labels
                .trim_end_matches('}')
                .rsplit_once("le=\"")
                .expect("bucket sample carries an le label");
            let le = le.trim_end_matches('"');
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().expect("finite le parses")
            };
            let key = format!("{name}{{{prefix}");
            if let Some((prev_le, prev_count)) = last_bucket.get(&key) {
                assert!(le > *prev_le, "bucket bounds not increasing in `{series}`");
                assert!(
                    value >= *prev_count,
                    "bucket counts not cumulative in `{series}`"
                );
            }
            last_bucket.insert(key, (le, value));
        }
    }
    // Every histogram's bucket chain must terminate at +Inf.
    for (key, (le, _)) in &last_bucket {
        assert!(
            le.is_infinite(),
            "histogram `{key}` does not close with a +Inf bucket"
        );
    }
    assert!(!types.is_empty(), "exposition carries no TYPE headers");
}

#[test]
fn metrics_exposition_is_valid_and_counters_reconcile_exactly() {
    let fx = fixture();
    let (handle, dir) = serve_fixture("reconcile", &ServerConfig::default());
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // A known request mix, endpoint by endpoint.  wait_healthy already
    // issued /healthz probes, but /healthz has no per-endpoint counter —
    // everything counted below is issued here, exactly.
    let q = fx.queries[0].to_json();
    for _ in 0..3 {
        let resp = client
            .post("/explain", &format!("{{\"model\":\"obs\",\"query\":{q}}}"))
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    for _ in 0..2 {
        let resp = client.explain_v2("obs", &q, None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    let resp = client
        .post(
            "/explain_batch",
            &format!("{{\"model\":\"obs\",\"queries\":[{q},{q}]}}"),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let chunk = tri_data(9);
    let resp = client.ingest_v2("obs", &wire_rows(&chunk)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let resp = client.get("/models").unwrap();
    assert_eq!(resp.status, 200);
    let resp = client.get("/stats").unwrap();
    assert_eq!(resp.status, 200);

    let scrape = client.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    validate_exposition(&scrape.body).expect("/metrics must be valid text exposition");
    check_exposition_independently(&scrape.body);

    let counter = |series: &str| -> f64 { series_value(&scrape.body, series).unwrap_or(-1.0) };
    assert_eq!(
        counter("xinsight_requests_total{endpoint=\"explain\"}"),
        3.0
    );
    assert_eq!(
        counter("xinsight_requests_total{endpoint=\"explain_v2\"}"),
        2.0
    );
    assert_eq!(
        counter("xinsight_requests_total{endpoint=\"explain_batch\"}"),
        1.0
    );
    assert_eq!(
        counter("xinsight_requests_total{endpoint=\"ingest_v2\"}"),
        1.0
    );
    assert_eq!(counter("xinsight_requests_total{endpoint=\"models\"}"), 1.0);
    assert_eq!(counter("xinsight_requests_total{endpoint=\"stats\"}"), 1.0);
    // The metrics counter increments after its own render: the first
    // scrape reports 0 of itself, the next reports the first.
    assert_eq!(
        counter("xinsight_requests_total{endpoint=\"metrics\"}"),
        0.0
    );
    let rescrape = client.get("/metrics").unwrap();
    assert_eq!(
        series_value(
            &rescrape.body,
            "xinsight_requests_total{endpoint=\"metrics\"}"
        ),
        Some(1.0)
    );

    // The request-latency histogram must have seen at least the explains.
    let total = series_value(&scrape.body, "xinsight_request_latency_seconds_count")
        .expect("request latency histogram present");
    assert!(total >= 3.0, "latency histogram count {total} < 3");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// Pulls the trace document off `/debug/traces`.
fn traces_doc(client: &mut HttpClient) -> Json {
    let resp = client.get("/debug/traces").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    Json::parse(&resp.body).unwrap()
}

fn span_field(span: &Json, field: &str) -> u64 {
    span.get(field).and_then(Json::as_u64).unwrap()
}

#[test]
fn trace_spans_are_monotonic_and_account_for_the_request() {
    let fx = fixture();
    let config = ServerConfig {
        debug_endpoints: true,
        trace_slow_ms: 40,
        ..ServerConfig::default()
    };
    let (handle, dir) = serve_fixture("spans", &config);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let q = fx.queries[0].to_json();
    let resp = client
        .post("/explain", &format!("{{\"model\":\"obs\",\"query\":{q}}}"))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    // A known-duration request well past the slow threshold: its span sum
    // must attribute (almost) all of the wall clock.
    let resp = client.post("/debug/sleep", "{\"ms\":80}").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    let doc = traces_doc(&mut client);
    let recent = doc.get("recent").and_then(Json::as_arr).unwrap();
    assert!(!recent.is_empty(), "no traces recorded");
    let vocabulary = [
        "parse",
        "queue_wait",
        "cache_lookup",
        "execute",
        "serialize",
        "write",
    ];
    for trace in recent {
        let total_us = span_field(trace, "total_us");
        let spans = trace.get("spans").and_then(Json::as_arr).unwrap();
        assert!(!spans.is_empty(), "trace carries no spans");
        let mut prev_start = 0u64;
        for span in spans {
            let stage = span.get("stage").and_then(Json::as_str).unwrap();
            assert!(vocabulary.contains(&stage), "unknown stage `{stage}`");
            let start = span_field(span, "start_us");
            let duration = span_field(span, "duration_us");
            // Spans share one epoch clock: starts are monotonic in
            // recording order and every span ends inside the request.
            assert!(start >= prev_start, "span starts went backwards");
            prev_start = start;
            assert!(
                start + duration <= total_us + 1_000,
                "span [{start}, {}] escapes the {total_us}us request window",
                start + duration
            );
        }
        // Sequential stages must not overlap: parse precedes queue_wait
        // precedes the handler stages precedes write.
        let end_of = |name: &str| -> Option<u64> {
            spans
                .iter()
                .filter(|s| s.get("stage").and_then(Json::as_str).unwrap() == name)
                .map(|s| span_field(s, "start_us") + span_field(s, "duration_us"))
                .max()
        };
        let start_of = |name: &str| -> Option<u64> {
            spans
                .iter()
                .filter(|s| s.get("stage").and_then(Json::as_str).unwrap() == name)
                .map(|s| span_field(s, "start_us"))
                .min()
        };
        for pair in [("parse", "queue_wait"), ("queue_wait", "execute")] {
            if let (Some(end), Some(start)) = (end_of(pair.0), start_of(pair.1)) {
                assert!(
                    end <= start,
                    "`{}` (ends {end}) overlaps `{}` (starts {start})",
                    pair.0,
                    pair.1
                );
            }
        }
        if let Some(write_start) = start_of("write") {
            for stage in ["parse", "queue_wait", "cache_lookup", "serialize"] {
                if let Some(end) = end_of(stage) {
                    assert!(end <= write_start, "`{stage}` overlaps the write stage");
                }
            }
        }
        // Durations of the sequential vocabulary sum within the total
        // (spans never invent time the request didn't spend).
        let sum: u64 = spans.iter().map(|s| span_field(s, "duration_us")).sum();
        assert!(
            sum <= total_us + 1_000,
            "spans sum to {sum}us, more than the {total_us}us total"
        );
    }

    // The slow reservoir holds the sleep request, and its spans attribute
    // at least 95% of the end-to-end time (the sleep dominates).
    let slow = doc.get("slow").and_then(Json::as_arr).unwrap();
    let sleep_trace = slow
        .iter()
        .find(|t| t.get("endpoint").and_then(Json::as_str).unwrap() == "POST /debug/sleep")
        .expect("the 80ms sleep must land in the slow reservoir");
    let total_us = span_field(sleep_trace, "total_us");
    assert!(total_us >= 80_000, "sleep trace total {total_us}us < 80ms");
    let spans = sleep_trace.get("spans").and_then(Json::as_arr).unwrap();
    let sum: u64 = spans.iter().map(|s| span_field(s, "duration_us")).sum();
    assert!(
        sum * 20 >= total_us * 19,
        "spans attribute only {sum}us of the {total_us}us request"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn trace_ring_is_bounded_and_slow_traces_survive_the_flood() {
    let config = ServerConfig {
        debug_endpoints: true,
        trace_slow_ms: 40,
        ..ServerConfig::default()
    };
    let (handle, dir) = serve_fixture("ring", &config);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // One slow request first…
    let resp = client.post("/debug/sleep", "{\"ms\":80}").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = traces_doc(&mut client);
    let ring_capacity = doc.get("ring_capacity").and_then(Json::as_u64).unwrap();
    let slow_id = doc
        .get("slow")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .find(|t| t.get("endpoint").and_then(Json::as_str).unwrap() == "POST /debug/sleep")
        .map(|t| span_field(t, "id"))
        .expect("sleep trace in the reservoir");

    // …then a keep-alive flood larger than the ring.
    for _ in 0..ring_capacity + 16 {
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
    }

    let doc = traces_doc(&mut client);
    let recent = doc.get("recent").and_then(Json::as_arr).unwrap();
    assert!(
        recent.len() as u64 <= ring_capacity,
        "ring grew to {} past its capacity {ring_capacity}",
        recent.len()
    );
    // The flood evicted the slow trace from the ring…
    assert!(
        !recent.iter().any(|t| span_field(t, "id") == slow_id),
        "the flood should have evicted the slow trace from the ring"
    );
    // …but the reservoir still holds it.
    let survives = doc
        .get("slow")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .any(|t| span_field(t, "id") == slow_id);
    assert!(
        survives,
        "slow trace evicted from the always-keep reservoir"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn debug_traces_is_gated_while_metrics_stays_public() {
    let (handle, dir) = serve_fixture("gated", &ServerConfig::default());
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let resp = client.get("/debug/traces").unwrap();
    assert_eq!(
        resp.status, 404,
        "/debug/traces must 404 without --debug-endpoints"
    );
    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200, "/metrics must stay public");
    validate_exposition(&resp.body).expect("/metrics must be valid text exposition");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stats_result_cache_tiers_always_sum_to_lookups() {
    let fx = fixture();
    let (handle, dir) = serve_fixture("cache_sums", &ServerConfig::default());
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // Exercise every tier: cold misses, exact hits, then an ingest so
    // follow-up lookups promote or merge through the prefix path.
    for round in 0..2 {
        for q in &fx.queries {
            let q = q.to_json();
            let resp = client
                .post("/explain", &format!("{{\"model\":\"obs\",\"query\":{q}}}"))
                .unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body);
        }
        if round == 0 {
            let resp = client.ingest_v2("obs", &wire_rows(&tri_data(9))).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body);
        }
    }

    let resp = client.get("/stats").unwrap();
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.body).unwrap();
    let cache = doc.get("result_cache").unwrap();
    let counter = |name: &str| cache.get(name).and_then(Json::as_u64).unwrap();
    let (lookups, hits, prefix_hits, merged, misses) = (
        counter("lookups"),
        counter("hits"),
        counter("prefix_hits"),
        counter("merged"),
        counter("misses"),
    );
    assert!(lookups > 0, "no result-cache lookups recorded");
    assert_eq!(
        hits + prefix_hits + merged + misses,
        lookups,
        "result-cache tiers do not sum to lookups \
         (hits {hits} + prefix {prefix_hits} + merged {merged} + misses {misses} != {lookups})"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
