//! Integration tests for XPlainer and the baselines on SYN-B data — a
//! miniature, assertion-backed version of the Table 8/9 experiments.

use xinsight::baselines::{BoExplain, ExplanationEngine, RsExplain, Scorpion};
use xinsight::core::{SearchStrategy, XPlainer, XPlainerOptions};
use xinsight::data::Aggregate;
use xinsight::synth::syn_b::{generate, SynBOptions};

fn f1(values: &[String], truth: &[String]) -> f64 {
    let tp = values.iter().filter(|v| truth.contains(v)).count() as f64;
    if values.is_empty() || truth.is_empty() {
        return 0.0;
    }
    let p = tp / values.len() as f64;
    let r = tp / truth.len() as f64;
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

#[test]
fn xplainer_recovers_the_planted_explanation_for_both_aggregates() {
    let instance = generate(&SynBOptions {
        n_rows: 10_000,
        cardinality: 10,
        seed: 1,
        ..SynBOptions::default()
    });
    let store = instance.data.clone().into_segmented();
    let xplainer = XPlainer::new(XPlainerOptions::default());
    for aggregate in [Aggregate::Sum, Aggregate::Avg] {
        let query = instance.query(aggregate);
        let candidate = xplainer
            .explain_attribute(&store, &query, "Y", SearchStrategy::Optimized, true)
            .unwrap()
            .unwrap_or_else(|| panic!("{aggregate:?}: explanation must exist"));
        let score = f1(candidate.predicate.values(), &instance.ground_truth);
        assert!(
            score >= 0.99,
            "{aggregate:?}: expected exact recovery, got F1 = {score} ({})",
            candidate.predicate
        );
    }
}

#[test]
fn xplainer_is_cheaper_than_the_exhaustive_baselines() {
    let instance = generate(&SynBOptions {
        n_rows: 5_000,
        cardinality: 12,
        seed: 2,
        ..SynBOptions::default()
    });
    let query = instance.query(Aggregate::Avg);
    let store = instance.data.clone().into_segmented();
    let xplainer = XPlainer::new(XPlainerOptions::default());
    let ours = xplainer
        .explain_attribute(&store, &query, "Y", SearchStrategy::Optimized, true)
        .unwrap()
        .unwrap();
    let scorpion = Scorpion::default()
        .explain(&instance.data, &query, "Y")
        .unwrap()
        .unwrap();
    assert!(
        ours.n_delta_evaluations * 10 < scorpion.n_delta_evaluations,
        "XPlainer ({}) must need far fewer Δ evaluations than Scorpion ({})",
        ours.n_delta_evaluations,
        scorpion.n_delta_evaluations
    );
}

#[test]
fn exhaustive_baselines_refuse_high_cardinality_but_xplainer_does_not() {
    let instance = generate(&SynBOptions {
        n_rows: 5_000,
        cardinality: 50,
        seed: 3,
        ..SynBOptions::default()
    });
    let query = instance.query(Aggregate::Avg);
    assert!(Scorpion::default()
        .explain(&instance.data, &query, "Y")
        .is_err());
    assert!(RsExplain::default()
        .explain(&instance.data, &query, "Y")
        .is_err());
    let store = instance.data.clone().into_segmented();
    let xplainer = XPlainer::new(XPlainerOptions::default());
    let ours = xplainer
        .explain_attribute(&store, &query, "Y", SearchStrategy::Optimized, true)
        .unwrap()
        .unwrap();
    assert!(f1(ours.predicate.values(), &instance.ground_truth) > 0.9);
}

#[test]
fn boexplain_accuracy_degrades_with_cardinality_while_xplainer_stays_exact() {
    let engine = BoExplain::default();
    let xplainer = XPlainer::new(XPlainerOptions::default());
    let mut bo_scores = Vec::new();
    let mut x_scores = Vec::new();
    for &card in &[10usize, 60] {
        let instance = generate(&SynBOptions {
            n_rows: 5_000,
            cardinality: card,
            seed: 4,
            ..SynBOptions::default()
        });
        let query = instance.query(Aggregate::Avg);
        let store = instance.data.clone().into_segmented();
        let bo = engine
            .explain(&instance.data, &query, "Y")
            .unwrap()
            .map(|e| f1(e.predicate.values(), &instance.ground_truth))
            .unwrap_or(0.0);
        let ours = xplainer
            .explain_attribute(&store, &query, "Y", SearchStrategy::Optimized, true)
            .unwrap()
            .map(|c| f1(c.predicate.values(), &instance.ground_truth))
            .unwrap_or(0.0);
        bo_scores.push(bo);
        x_scores.push(ours);
    }
    assert!(bo_scores[1] <= bo_scores[0]);
    assert!(x_scores.iter().all(|&s| s > 0.9));
}

#[test]
fn small_mean_gaps_are_still_explained() {
    // Table 9's hardest setting: μ* − μ = 5.
    let instance = generate(&SynBOptions {
        n_rows: 20_000,
        cardinality: 10,
        mu_normal: 10.0,
        mu_abnormal: 15.0,
        seed: 5,
        ..SynBOptions::default()
    });
    let query = instance.query(Aggregate::Avg);
    let store = instance.data.clone().into_segmented();
    let xplainer = XPlainer::new(XPlainerOptions::default());
    let candidate = xplainer
        .explain_attribute(&store, &query, "Y", SearchStrategy::Optimized, true)
        .unwrap()
        .expect("an explanation must exist even at a small gap");
    assert!(f1(candidate.predicate.values(), &instance.ground_truth) > 0.6);
}

#[test]
fn execute_batch_is_byte_identical_to_serial_execute_calls() {
    // The acceptance bar of the parallel/cached engine: a batch of >= 4
    // requests answered through the shared SelectionCache and the thread
    // pool must reproduce the fully serial engine's explanations exactly —
    // including every floating-point field.
    use xinsight::core::pipeline::{XInsight, XInsightOptions};
    use xinsight::core::ExplainRequest;
    use xinsight::data::Subspace;
    use xinsight::synth::flight;

    let data = flight::generate(4_000, 7);
    let parallel_engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
    let serial_engine = XInsight::fit(
        &data,
        &XInsightOptions {
            parallel: false,
            ..XInsightOptions::default()
        },
    )
    .unwrap();

    let pairs = [
        ("May", "Nov"),
        ("Jun", "Nov"),
        ("May", "Jan"),
        ("Jul", "Feb"),
        ("Aug", "Dec"),
    ];
    let queries: Vec<xinsight::core::WhyQuery> = pairs
        .iter()
        .map(|&(a, b)| {
            xinsight::core::WhyQuery::new(
                "DelayMinute",
                Aggregate::Avg,
                Subspace::of("Month", a),
                Subspace::of("Month", b),
            )
            .unwrap()
        })
        .collect();

    let requests: Vec<ExplainRequest> = queries
        .iter()
        .map(|q| ExplainRequest::new(q.clone()))
        .collect();
    let batched: Vec<Vec<xinsight::core::Explanation>> = parallel_engine
        .execute_batch(&requests)
        .unwrap()
        .into_iter()
        .map(|response| response.into_explanations())
        .collect();
    assert_eq!(batched.len(), queries.len());
    assert!(
        batched.iter().any(|explanations| !explanations.is_empty()),
        "at least one query must be explainable"
    );
    for (query, batch_result) in queries.iter().zip(&batched) {
        let serial_result = serial_engine
            .execute(&ExplainRequest::new(query.clone()))
            .unwrap()
            .into_explanations();
        assert_eq!(
            batch_result, &serial_result,
            "parallel+cached execute_batch diverged from serial execute on {query}"
        );
        // Bit-level equality of every floating-point field, not just
        // PartialEq (which 0.0 == -0.0 would satisfy).
        for (a, b) in batch_result.iter().zip(&serial_result) {
            assert_eq!(a.responsibility.to_bits(), b.responsibility.to_bits());
            assert_eq!(a.original_delta.to_bits(), b.original_delta.to_bits());
            assert_eq!(
                a.remaining_delta.map(f64::to_bits),
                b.remaining_delta.map(f64::to_bits)
            );
        }
    }
}

#[test]
fn shared_cache_reuses_work_across_strategies_and_queries() {
    use std::sync::Arc;
    use xinsight::core::SelectionCache;

    let instance = generate(&SynBOptions {
        n_rows: 10_000,
        cardinality: 8,
        seed: 3,
        ..SynBOptions::default()
    });
    let store = instance.data.clone().into_segmented();
    let xplainer = XPlainer::new(XPlainerOptions::default());
    let cache = Arc::new(SelectionCache::new());

    // SUM runs first and pays for the per-filter masks and aggregates…
    let sum = xplainer
        .explain_attribute_cached(
            &store,
            &instance.query(Aggregate::Sum),
            "Y",
            SearchStrategy::Optimized,
            true,
            Arc::clone(&cache),
        )
        .unwrap()
        .expect("SUM explanation exists");
    let misses_after_sum = cache.misses();

    // …then AVG over the same attribute replays most of them.
    let avg = xplainer
        .explain_attribute_cached(
            &store,
            &instance.query(Aggregate::Avg),
            "Y",
            SearchStrategy::Optimized,
            true,
            Arc::clone(&cache),
        )
        .unwrap()
        .expect("AVG explanation exists");
    assert!(cache.hits() > 0, "AVG must replay SUM's cache entries");
    assert!(misses_after_sum > 0);
    // AVG's per-filter Δ_i probes are exactly the ones SUM already paid for,
    // so on the warm cache it must spend strictly fewer fresh evaluations
    // than the same search on a cold cache.
    let cold_avg = xplainer
        .explain_attribute(
            &store,
            &instance.query(Aggregate::Avg),
            "Y",
            SearchStrategy::Optimized,
            true,
        )
        .unwrap()
        .expect("cold AVG explanation exists");
    assert_eq!(cold_avg.predicate.values(), avg.predicate.values());
    assert!(
        avg.n_delta_evaluations < cold_avg.n_delta_evaluations,
        "warm cache must save Δ evaluations ({} vs {})",
        avg.n_delta_evaluations,
        cold_avg.n_delta_evaluations
    );
    // Both find the planted trigger categories.
    assert!(f1(sum.predicate.values(), &instance.ground_truth) >= 0.99);
    assert!(f1(avg.predicate.values(), &instance.ground_truth) >= 0.99);

    // An identical AVG search on the warm cache computes nothing at all.
    let replay = xplainer
        .explain_attribute_cached(
            &store,
            &instance.query(Aggregate::Avg),
            "Y",
            SearchStrategy::Optimized,
            true,
            Arc::clone(&cache),
        )
        .unwrap()
        .expect("replayed AVG explanation exists");
    assert_eq!(replay.predicate.values(), avg.predicate.values());
    assert_eq!(
        replay.n_delta_evaluations, 0,
        "fully warm cache => zero fresh Δ evaluations"
    );
}
