//! # xinsight-stats
//!
//! Statistical substrate for the XInsight reproduction.
//!
//! Constraint-based causal discovery (Sec. 2.2) reduces to a stream of
//! conditional-independence (CI) queries `X ⫫ Y | Z` answered from data.
//! This crate provides
//!
//! * [`special`] — log-gamma, regularized incomplete gamma, chi-square and
//!   normal survival functions (no third-party math dependency),
//! * [`ContingencyTable`] — stratified cross tabulations of dimensions,
//! * [`ChiSquareTest`] and [`GTest`] — CI tests for categorical data,
//! * [`FisherZTest`] — partial-correlation CI test for numerical data,
//! * [`CiTest`] — the trait the discovery algorithms program against, plus a
//!   [`CachedCiTest`] wrapper memoising repeated queries (FCI asks the same
//!   question many times across its skeleton and Possible-D-SEP phases).

#![warn(missing_docs)]

mod cache;
mod chi_square;
mod ci_test;
mod contingency;
mod fisher_z;
mod gtest;
pub mod special;

pub use cache::CachedCiTest;
pub use chi_square::ChiSquareTest;
pub use ci_test::{CiOutcome, CiTest};
pub use contingency::ContingencyTable;
pub use fisher_z::FisherZTest;
pub use gtest::GTest;
