//! # xinsight-stats
//!
//! Statistical substrate for the XInsight reproduction.
//!
//! Constraint-based causal discovery (Sec. 2.2) reduces to a stream of
//! conditional-independence (CI) queries `X ⫫ Y | Z` answered from data.
//! This crate provides
//!
//! * [`special`] — log-gamma, regularized incomplete gamma, chi-square and
//!   normal survival functions (no third-party math dependency),
//! * [`DiscoveryView`] — a per-fit compilation of the discovery variable set:
//!   names resolved to dense ids once, borrowed `&[u32]` code slices and
//!   cardinalities held for zero-cost repeated access,
//! * [`ContingencyTable`] — stratified cross tabulations of dimensions, built
//!   in one pass from a view (with a sparse stratum fallback for
//!   high-cardinality conditioning sets),
//! * [`ChiSquareTest`] and [`GTest`] — CI tests for categorical data,
//! * [`FisherZTest`] — partial-correlation CI test for numerical data,
//! * [`CiTest`] — the trait the discovery algorithms program against, with
//!   [`CiTest::compile`] producing an [`IndexedCiTest`] that answers queries
//!   by dense variable id, plus a [`CachedCiTest`] wrapper memoising repeated
//!   queries behind compact `(u32, u32, SmallVec<u32>)` keys (FCI asks the
//!   same question many times across its skeleton and Possible-D-SEP phases).

#![warn(missing_docs)]

mod cache;
mod chi_square;
mod ci_test;
mod contingency;
mod fisher_z;
mod gtest;
mod small_vec;
pub mod special;
mod view;

pub use cache::{CacheStats, CachedCiTest};
pub use chi_square::ChiSquareTest;
pub use ci_test::{CiOutcome, CiTest, IndexedCiTest};
pub use contingency::ContingencyTable;
pub use fisher_z::FisherZTest;
pub use gtest::GTest;
pub use small_vec::SmallVec;
pub use view::DiscoveryView;
