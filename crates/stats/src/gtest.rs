//! Likelihood-ratio (G) conditional-independence test.

use crate::ci_test::{outcome_from_statistic, CiOutcome, CiTest, IndexedCiTest};
use crate::contingency::ContingencyTable;
use crate::view::DiscoveryView;
use xinsight_data::{Dataset, Result};

/// The G-test (likelihood-ratio test) of `X ⫫ Y | Z` for categorical data.
///
/// Asymptotically equivalent to the chi-square test but better behaved for
/// sparse tables with strong effects; provided so the discovery algorithms
/// can be exercised under more than one test implementation.
#[derive(Debug, Clone, Copy)]
pub struct GTest {
    alpha: f64,
}

impl GTest {
    /// Creates a test at significance level `alpha`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in (0, 1)");
        GTest { alpha }
    }

    /// The significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for GTest {
    fn default() -> Self {
        GTest::new(0.05)
    }
}

impl CiTest for GTest {
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome> {
        let table = ContingencyTable::build(data, x, y, z)?;
        let (stat, dof) = table.g_statistic();
        Ok(outcome_from_statistic(stat, dof, self.alpha))
    }

    fn name(&self) -> &'static str {
        "g-test"
    }

    fn compile<'a>(
        &'a self,
        data: &'a Dataset,
        vars: &'a [&'a str],
    ) -> Result<Box<dyn IndexedCiTest + 'a>> {
        Ok(Box::new(CompiledGTest {
            view: DiscoveryView::compile(data, vars)?,
            alpha: self.alpha,
        }))
    }
}

/// View-native G-test: all queries run on precompiled code slices.
struct CompiledGTest<'a> {
    view: DiscoveryView<'a>,
    alpha: f64,
}

impl IndexedCiTest for CompiledGTest<'_> {
    fn test_ids(&self, x: u32, y: u32, z: &[u32]) -> Result<CiOutcome> {
        let table = ContingencyTable::from_view(&self.view, x, y, z)?;
        let (stat, dof) = table.g_statistic();
        Ok(outcome_from_statistic(stat, dof, self.alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChiSquareTest;
    use xinsight_data::DatasetBuilder;

    #[test]
    fn agrees_with_chi_square_on_clear_cases() {
        let x: Vec<&str> = (0..300)
            .map(|i| if i % 3 == 0 { "a" } else { "b" })
            .collect();
        let y_dep: Vec<&str> = (0..300)
            .map(|i| if i % 3 == 0 { "p" } else { "q" })
            .collect();
        let y_ind: Vec<&str> = (0..300)
            .map(|i| if i % 2 == 0 { "p" } else { "q" })
            .collect();
        let dep = DatasetBuilder::new()
            .dimension("X", x.clone())
            .dimension("Y", y_dep)
            .build()
            .unwrap();
        let ind = DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y_ind)
            .build()
            .unwrap();
        let g = GTest::default();
        let chi = ChiSquareTest::default();
        assert_eq!(
            g.independent(&dep, "X", "Y", &[]).unwrap(),
            chi.independent(&dep, "X", "Y", &[]).unwrap()
        );
        assert!(!g.independent(&dep, "X", "Y", &[]).unwrap());
        assert!(g.independent(&ind, "X", "Y", &[]).unwrap());
    }

    #[test]
    fn degenerate_table_is_independent() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "a"])
            .dimension("Y", ["p", "q"])
            .build()
            .unwrap();
        let out = GTest::default().test(&d, "X", "Y", &[]).unwrap();
        assert!(out.independent);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(GTest::default().name(), "g-test");
    }
}
