//! Precompiled, index-addressed views of the discovery variable set.
//!
//! The offline phase of XInsight (preprocess → FD detection → XLearner/FCI,
//! Fig. 3 of the paper) issues thousands of CI queries over the *same* small
//! set of dimension columns.  Resolving column names through the schema's
//! string lookup on every query — the seed behaviour — wastes both hashing
//! work and cache locality.  A [`DiscoveryView`] performs that resolution
//! exactly once per fit: each variable gets a dense `u32` id, and the view
//! holds the borrowed dictionary-code slice plus cardinality for each.
//! Everything downstream (contingency tables, CI tests, the skeleton search)
//! then works purely on integer ids and `&[u32]` slices.

use xinsight_data::{DataError, Dataset, Result};

/// A compiled view over a subset of a dataset's dimensions.
///
/// Construction resolves each variable name to its column once; afterwards
/// all accessors are index-based and allocation-free.  The view borrows the
/// dataset's column storage, so it is cheap to build and copy-free to query.
///
/// ```
/// use xinsight_data::DatasetBuilder;
/// use xinsight_stats::DiscoveryView;
///
/// let data = DatasetBuilder::new()
///     .dimension("X", ["a", "b", "a"])
///     .dimension("Y", ["p", "p", "q"])
///     .build()
///     .unwrap();
/// let view = DiscoveryView::compile(&data, &["Y", "X"]).unwrap();
/// assert_eq!(view.n_vars(), 2);
/// assert_eq!(view.name(0), "Y");        // ids follow the compile order
/// assert_eq!(view.cardinality(1), 2);   // X has categories {a, b}
/// assert_eq!(view.codes(1), &[0, 1, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct DiscoveryView<'a> {
    names: Vec<String>,
    codes: Vec<&'a [u32]>,
    cards: Vec<usize>,
    n_rows: usize,
}

impl<'a> DiscoveryView<'a> {
    /// Compiles a view: resolves every name in `vars` to its dimension
    /// column (erroring on unknown names or measures) and records code
    /// slices and cardinalities.  Ids are assigned in `vars` order.
    pub fn compile(data: &'a Dataset, vars: &[&str]) -> Result<Self> {
        let mut names = Vec::with_capacity(vars.len());
        let mut codes = Vec::with_capacity(vars.len());
        let mut cards = Vec::with_capacity(vars.len());
        for &name in vars {
            let col = data.dimension(name)?;
            names.push(name.to_owned());
            codes.push(col.codes());
            cards.push(col.cardinality());
        }
        Ok(DiscoveryView {
            names,
            codes,
            cards,
            n_rows: data.n_rows(),
        })
    }

    /// Number of compiled variables.
    pub fn n_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of rows each code slice covers.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Name of variable `id`.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// All variable names in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Dense id of a variable name, if compiled.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.names.iter().position(|n| n == name).map(|i| i as u32)
    }

    /// Observed cardinality of variable `id`.
    pub fn cardinality(&self, id: u32) -> usize {
        self.cards[id as usize]
    }

    /// Borrowed per-row dictionary codes of variable `id`
    /// ([`xinsight_data::NULL_CODE`] marks missing rows).
    pub fn codes(&self, id: u32) -> &'a [u32] {
        self.codes[id as usize]
    }

    /// Validates that `id` is in range, with a readable error.
    pub(crate) fn check_id(&self, id: u32) -> Result<()> {
        if (id as usize) < self.names.len() {
            Ok(())
        } else {
            Err(DataError::UnknownAttribute(format!(
                "variable id {id} out of range (view has {} variables)",
                self.names.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::DatasetBuilder;

    fn data() -> Dataset {
        DatasetBuilder::new()
            .dimension("A", ["x", "y", "x", "z"])
            .dimension("B", ["p", "p", "q", "q"])
            .measure("M", [1.0, 2.0, 3.0, 4.0])
            .build()
            .unwrap()
    }

    #[test]
    fn compile_resolves_names_once_in_order() {
        let d = data();
        let view = DiscoveryView::compile(&d, &["B", "A"]).unwrap();
        assert_eq!(view.n_vars(), 2);
        assert_eq!(view.n_rows(), 4);
        assert_eq!(view.name(0), "B");
        assert_eq!(view.id_of("A"), Some(1));
        assert_eq!(view.id_of("Nope"), None);
        assert_eq!(view.cardinality(1), 3);
        assert_eq!(view.codes(0), &[0, 0, 1, 1]);
    }

    #[test]
    fn unknown_and_measure_columns_are_errors() {
        let d = data();
        assert!(DiscoveryView::compile(&d, &["A", "Nope"]).is_err());
        assert!(DiscoveryView::compile(&d, &["A", "M"]).is_err());
    }

    #[test]
    fn null_codes_are_exposed_verbatim() {
        let d = DatasetBuilder::new()
            .dimension_column(
                "X",
                xinsight_data::DimensionColumn::from_optional_values([Some("a"), None, Some("b")]),
            )
            .build()
            .unwrap();
        let view = DiscoveryView::compile(&d, &["X"]).unwrap();
        assert_eq!(view.codes(0), &[0, xinsight_data::NULL_CODE, 1]);
    }
}
