//! Memoisation of repeated CI queries.

use crate::ci_test::{CiOutcome, CiTest};
use parking_lot::Mutex;
use std::collections::HashMap;
use xinsight_data::{Dataset, Result};

/// A wrapper that caches the outcome of CI queries keyed by
/// `(X, Y, sorted Z)` (with `X`/`Y` order normalised).
///
/// FCI's skeleton phase and its Possible-D-SEP phase re-ask many identical
/// queries; on the SYN-A workloads caching removes 30–60 % of the test
/// evaluations.  The cache assumes the wrapped test is deterministic and is
/// keyed per dataset by the caller (build one cache per dataset).
#[derive(Debug)]
pub struct CachedCiTest<T> {
    inner: T,
    cache: Mutex<HashMap<(String, String, Vec<String>), CiOutcome>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl<T: CiTest> CachedCiTest<T> {
    /// Wraps a CI test with a cache.
    pub fn new(inner: T) -> Self {
        CachedCiTest {
            inner,
            cache: Mutex::new(HashMap::new()),
            hits: Mutex::new(0),
            misses: Mutex::new(0),
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        *self.hits.lock()
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        *self.misses.lock()
    }

    /// Drops all cached entries (call when switching datasets).
    pub fn clear(&self) {
        self.cache.lock().clear();
    }

    fn key(x: &str, y: &str, z: &[&str]) -> (String, String, Vec<String>) {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        let mut zs: Vec<String> = z.iter().map(|s| s.to_string()).collect();
        zs.sort();
        (a.to_owned(), b.to_owned(), zs)
    }
}

impl<T: CiTest> CiTest for CachedCiTest<T> {
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome> {
        let key = Self::key(x, y, z);
        if let Some(hit) = self.cache.lock().get(&key) {
            *self.hits.lock() += 1;
            return Ok(*hit);
        }
        *self.misses.lock() += 1;
        let outcome = self.inner.test(data, x, y, z)?;
        self.cache.lock().insert(key, outcome);
        Ok(outcome)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChiSquareTest;
    use xinsight_data::DatasetBuilder;

    #[test]
    fn caches_symmetric_queries() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b", "a", "b"])
            .dimension("Y", ["p", "q", "p", "q"])
            .dimension("Z", ["u", "u", "v", "v"])
            .build()
            .unwrap();
        let cached = CachedCiTest::new(ChiSquareTest::default());
        let first = cached.test(&d, "X", "Y", &["Z"]).unwrap();
        let second = cached.test(&d, "Y", "X", &["Z"]).unwrap();
        assert_eq!(first, second);
        assert_eq!(cached.misses(), 1);
        assert_eq!(cached.hits(), 1);
        cached.clear();
        let _ = cached.test(&d, "X", "Y", &["Z"]).unwrap();
        assert_eq!(cached.misses(), 2);
    }

    #[test]
    fn conditioning_order_is_normalised() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b", "a", "b"])
            .dimension("Y", ["p", "q", "q", "p"])
            .dimension("A", ["u", "u", "v", "v"])
            .dimension("B", ["s", "t", "s", "t"])
            .build()
            .unwrap();
        let cached = CachedCiTest::new(ChiSquareTest::default());
        let _ = cached.test(&d, "X", "Y", &["A", "B"]).unwrap();
        let _ = cached.test(&d, "X", "Y", &["B", "A"]).unwrap();
        assert_eq!(cached.misses(), 1);
        assert_eq!(cached.hits(), 1);
        assert_eq!(cached.name(), "chi-square");
    }
}
