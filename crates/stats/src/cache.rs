//! Memoisation of repeated CI queries.

// HashMap here never leaks iteration order into output: CI-test memo table keyed by interned ids
// through the sanctioned fxhash alias; key-looked-up only (see clippy.toml).
#![allow(clippy::disallowed_types)]

use crate::ci_test::{CiOutcome, CiTest, IndexedCiTest};
use crate::small_vec::SmallVec;
use fxhash::FxHashMap;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use xinsight_data::{Dataset, Result};

/// Compact cache key: interned variable ids with `x ≤ y` and `z` sorted.
///
/// Conditioning sets are short, so the [`SmallVec`] keeps the whole key
/// inline — no per-entry heap allocation, and hashing touches a handful of
/// `u32`s instead of three strings.
type CiKey = (u32, u32, SmallVec<u32>);

/// Interner + memo table, guarded by one lock so the name-addressed path
/// interns *and* probes under a single acquisition (the compiled path skips
/// interning entirely and only probes).
#[derive(Debug, Default)]
struct CacheState {
    /// Stable name → id mapping.  Ids survive [`CachedCiTest::clear`] so
    /// compiled adapters created before a clear stay valid.  Interning runs
    /// once per variable; every subsequent probe hashes only integers.
    interner: FxHashMap<String, u32>,
    /// Memoised outcomes, keyed by interned ids under the Fx integer mixer.
    map: FxHashMap<CiKey, CiOutcome>,
}

impl CacheState {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.interner.get(name) {
            return id;
        }
        let id = self.interner.len() as u32;
        self.interner.insert(name.to_owned(), id);
        id
    }
}

/// A point-in-time snapshot of a cache's effectiveness counters.
///
/// Both caching layers of the engine — [`CachedCiTest`] offline and the
/// online selection cache in `xinsight-core` — expose their private atomic
/// hit/miss counters through this one struct, so the serving layer's
/// `/stats` endpoint and the benches report them uniformly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that had to compute (and store) their entry.
    pub misses: u64,
    /// Distinct entries currently held.
    pub entries: usize,
}

impl CacheStats {
    /// Total number of lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from memory (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Element-wise sum of two snapshots — for accumulating the stats of
    /// many short-lived caches (e.g. one per served request) into a running
    /// total.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            entries: self.entries + other.entries,
        }
    }
}

/// A wrapper that caches the outcome of CI queries keyed by interned
/// `(X, Y, sorted Z)` variable ids (with `X`/`Y` order normalised).
///
/// FCI's skeleton phase and its Possible-D-SEP phase re-ask many identical
/// queries; on the SYN-A workloads caching removes 30–60 % of the test
/// evaluations.  The cache assumes the wrapped test is deterministic and is
/// keyed per dataset by the caller (build one cache per dataset).
///
/// Internally one mutex guards the interner and the memo table together,
/// and the hit/miss counters are relaxed atomics, so reading statistics
/// never contends with lookups.  The name-addressed [`CiTest::test`] path
/// and the compiled [`CiTest::compile`] path share the same table: a query
/// answered through one is a cache hit through the other.
#[derive(Debug)]
pub struct CachedCiTest<T> {
    inner: T,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T: CiTest> CachedCiTest<T> {
    /// Wraps a CI test with a cache.
    pub fn new(inner: T) -> Self {
        CachedCiTest {
            inner,
            state: Mutex::new(CacheState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // relaxed: monotonic cache counter
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed) // relaxed: monotonic cache counter
    }

    /// A consistent-enough snapshot of the counters and the entry count
    /// (each value is read atomically; the trio is not sampled under one
    /// lock, which is fine for reporting).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            entries: self.state.lock().map.len(),
        }
    }

    /// Drops all cached entries (call when switching datasets).  Interned
    /// variable ids are retained so previously compiled adapters stay
    /// consistent.
    pub fn clear(&self) {
        self.state.lock().map.clear();
    }

    /// Normalises interned ids into a canonical key.
    fn key_from_ids(x: u32, y: u32, z: &[u32]) -> CiKey {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        let mut zs = SmallVec::from_slice(z);
        zs.sort_unstable();
        (a, b, zs)
    }

    /// Probes the cache; on a miss, runs `run` and stores the outcome.
    fn lookup_or_run(
        &self,
        key: CiKey,
        run: impl FnOnce() -> Result<CiOutcome>,
    ) -> Result<CiOutcome> {
        if let Some(&hit) = self.state.lock().map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache counter
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache counter
        let outcome = run()?;
        self.state.lock().map.insert(key, outcome);
        Ok(outcome)
    }
}

impl<T: CiTest> CiTest for CachedCiTest<T> {
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome> {
        // Intern and probe under one lock acquisition; hits never re-lock.
        let key = {
            let mut state = self.state.lock();
            let xi = state.intern(x);
            let yi = state.intern(y);
            let zi: Vec<u32> = z.iter().map(|n| state.intern(n)).collect();
            let key = Self::key_from_ids(xi, yi, &zi);
            if let Some(&hit) = state.map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache counter
                return Ok(hit);
            }
            key
        };
        self.misses.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache counter
        let outcome = self.inner.test(data, x, y, z)?;
        self.state.lock().map.insert(key, outcome);
        Ok(outcome)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn compile<'a>(
        &'a self,
        data: &'a Dataset,
        vars: &'a [&'a str],
    ) -> Result<Box<dyn IndexedCiTest + 'a>> {
        let compiled = self.inner.compile(data, vars)?;
        let interned: Vec<u32> = {
            let mut state = self.state.lock();
            vars.iter().map(|v| state.intern(v)).collect()
        };
        Ok(Box::new(CompiledCached {
            cache: self,
            compiled,
            interned,
        }))
    }
}

/// Compiled adapter: maps the search's dense variable ids to the cache's
/// interned ids (resolved once at compile time) and shares the memo table
/// with the name-addressed path.
struct CompiledCached<'a, T> {
    cache: &'a CachedCiTest<T>,
    compiled: Box<dyn IndexedCiTest + 'a>,
    /// `interned[i]` is the cache-interned id of `vars[i]`.
    interned: Vec<u32>,
}

impl<T: CiTest> IndexedCiTest for CompiledCached<'_, T> {
    fn test_ids(&self, x: u32, y: u32, z: &[u32]) -> Result<CiOutcome> {
        crate::ci_test::check_ids(self.interned.len(), x, y, z)?;
        let zi: SmallVec<u32> = z.iter().map(|&i| self.interned[i as usize]).collect();
        let key = CachedCiTest::<T>::key_from_ids(
            self.interned[x as usize],
            self.interned[y as usize],
            &zi,
        );
        self.cache
            .lookup_or_run(key, || self.compiled.test_ids(x, y, z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChiSquareTest;
    use xinsight_data::DatasetBuilder;

    #[test]
    fn caches_symmetric_queries() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b", "a", "b"])
            .dimension("Y", ["p", "q", "p", "q"])
            .dimension("Z", ["u", "u", "v", "v"])
            .build()
            .unwrap();
        let cached = CachedCiTest::new(ChiSquareTest::default());
        let first = cached.test(&d, "X", "Y", &["Z"]).unwrap();
        let second = cached.test(&d, "Y", "X", &["Z"]).unwrap();
        assert_eq!(first, second);
        assert_eq!(cached.misses(), 1);
        assert_eq!(cached.hits(), 1);
        cached.clear();
        let _ = cached.test(&d, "X", "Y", &["Z"]).unwrap();
        assert_eq!(cached.misses(), 2);
    }

    #[test]
    fn conditioning_order_is_normalised() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b", "a", "b"])
            .dimension("Y", ["p", "q", "q", "p"])
            .dimension("A", ["u", "u", "v", "v"])
            .dimension("B", ["s", "t", "s", "t"])
            .build()
            .unwrap();
        let cached = CachedCiTest::new(ChiSquareTest::default());
        let _ = cached.test(&d, "X", "Y", &["A", "B"]).unwrap();
        let _ = cached.test(&d, "X", "Y", &["B", "A"]).unwrap();
        assert_eq!(cached.misses(), 1);
        assert_eq!(cached.hits(), 1);
        assert_eq!(cached.name(), "chi-square");
    }

    #[test]
    fn compiled_and_name_paths_share_one_table() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b", "a", "b"])
            .dimension("Y", ["p", "q", "p", "q"])
            .dimension("Z", ["u", "u", "v", "v"])
            .build()
            .unwrap();
        let cached = CachedCiTest::new(ChiSquareTest::default());
        let vars = ["X", "Y", "Z"];
        let compiled = cached.compile(&d, &vars).unwrap();
        let by_ids = compiled.test_ids(0, 1, &[2]).unwrap();
        assert_eq!(cached.misses(), 1);
        // Same logical query through the name path: a hit, same outcome.
        let by_name = cached.test(&d, "Y", "X", &["Z"]).unwrap();
        assert_eq!(by_ids, by_name);
        assert_eq!(cached.hits(), 1);
        assert_eq!(cached.misses(), 1);
        // And again through ids with z reversed order semantics.
        assert!(compiled.independent_ids(1, 0, &[2]).is_ok());
        assert_eq!(cached.hits(), 2);
        // Out-of-range ids are structured errors, not panics.
        assert!(compiled.test_ids(7, 0, &[]).is_err());
        assert!(compiled.test_ids(0, 1, &[9]).is_err());
    }
}
