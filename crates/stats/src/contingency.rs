//! Stratified contingency tables over dimension columns.

use xinsight_data::{Dataset, Result};

/// A cross tabulation of two dimensions `X`, `Y`, stratified by the joint
/// values of a (possibly empty) conditioning set `Z`.
///
/// Rows with a missing value in any involved column are dropped, matching the
/// preprocessing described in Sec. 4.1 of the paper.
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    /// Number of categories of `X`.
    pub x_cardinality: usize,
    /// Number of categories of `Y`.
    pub y_cardinality: usize,
    /// Per-stratum count matrices, each of shape `x_cardinality × y_cardinality`
    /// stored row-major.
    pub strata: Vec<Vec<u64>>,
    /// Total number of counted observations.
    pub total: u64,
}

impl ContingencyTable {
    /// Builds the table for `x`, `y` conditioned on the dimensions `z`.
    pub fn build(data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<Self> {
        let xcol = data.dimension(x)?;
        let ycol = data.dimension(y)?;
        let zcols = z
            .iter()
            .map(|name| data.dimension(name))
            .collect::<Result<Vec<_>>>()?;
        let x_card = xcol.cardinality().max(1);
        let y_card = ycol.cardinality().max(1);
        let z_cards: Vec<usize> = zcols.iter().map(|c| c.cardinality().max(1)).collect();
        let n_strata: usize = z_cards.iter().product::<usize>().max(1);

        let mut strata = vec![vec![0u64; x_card * y_card]; n_strata];
        let mut total = 0u64;
        'rows: for i in 0..data.n_rows() {
            let cx = xcol.code(i);
            let cy = ycol.code(i);
            if cx == xinsight_data::NULL_CODE || cy == xinsight_data::NULL_CODE {
                continue;
            }
            let mut stratum = 0usize;
            for (zc, &card) in zcols.iter().zip(&z_cards) {
                let cz = zc.code(i);
                if cz == xinsight_data::NULL_CODE {
                    continue 'rows;
                }
                stratum = stratum * card + cz as usize;
            }
            strata[stratum][cx as usize * y_card + cy as usize] += 1;
            total += 1;
        }
        Ok(ContingencyTable {
            x_cardinality: x_card,
            y_cardinality: y_card,
            strata,
            total,
        })
    }

    /// Number of strata (joint categories of the conditioning set).
    pub fn n_strata(&self) -> usize {
        self.strata.len()
    }

    /// Count in stratum `s` at cell (`xi`, `yi`).
    pub fn count(&self, s: usize, xi: usize, yi: usize) -> u64 {
        self.strata[s][xi * self.y_cardinality + yi]
    }

    /// Pearson chi-square statistic and degrees of freedom, summed over
    /// strata.  Strata (and rows/columns within a stratum) with zero margin
    /// contribute neither to the statistic nor to the degrees of freedom.
    pub fn chi_square_statistic(&self) -> (f64, f64) {
        self.statistic(|observed, expected| {
            let d = observed - expected;
            d * d / expected
        })
    }

    /// Likelihood-ratio (G-test) statistic and degrees of freedom.
    pub fn g_statistic(&self) -> (f64, f64) {
        self.statistic(|observed, expected| {
            if observed == 0.0 {
                0.0
            } else {
                2.0 * observed * (observed / expected).ln()
            }
        })
    }

    fn statistic(&self, cell_term: impl Fn(f64, f64) -> f64) -> (f64, f64) {
        let mut stat = 0.0;
        let mut dof = 0.0;
        for counts in &self.strata {
            let n: u64 = counts.iter().sum();
            if n == 0 {
                continue;
            }
            let mut row_sums = vec![0u64; self.x_cardinality];
            let mut col_sums = vec![0u64; self.y_cardinality];
            for xi in 0..self.x_cardinality {
                for yi in 0..self.y_cardinality {
                    let c = counts[xi * self.y_cardinality + yi];
                    row_sums[xi] += c;
                    col_sums[yi] += c;
                }
            }
            let nonzero_rows = row_sums.iter().filter(|&&r| r > 0).count();
            let nonzero_cols = col_sums.iter().filter(|&&c| c > 0).count();
            if nonzero_rows < 2 || nonzero_cols < 2 {
                continue;
            }
            dof += (nonzero_rows - 1) as f64 * (nonzero_cols - 1) as f64;
            for xi in 0..self.x_cardinality {
                if row_sums[xi] == 0 {
                    continue;
                }
                for yi in 0..self.y_cardinality {
                    if col_sums[yi] == 0 {
                        continue;
                    }
                    let expected = row_sums[xi] as f64 * col_sums[yi] as f64 / n as f64;
                    let observed = counts[xi * self.y_cardinality + yi] as f64;
                    stat += cell_term(observed, expected);
                }
            }
        }
        (stat, dof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::DatasetBuilder;

    fn dependent_data() -> Dataset {
        // X perfectly determines Y.
        let x: Vec<&str> = (0..100).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let y: Vec<&str> = (0..100).map(|i| if i % 2 == 0 { "p" } else { "q" }).collect();
        DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y)
            .build()
            .unwrap()
    }

    fn independent_data() -> Dataset {
        // X and Y vary on unrelated cycles -> near-independent counts.
        let x: Vec<&str> = (0..120).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect();
        let y: Vec<&str> = (0..120).map(|i| if (i / 2) % 2 == 0 { "p" } else { "q" }).collect();
        DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn marginal_table_counts() {
        let d = dependent_data();
        let t = ContingencyTable::build(&d, "X", "Y", &[]).unwrap();
        assert_eq!(t.n_strata(), 1);
        assert_eq!(t.total, 100);
        assert_eq!(t.count(0, 0, 0), 50);
        assert_eq!(t.count(0, 0, 1), 0);
        assert_eq!(t.count(0, 1, 1), 50);
    }

    #[test]
    fn chi_square_large_for_dependence_small_for_independence() {
        let dep = dependent_data();
        let (stat_dep, dof_dep) = ContingencyTable::build(&dep, "X", "Y", &[])
            .unwrap()
            .chi_square_statistic();
        assert_eq!(dof_dep, 1.0);
        assert!(stat_dep > 50.0, "stat = {stat_dep}");

        let ind = independent_data();
        let (stat_ind, dof_ind) = ContingencyTable::build(&ind, "X", "Y", &[])
            .unwrap()
            .chi_square_statistic();
        assert_eq!(dof_ind, 1.0);
        assert!(stat_ind < 3.0, "stat = {stat_ind}");
    }

    #[test]
    fn conditioning_splits_into_strata() {
        // Y = X within each stratum of Z, so conditional dependence persists.
        let n = 80;
        let z: Vec<String> = (0..n).map(|i| format!("z{}", i % 4)).collect();
        let x: Vec<&str> = (0..n).map(|i| if (i / 4) % 2 == 0 { "a" } else { "b" }).collect();
        let y: Vec<&str> = (0..n).map(|i| if (i / 4) % 2 == 0 { "p" } else { "q" }).collect();
        let d = DatasetBuilder::new()
            .dimension("Z", z.iter().map(String::as_str))
            .dimension("X", x)
            .dimension("Y", y)
            .build()
            .unwrap();
        let t = ContingencyTable::build(&d, "X", "Y", &["Z"]).unwrap();
        assert_eq!(t.n_strata(), 4);
        let (stat, dof) = t.chi_square_statistic();
        assert_eq!(dof, 4.0);
        assert!(stat > 50.0);
    }

    #[test]
    fn g_statistic_tracks_chi_square() {
        let dep = dependent_data();
        let t = ContingencyTable::build(&dep, "X", "Y", &[]).unwrap();
        let (chi, _) = t.chi_square_statistic();
        let (g, dof) = t.g_statistic();
        assert_eq!(dof, 1.0);
        assert!(g > 50.0);
        // Both statistics should agree on the order of magnitude.
        assert!((chi - g).abs() / chi < 0.5);
    }

    #[test]
    fn degenerate_margins_contribute_no_dof() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "a"])
            .dimension("Y", ["p", "q", "p", "q"])
            .build()
            .unwrap();
        let t = ContingencyTable::build(&d, "X", "Y", &[]).unwrap();
        let (stat, dof) = t.chi_square_statistic();
        assert_eq!(stat, 0.0);
        assert_eq!(dof, 0.0);
    }

    #[test]
    fn missing_values_are_dropped() {
        let d = DatasetBuilder::new()
            .dimension_column(
                "X",
                xinsight_data::DimensionColumn::from_optional_values([
                    Some("a"),
                    None,
                    Some("b"),
                    Some("b"),
                ]),
            )
            .dimension("Y", ["p", "p", "q", "q"])
            .build()
            .unwrap();
        let t = ContingencyTable::build(&d, "X", "Y", &[]).unwrap();
        assert_eq!(t.total, 3);
    }

    #[test]
    fn errors_on_measures() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b"])
            .measure("M", [1.0, 2.0])
            .build()
            .unwrap();
        assert!(ContingencyTable::build(&d, "X", "M", &[]).is_err());
        assert!(ContingencyTable::build(&d, "M", "X", &[]).is_err());
    }
}
