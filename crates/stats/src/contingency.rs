//! Stratified contingency tables over dimension columns.

// HashMap here never leaks iteration order into output: cell counts keyed by code pair; folded, never iterated to output (see clippy.toml).
#![allow(clippy::disallowed_types)]

use crate::view::DiscoveryView;
use std::collections::HashMap;
use xinsight_data::{DataError, Dataset, Result};

/// Largest number of dense counter cells (`∏|Z_i| · |X| · |Y|`) a table will
/// allocate eagerly; beyond this the build switches to the sparse per-stratum
/// path, which only materializes strata that actually occur in the data.
const DENSE_CELL_LIMIT: u128 = 1 << 22;

/// A cross tabulation of two dimensions `X`, `Y`, stratified by the joint
/// values of a (possibly empty) conditioning set `Z`.
///
/// Rows with a missing value in any involved column are dropped, matching the
/// preprocessing described in Sec. 4.1 of the paper.
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    /// Number of categories of `X`.
    pub x_cardinality: usize,
    /// Number of categories of `Y`.
    pub y_cardinality: usize,
    /// All per-stratum count matrices in one contiguous buffer,
    /// stratum-major then row-major: the count for stratum `s` at cell
    /// `(xi, yi)` lives at `s · |X|·|Y| + xi · |Y| + yi`.  One allocation
    /// per table — the fit path builds a table per CI test, and the old
    /// `Vec<Vec<u64>>` layout paid one heap allocation per stratum.
    counts: Vec<u64>,
    /// Number of strata (joint categories of the conditioning set).
    n_strata: usize,
    /// Total number of counted observations.
    pub total: u64,
}

impl ContingencyTable {
    /// Builds the table for `x`, `y` conditioned on the dimensions `z`.
    ///
    /// This is the name-addressed convenience entry: it compiles a throwaway
    /// [`DiscoveryView`] over the involved columns and delegates to
    /// [`ContingencyTable::from_view`].  Hot paths that issue many queries
    /// over the same variable set should compile a view once instead.
    pub fn build(data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<Self> {
        let mut vars = Vec::with_capacity(z.len() + 2);
        vars.push(x);
        vars.push(y);
        vars.extend_from_slice(z);
        let view = DiscoveryView::compile(data, &vars)?;
        let z_ids: Vec<u32> = (2..vars.len() as u32).collect();
        Self::from_view(&view, 0, 1, &z_ids)
    }

    /// Builds the table for view variables `x`, `y` conditioned on `z`, in a
    /// single pass over the code slices.
    ///
    /// When the dense counter space `∏|Z_i| · |X| · |Y|` stays small the
    /// strata are allocated eagerly (and empty strata are retained, matching
    /// [`ContingencyTable::build`] of old); past an internal cell limit
    /// (currently 2²² counters) the build switches to a sparse map keyed by
    /// the joint `Z` configuration, so high-cardinality conditioning sets
    /// cost memory proportional to the strata that actually occur.  Both paths yield
    /// identical [`chi_square_statistic`](ContingencyTable::chi_square_statistic)
    /// and [`g_statistic`](ContingencyTable::g_statistic) values, because
    /// empty strata contribute neither statistic nor degrees of freedom.
    ///
    /// Returns [`DataError::Overflow`] only when the joint stratum space
    /// cannot even be indexed (product of cardinalities exceeds `u128`).
    pub fn from_view(view: &DiscoveryView<'_>, x: u32, y: u32, z: &[u32]) -> Result<Self> {
        view.check_id(x)?;
        view.check_id(y)?;
        for &zi in z {
            view.check_id(zi)?;
        }
        let x_codes = view.codes(x);
        let y_codes = view.codes(y);
        let z_codes: Vec<&[u32]> = z.iter().map(|&zi| view.codes(zi)).collect();
        let x_card = view.cardinality(x).max(1);
        let y_card = view.cardinality(y).max(1);
        let z_cards: Vec<usize> = z.iter().map(|&zi| view.cardinality(zi).max(1)).collect();

        let mut joint: u128 = 1;
        for &card in &z_cards {
            joint = joint.checked_mul(card as u128).ok_or_else(|| {
                DataError::Overflow(format!(
                    "joint stratum space of {} conditioning variables exceeds u128",
                    z.len()
                ))
            })?;
        }
        let cells = joint
            .checked_mul((x_card as u128) * (y_card as u128))
            .ok_or_else(|| DataError::Overflow("contingency cell space exceeds u128".to_owned()))?;
        if cells <= DENSE_CELL_LIMIT {
            Self::build_dense(
                x_codes,
                y_codes,
                &z_codes,
                x_card,
                y_card,
                &z_cards,
                joint as usize,
            )
        } else {
            Self::build_sparse(x_codes, y_codes, &z_codes, x_card, y_card, &z_cards)
        }
    }

    fn build_dense(
        x_codes: &[u32],
        y_codes: &[u32],
        z_codes: &[&[u32]],
        x_card: usize,
        y_card: usize,
        z_cards: &[usize],
        n_strata: usize,
    ) -> Result<Self> {
        let stride = x_card * y_card;
        let n_strata = n_strata.max(1);
        let mut counts = vec![0u64; n_strata * stride];
        let mut total = 0u64;
        const NULL: u32 = xinsight_data::NULL_CODE;
        // The row loop runs once per CI test over every row, so the common
        // conditioning-set sizes (depths 0–2 dominate a skeleton search) get
        // zipped loops with no per-row inner loop and no bounds checks.
        match *z_codes {
            [] => {
                for (&cx, &cy) in x_codes.iter().zip(y_codes) {
                    if cx == NULL || cy == NULL {
                        continue;
                    }
                    counts[cx as usize * y_card + cy as usize] += 1;
                    total += 1;
                }
            }
            [z0] => {
                for ((&cx, &cy), &c0) in x_codes.iter().zip(y_codes).zip(z0) {
                    if cx == NULL || cy == NULL || c0 == NULL {
                        continue;
                    }
                    counts[c0 as usize * stride + cx as usize * y_card + cy as usize] += 1;
                    total += 1;
                }
            }
            [z0, z1] => {
                let card1 = z_cards[1];
                for (((&cx, &cy), &c0), &c1) in x_codes.iter().zip(y_codes).zip(z0).zip(z1) {
                    if cx == NULL || cy == NULL || c0 == NULL || c1 == NULL {
                        continue;
                    }
                    let stratum = c0 as usize * card1 + c1 as usize;
                    counts[stratum * stride + cx as usize * y_card + cy as usize] += 1;
                    total += 1;
                }
            }
            _ => {
                'rows: for i in 0..x_codes.len() {
                    let cx = x_codes[i];
                    let cy = y_codes[i];
                    if cx == NULL || cy == NULL {
                        continue;
                    }
                    let mut stratum = 0usize;
                    for (zc, &card) in z_codes.iter().zip(z_cards) {
                        let cz = zc[i];
                        if cz == NULL {
                            continue 'rows;
                        }
                        stratum = stratum * card + cz as usize;
                    }
                    counts[stratum * stride + cx as usize * y_card + cy as usize] += 1;
                    total += 1;
                }
            }
        }
        Ok(ContingencyTable {
            x_cardinality: x_card,
            y_cardinality: y_card,
            counts,
            n_strata,
            total,
        })
    }

    fn build_sparse(
        x_codes: &[u32],
        y_codes: &[u32],
        z_codes: &[&[u32]],
        x_card: usize,
        y_card: usize,
        z_cards: &[usize],
    ) -> Result<Self> {
        let mut map: HashMap<u128, Vec<u64>> = HashMap::new();
        let mut total = 0u64;
        'rows: for i in 0..x_codes.len() {
            let cx = x_codes[i];
            let cy = y_codes[i];
            if cx == xinsight_data::NULL_CODE || cy == xinsight_data::NULL_CODE {
                continue;
            }
            let mut stratum: u128 = 0;
            for (zc, &card) in z_codes.iter().zip(z_cards) {
                let cz = zc[i];
                if cz == xinsight_data::NULL_CODE {
                    continue 'rows;
                }
                stratum = stratum * card as u128 + cz as u128;
            }
            map.entry(stratum)
                .or_insert_with(|| vec![0u64; x_card * y_card])
                [cx as usize * y_card + cy as usize] += 1;
            total += 1;
        }
        // Deterministic stratum order (ascending joint key).
        let stride = x_card * y_card;
        let mut keys: Vec<u128> = map.keys().copied().collect();
        keys.sort_unstable();
        let n_strata = keys.len().max(1);
        let mut counts = vec![0u64; n_strata * stride];
        for (s, k) in keys.into_iter().enumerate() {
            let stratum = map.remove(&k).expect("key collected from map");
            counts[s * stride..(s + 1) * stride].copy_from_slice(&stratum);
        }
        Ok(ContingencyTable {
            x_cardinality: x_card,
            y_cardinality: y_card,
            counts,
            n_strata,
            total,
        })
    }

    /// Number of strata (joint categories of the conditioning set).
    pub fn n_strata(&self) -> usize {
        self.n_strata
    }

    /// Count in stratum `s` at cell (`xi`, `yi`).
    pub fn count(&self, s: usize, xi: usize, yi: usize) -> u64 {
        self.counts[s * self.x_cardinality * self.y_cardinality + xi * self.y_cardinality + yi]
    }

    /// Pearson chi-square statistic and degrees of freedom, summed over
    /// strata.  Strata (and rows/columns within a stratum) with zero margin
    /// contribute neither to the statistic nor to the degrees of freedom.
    pub fn chi_square_statistic(&self) -> (f64, f64) {
        self.statistic(|observed, expected| {
            let d = observed - expected;
            d * d / expected
        })
    }

    /// Likelihood-ratio (G-test) statistic and degrees of freedom.
    pub fn g_statistic(&self) -> (f64, f64) {
        self.statistic(|observed, expected| {
            if observed == 0.0 {
                0.0
            } else {
                2.0 * observed * (observed / expected).ln()
            }
        })
    }

    fn statistic(&self, cell_term: impl Fn(f64, f64) -> f64) -> (f64, f64) {
        let mut stat = 0.0;
        let mut dof = 0.0;
        // Margin scratch is shared across strata — one allocation per call,
        // not one per stratum.
        let mut row_sums = vec![0u64; self.x_cardinality];
        let mut col_sums = vec![0u64; self.y_cardinality];
        let stride = (self.x_cardinality * self.y_cardinality).max(1);
        for counts in self.counts.chunks_exact(stride) {
            let n: u64 = counts.iter().sum();
            if n == 0 {
                continue;
            }
            row_sums.fill(0);
            col_sums.fill(0);
            for xi in 0..self.x_cardinality {
                for yi in 0..self.y_cardinality {
                    let c = counts[xi * self.y_cardinality + yi];
                    row_sums[xi] += c;
                    col_sums[yi] += c;
                }
            }
            let nonzero_rows = row_sums.iter().filter(|&&r| r > 0).count();
            let nonzero_cols = col_sums.iter().filter(|&&c| c > 0).count();
            if nonzero_rows < 2 || nonzero_cols < 2 {
                continue;
            }
            dof += (nonzero_rows - 1) as f64 * (nonzero_cols - 1) as f64;
            for xi in 0..self.x_cardinality {
                if row_sums[xi] == 0 {
                    continue;
                }
                for yi in 0..self.y_cardinality {
                    if col_sums[yi] == 0 {
                        continue;
                    }
                    let expected = row_sums[xi] as f64 * col_sums[yi] as f64 / n as f64;
                    let observed = counts[xi * self.y_cardinality + yi] as f64;
                    stat += cell_term(observed, expected);
                }
            }
        }
        (stat, dof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::DatasetBuilder;

    fn dependent_data() -> Dataset {
        // X perfectly determines Y.
        let x: Vec<&str> = (0..100)
            .map(|i| if i % 2 == 0 { "a" } else { "b" })
            .collect();
        let y: Vec<&str> = (0..100)
            .map(|i| if i % 2 == 0 { "p" } else { "q" })
            .collect();
        DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y)
            .build()
            .unwrap()
    }

    fn independent_data() -> Dataset {
        // X and Y vary on unrelated cycles -> near-independent counts.
        let x: Vec<&str> = (0..120)
            .map(|i| if i % 2 == 0 { "a" } else { "b" })
            .collect();
        let y: Vec<&str> = (0..120)
            .map(|i| if (i / 2) % 2 == 0 { "p" } else { "q" })
            .collect();
        DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn marginal_table_counts() {
        let d = dependent_data();
        let t = ContingencyTable::build(&d, "X", "Y", &[]).unwrap();
        assert_eq!(t.n_strata(), 1);
        assert_eq!(t.total, 100);
        assert_eq!(t.count(0, 0, 0), 50);
        assert_eq!(t.count(0, 0, 1), 0);
        assert_eq!(t.count(0, 1, 1), 50);
    }

    #[test]
    fn chi_square_large_for_dependence_small_for_independence() {
        let dep = dependent_data();
        let (stat_dep, dof_dep) = ContingencyTable::build(&dep, "X", "Y", &[])
            .unwrap()
            .chi_square_statistic();
        assert_eq!(dof_dep, 1.0);
        assert!(stat_dep > 50.0, "stat = {stat_dep}");

        let ind = independent_data();
        let (stat_ind, dof_ind) = ContingencyTable::build(&ind, "X", "Y", &[])
            .unwrap()
            .chi_square_statistic();
        assert_eq!(dof_ind, 1.0);
        assert!(stat_ind < 3.0, "stat = {stat_ind}");
    }

    #[test]
    fn conditioning_splits_into_strata() {
        // Y = X within each stratum of Z, so conditional dependence persists.
        let n = 80;
        let z: Vec<String> = (0..n).map(|i| format!("z{}", i % 4)).collect();
        let x: Vec<&str> = (0..n)
            .map(|i| if (i / 4) % 2 == 0 { "a" } else { "b" })
            .collect();
        let y: Vec<&str> = (0..n)
            .map(|i| if (i / 4) % 2 == 0 { "p" } else { "q" })
            .collect();
        let d = DatasetBuilder::new()
            .dimension("Z", z.iter().map(String::as_str))
            .dimension("X", x)
            .dimension("Y", y)
            .build()
            .unwrap();
        let t = ContingencyTable::build(&d, "X", "Y", &["Z"]).unwrap();
        assert_eq!(t.n_strata(), 4);
        let (stat, dof) = t.chi_square_statistic();
        assert_eq!(dof, 4.0);
        assert!(stat > 50.0);
    }

    #[test]
    fn g_statistic_tracks_chi_square() {
        let dep = dependent_data();
        let t = ContingencyTable::build(&dep, "X", "Y", &[]).unwrap();
        let (chi, _) = t.chi_square_statistic();
        let (g, dof) = t.g_statistic();
        assert_eq!(dof, 1.0);
        assert!(g > 50.0);
        // Both statistics should agree on the order of magnitude.
        assert!((chi - g).abs() / chi < 0.5);
    }

    #[test]
    fn degenerate_margins_contribute_no_dof() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "a"])
            .dimension("Y", ["p", "q", "p", "q"])
            .build()
            .unwrap();
        let t = ContingencyTable::build(&d, "X", "Y", &[]).unwrap();
        let (stat, dof) = t.chi_square_statistic();
        assert_eq!(stat, 0.0);
        assert_eq!(dof, 0.0);
    }

    #[test]
    fn missing_values_are_dropped() {
        let d = DatasetBuilder::new()
            .dimension_column(
                "X",
                xinsight_data::DimensionColumn::from_optional_values([
                    Some("a"),
                    None,
                    Some("b"),
                    Some("b"),
                ]),
            )
            .dimension("Y", ["p", "p", "q", "q"])
            .build()
            .unwrap();
        let t = ContingencyTable::build(&d, "X", "Y", &[]).unwrap();
        assert_eq!(t.total, 3);
    }

    #[test]
    fn from_view_matches_name_based_build() {
        let n = 120;
        let z: Vec<String> = (0..n).map(|i| format!("z{}", i % 5)).collect();
        let x: Vec<&str> = (0..n)
            .map(|i| if (i / 3) % 2 == 0 { "a" } else { "b" })
            .collect();
        let y: Vec<&str> = (0..n)
            .map(|i| if (i / 7) % 2 == 0 { "p" } else { "q" })
            .collect();
        let d = DatasetBuilder::new()
            .dimension("Z", z.iter().map(String::as_str))
            .dimension("X", x)
            .dimension("Y", y)
            .build()
            .unwrap();
        let by_name = ContingencyTable::build(&d, "X", "Y", &["Z"]).unwrap();
        let view = crate::DiscoveryView::compile(&d, &["Z", "X", "Y"]).unwrap();
        let by_view = ContingencyTable::from_view(&view, 1, 2, &[0]).unwrap();
        assert_eq!(by_name.counts, by_view.counts);
        assert_eq!(by_name.n_strata, by_view.n_strata);
        assert_eq!(by_name.total, by_view.total);
        assert_eq!(
            by_name.chi_square_statistic(),
            by_view.chi_square_statistic()
        );
    }

    #[test]
    fn sparse_path_agrees_with_dense_on_statistics() {
        // Same data counted through both paths: force the sparse path by
        // routing through build_sparse directly.
        let n = 200;
        let z1: Vec<String> = (0..n).map(|i| format!("u{}", i % 7)).collect();
        let z2: Vec<String> = (0..n).map(|i| format!("v{}", (i / 2) % 6)).collect();
        let x: Vec<&str> = (0..n)
            .map(|i| if (i / 5) % 2 == 0 { "a" } else { "b" })
            .collect();
        let y: Vec<&str> = (0..n)
            .map(|i| if (i / 11) % 2 == 0 { "p" } else { "q" })
            .collect();
        let d = DatasetBuilder::new()
            .dimension("Z1", z1.iter().map(String::as_str))
            .dimension("Z2", z2.iter().map(String::as_str))
            .dimension("X", x)
            .dimension("Y", y)
            .build()
            .unwrap();
        let view = crate::DiscoveryView::compile(&d, &["Z1", "Z2", "X", "Y"]).unwrap();
        let dense = ContingencyTable::from_view(&view, 2, 3, &[0, 1]).unwrap();
        let z_codes: Vec<&[u32]> = vec![view.codes(0), view.codes(1)];
        let sparse = ContingencyTable::build_sparse(
            view.codes(2),
            view.codes(3),
            &z_codes,
            view.cardinality(2),
            view.cardinality(3),
            &[view.cardinality(0), view.cardinality(1)],
        )
        .unwrap();
        assert_eq!(dense.total, sparse.total);
        // Sparse drops empty strata, so stratum counts may differ …
        assert!(sparse.n_strata() <= dense.n_strata());
        // … but the statistics are identical.
        assert_eq!(dense.chi_square_statistic(), sparse.chi_square_statistic());
        assert_eq!(dense.g_statistic(), sparse.g_statistic());
    }

    #[test]
    fn astronomically_large_stratum_space_is_a_structured_error() {
        // 130 binary conditioning columns: ∏|Z_i| = 2^130 > u128::MAX.
        let mut builder = DatasetBuilder::new()
            .dimension("X", ["a", "b"])
            .dimension("Y", ["p", "q"]);
        let mut names = Vec::new();
        for i in 0..130 {
            let name = format!("Z{i}");
            builder = builder.dimension(&name, ["u", "v"]);
            names.push(name);
        }
        let d = builder.build().unwrap();
        let z_names: Vec<&str> = names.iter().map(String::as_str).collect();
        let err = ContingencyTable::build(&d, "X", "Y", &z_names).unwrap_err();
        assert!(matches!(err, DataError::Overflow(_)), "got {err:?}");
        // A merely huge (but representable) space silently takes the sparse
        // path instead of erroring or allocating: 40 binary columns = 2^40
        // strata, yet only 2 rows exist.
        let t = ContingencyTable::build(&d, "X", "Y", &z_names[..40]).unwrap();
        assert_eq!(t.total, 2);
        assert_eq!(
            t.n_strata(),
            2,
            "one materialized stratum per observed Z configuration"
        );
    }

    #[test]
    fn empty_sparse_table_keeps_one_stratum() {
        let d = DatasetBuilder::new()
            .dimension_column(
                "X",
                xinsight_data::DimensionColumn::from_optional_values::<_, &str>([None, None]),
            )
            .dimension("Y", ["p", "q"])
            .build()
            .unwrap();
        let view = crate::DiscoveryView::compile(&d, &["X", "Y"]).unwrap();
        let sparse = ContingencyTable::build_sparse(
            view.codes(0),
            view.codes(1),
            &[],
            view.cardinality(0).max(1),
            view.cardinality(1),
            &[],
        )
        .unwrap();
        assert_eq!(sparse.total, 0);
        assert_eq!(sparse.n_strata(), 1);
    }

    #[test]
    fn errors_on_measures() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b"])
            .measure("M", [1.0, 2.0])
            .build()
            .unwrap();
        assert!(ContingencyTable::build(&d, "X", "M", &[]).is_err());
        assert!(ContingencyTable::build(&d, "M", "X", &[]).is_err());
    }
}
