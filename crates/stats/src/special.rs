//! Special functions needed by the hypothesis tests.
//!
//! Implemented from the classical series/continued-fraction expansions
//! (Lanczos approximation for `ln Γ`, Numerical-Recipes-style `gammp`/`gammq`)
//! so that the crate has no third-party math dependency.  Accuracy is ~1e-10
//! over the ranges exercised by the tests, far beyond what an α = 0.05
//! decision needs.

/// Natural logarithm of the gamma function, `ln Γ(x)` for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos approximation (g = 7, n = 9 coefficients).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: `P(X ≥ x)`.
pub fn chi_square_sf(x: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "chi_square_sf requires dof > 0");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(dof / 2.0, x / 2.0)
}

/// Cumulative distribution function of the chi-square distribution.
pub fn chi_square_cdf(x: f64, dof: f64) -> f64 {
    1.0 - chi_square_sf(x, dof)
}

/// Error function `erf(x)` (Abramowitz & Stegun 7.1.26-style rational
/// approximation refined via the incomplete gamma relation).
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x == 0.0 {
        return 0.0;
    }
    gamma_p(0.5, x * x)
}

/// Standard normal cumulative distribution function.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Two-sided p-value for a standard normal statistic.
pub fn standard_normal_two_sided_p(z: f64) -> f64 {
    2.0 * (1.0 - standard_normal_cdf(z.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), (24.0f64).ln(), 1e-10));
        assert!(close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-9));
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi).
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10));
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 10.0), (10.0, 3.0)] {
            assert!(close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12));
        }
    }

    #[test]
    fn chi_square_sf_known_values() {
        // Reference values from standard chi-square tables.
        assert!(close(chi_square_sf(3.841, 1.0), 0.05, 2e-3));
        assert!(close(chi_square_sf(5.991, 2.0), 0.05, 2e-3));
        assert!(close(chi_square_sf(0.0, 3.0), 1.0, 1e-12));
        assert!(close(chi_square_sf(18.307, 10.0), 0.05, 2e-3));
        // CDF + SF = 1.
        assert!(close(
            chi_square_cdf(4.2, 3.0) + chi_square_sf(4.2, 3.0),
            1.0,
            1e-12
        ));
    }

    #[test]
    fn chi_square_sf_is_monotone_decreasing() {
        let mut last = 1.0;
        for i in 1..50 {
            let x = i as f64 * 0.5;
            let sf = chi_square_sf(x, 4.0);
            assert!(sf <= last + 1e-12);
            last = sf;
        }
    }

    #[test]
    fn erf_and_normal_cdf() {
        assert!(close(erf(0.0), 0.0, 1e-12));
        assert!(close(erf(1.0), 0.842_700_79, 1e-6));
        assert!(close(erf(-1.0), -0.842_700_79, 1e-6));
        assert!(close(standard_normal_cdf(0.0), 0.5, 1e-12));
        assert!(close(standard_normal_cdf(1.959_964), 0.975, 1e-5));
        assert!(close(standard_normal_two_sided_p(1.959_964), 0.05, 1e-4));
    }

    #[test]
    #[should_panic(expected = "dof > 0")]
    fn zero_dof_rejected() {
        let _ = chi_square_sf(1.0, 0.0);
    }
}
