//! The conditional-independence test abstraction.

use xinsight_data::{Dataset, Result};

/// Outcome of one CI query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiOutcome {
    /// Whether the test declares `X ⫫ Y | Z` at its significance level.
    pub independent: bool,
    /// The p-value of the test (1.0 when the test is vacuous, e.g. a
    /// degenerate contingency table).
    pub p_value: f64,
}

/// A CI test compiled against a fixed variable set: queries are addressed by
/// the dense index of each variable in the `vars` slice handed to
/// [`CiTest::compile`], so the hot loop of a discovery run performs no string
/// work at all.
///
/// `Sync` is a supertrait because the depth-parallel skeleton search shares
/// one compiled test across the rayon pool.
pub trait IndexedCiTest: Sync {
    /// Runs the test of `vars[x] ⫫ vars[y] | {vars[i] : i ∈ z}`.
    fn test_ids(&self, x: u32, y: u32, z: &[u32]) -> Result<CiOutcome>;

    /// Convenience wrapper returning only the decision.
    fn independent_ids(&self, x: u32, y: u32, z: &[u32]) -> Result<bool> {
        Ok(self.test_ids(x, y, z)?.independent)
    }
}

/// A conditional-independence test `X ⫫ Y | Z` evaluated on a dataset.
///
/// Discovery algorithms (PC, FCI, XLearner) are generic over this trait so
/// the same code runs against the chi-square test, the G-test, the Fisher-z
/// test or the d-separation oracle used in unit tests.
///
/// `Sync` is a supertrait so a test can be shared across the depth-parallel
/// skeleton search; every test in this crate is a plain value or uses
/// interior locking, so the bound costs nothing.
pub trait CiTest: Sync {
    /// Runs the test of `x ⫫ y | z` on `data`.
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome>;

    /// Convenience wrapper returning only the decision.
    fn independent(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<bool> {
        Ok(self.test(data, x, y, z)?.independent)
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str {
        "ci-test"
    }

    /// Compiles this test against a fixed variable set, resolving names once.
    ///
    /// The default implementation bridges back to the name-addressed
    /// [`CiTest::test`] per query (correct for any test, e.g. the
    /// d-separation oracle, whose "variables" need not exist as dataset
    /// columns).  Data-driven tests override this to precompile a
    /// [`DiscoveryView`](crate::DiscoveryView) and answer queries from code
    /// slices with zero per-test name resolution.
    fn compile<'a>(
        &'a self,
        data: &'a Dataset,
        vars: &'a [&'a str],
    ) -> Result<Box<dyn IndexedCiTest + 'a>> {
        Ok(Box::new(NameBridge {
            test: self,
            data,
            vars,
        }))
    }
}

/// Shared decision rule of the chi-square-family tests: degenerate tables
/// (zero degrees of freedom) conservatively count as independent, otherwise
/// the survival function is compared against `alpha`.
pub(crate) fn outcome_from_statistic(stat: f64, dof: f64, alpha: f64) -> CiOutcome {
    if dof <= 0.0 {
        return CiOutcome {
            independent: true,
            p_value: 1.0,
        };
    }
    let p = crate::special::chi_square_sf(stat, dof);
    CiOutcome {
        independent: p > alpha,
        p_value: p,
    }
}

/// Fallback adapter used by [`CiTest::compile`]'s default implementation:
/// maps ids back to names and calls the wrapped test.
struct NameBridge<'a, T: CiTest + ?Sized> {
    test: &'a T,
    data: &'a Dataset,
    vars: &'a [&'a str],
}

impl<T: CiTest + ?Sized> IndexedCiTest for NameBridge<'_, T> {
    fn test_ids(&self, x: u32, y: u32, z: &[u32]) -> Result<CiOutcome> {
        check_ids(self.vars.len(), x, y, z)?;
        let z_names: Vec<&str> = z.iter().map(|&i| self.vars[i as usize]).collect();
        self.test.test(
            self.data,
            self.vars[x as usize],
            self.vars[y as usize],
            &z_names,
        )
    }
}

/// Validates that every id addresses one of the `n_vars` compiled variables,
/// so all [`IndexedCiTest`] implementations fail with a structured error
/// (not a panic) on out-of-range ids.
pub(crate) fn check_ids(n_vars: usize, x: u32, y: u32, z: &[u32]) -> Result<()> {
    let bad = [x, y]
        .into_iter()
        .chain(z.iter().copied())
        .find(|&id| id as usize >= n_vars);
    match bad {
        None => Ok(()),
        Some(id) => Err(xinsight_data::DataError::UnknownAttribute(format!(
            "variable id {id} out of range (compiled test has {n_vars} variables)"
        ))),
    }
}

impl<T: CiTest + ?Sized> CiTest for &T {
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome> {
        (**self).test(data, x, y, z)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn compile<'a>(
        &'a self,
        data: &'a Dataset,
        vars: &'a [&'a str],
    ) -> Result<Box<dyn IndexedCiTest + 'a>> {
        (**self).compile(data, vars)
    }
}

impl<T: CiTest + ?Sized> CiTest for Box<T> {
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome> {
        (**self).test(data, x, y, z)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn compile<'a>(
        &'a self,
        data: &'a Dataset,
        vars: &'a [&'a str],
    ) -> Result<Box<dyn IndexedCiTest + 'a>> {
        (**self).compile(data, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChiSquareTest;
    use xinsight_data::DatasetBuilder;

    #[test]
    fn default_compile_bridges_names_and_checks_ids() {
        /// A test relying on the default (name-bridging) `compile`.
        struct Bridged(ChiSquareTest);
        impl CiTest for Bridged {
            fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome> {
                self.0.test(data, x, y, z)
            }
        }
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b", "a", "b"])
            .dimension("Y", ["p", "q", "q", "p"])
            .build()
            .unwrap();
        let test = Bridged(ChiSquareTest::default());
        let vars = ["X", "Y"];
        let compiled = test.compile(&d, &vars).unwrap();
        let by_ids = compiled.test_ids(0, 1, &[]).unwrap();
        let by_name = test.test(&d, "X", "Y", &[]).unwrap();
        assert_eq!(by_ids, by_name);
        // Out-of-range ids are structured errors, not panics.
        assert!(compiled.test_ids(0, 5, &[]).is_err());
        assert!(compiled.test_ids(0, 1, &[3]).is_err());
    }

    #[test]
    fn trait_objects_and_references_delegate() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b", "a", "b"])
            .dimension("Y", ["p", "q", "q", "p"])
            .build()
            .unwrap();
        let test = ChiSquareTest::new(0.05);
        let boxed: Box<dyn CiTest> = Box::new(ChiSquareTest::new(0.05));
        let by_ref = &test;
        let a = test.test(&d, "X", "Y", &[]).unwrap();
        let b = boxed.test(&d, "X", "Y", &[]).unwrap();
        let c = by_ref.test(&d, "X", "Y", &[]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(boxed.name(), "chi-square");
    }
}
