//! The conditional-independence test abstraction.

use xinsight_data::{Dataset, Result};

/// Outcome of one CI query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CiOutcome {
    /// Whether the test declares `X ⫫ Y | Z` at its significance level.
    pub independent: bool,
    /// The p-value of the test (1.0 when the test is vacuous, e.g. a
    /// degenerate contingency table).
    pub p_value: f64,
}

/// A conditional-independence test `X ⫫ Y | Z` evaluated on a dataset.
///
/// Discovery algorithms (PC, FCI, XLearner) are generic over this trait so
/// the same code runs against the chi-square test, the G-test, the Fisher-z
/// test or the d-separation oracle used in unit tests.
pub trait CiTest {
    /// Runs the test of `x ⫫ y | z` on `data`.
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome>;

    /// Convenience wrapper returning only the decision.
    fn independent(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<bool> {
        Ok(self.test(data, x, y, z)?.independent)
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str {
        "ci-test"
    }
}

impl<T: CiTest + ?Sized> CiTest for &T {
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome> {
        (**self).test(data, x, y, z)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: CiTest + ?Sized> CiTest for Box<T> {
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome> {
        (**self).test(data, x, y, z)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChiSquareTest;
    use xinsight_data::DatasetBuilder;

    #[test]
    fn trait_objects_and_references_delegate() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b", "a", "b"])
            .dimension("Y", ["p", "q", "q", "p"])
            .build()
            .unwrap();
        let test = ChiSquareTest::new(0.05);
        let boxed: Box<dyn CiTest> = Box::new(ChiSquareTest::new(0.05));
        let by_ref = &test;
        let a = test.test(&d, "X", "Y", &[]).unwrap();
        let b = boxed.test(&d, "X", "Y", &[]).unwrap();
        let c = by_ref.test(&d, "X", "Y", &[]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(boxed.name(), "chi-square");
    }
}
