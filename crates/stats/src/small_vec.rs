//! A tiny inline-first vector for compact cache keys.
//!
//! Conditioning sets in constraint-based discovery are short (the depth of
//! the adjacency search, typically ≤ 4), so storing them as `Vec<u32>` in a
//! cache key wastes a heap allocation per entry.  [`SmallVec`] keeps up to
//! `N` elements inline and only spills to the heap beyond that, mirroring
//! the `smallvec` crate's core idea in the handful of lines this workspace
//! needs (the workspace builds offline; external crates are not available).

// HashMap here never leaks iteration order into output: spill map of a counting structure; callers sort on read-out (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::hash::{Hash, Hasher};

/// An inline-first vector of `Copy` elements: up to `N` elements live in the
/// struct itself, longer contents spill to a heap `Vec`.
///
/// Equality, ordering and hashing are those of the element slice.  The
/// representation is private, so the `len ≤ N` inline invariant cannot be
/// violated from outside; `N` must fit the internal `u8` length field
/// (checked at compile time, `N ≤ 255`).
///
/// ```
/// use xinsight_stats::SmallVec;
///
/// let mut v: SmallVec<u32> = SmallVec::new();
/// v.push(7);
/// v.push(3);
/// v.sort_unstable();
/// assert_eq!(v.as_slice(), &[3, 7]);
/// assert!(!v.spilled());
/// ```
#[derive(Debug, Clone)]
pub struct SmallVec<T: Copy + Default, const N: usize = 6> {
    repr: Repr<T, N>,
}

#[derive(Debug, Clone)]
enum Repr<T: Copy, const N: usize> {
    /// Contents stored inline: `len` live elements at the front of `buf`.
    Inline { len: u8, buf: [T; N] },
    /// Contents spilled to the heap.
    Heap(Vec<T>),
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// Compile-time guard: the inline length is stored as a `u8`, so the
    /// inline capacity must fit it.  Referenced from every constructor so an
    /// oversized `N` fails at monomorphization instead of truncating.
    const INLINE_CAPACITY_FITS_U8: () = assert!(N <= u8::MAX as usize);

    /// Creates an empty vector (inline).
    pub fn new() -> Self {
        #[allow(clippy::let_unit_value)]
        let () = Self::INLINE_CAPACITY_FITS_U8;
        SmallVec {
            repr: Repr::Inline {
                len: 0,
                buf: [T::default(); N],
            },
        }
    }

    /// Builds a vector from a slice, spilling only when it does not fit.
    pub fn from_slice(items: &[T]) -> Self {
        #[allow(clippy::let_unit_value)]
        let () = Self::INLINE_CAPACITY_FITS_U8;
        if items.len() <= N {
            let mut buf = [T::default(); N];
            buf[..items.len()].copy_from_slice(items);
            SmallVec {
                repr: Repr::Inline {
                    len: items.len() as u8,
                    buf,
                },
            }
        } else {
            SmallVec {
                repr: Repr::Heap(items.to_vec()),
            }
        }
    }

    /// Appends an element, spilling to the heap when the inline buffer is full.
    pub fn push(&mut self, item: T) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if (*len as usize) < N {
                    buf[*len as usize] = item;
                    *len += 1;
                } else {
                    let mut v = buf.to_vec();
                    v.push(item);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(item),
        }
    }

    /// The live elements.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// The live elements, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns `true` when the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when the contents live on the heap.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }
}

impl<T: Copy + Default + Ord, const N: usize> SmallVec<T, N> {
    /// Sorts the elements in place (unstable).
    pub fn sort_unstable(&mut self) {
        self.as_mut_slice().sort_unstable();
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default + Hash, const N: usize> Hash for SmallVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut v: SmallVec<u32, 3> = SmallVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert!(!v.spilled());
        v.push(4);
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn equality_and_hashing_follow_the_slice() {
        // Inline vs inline.
        let a: SmallVec<u32, 4> = SmallVec::from_slice(&[1, 2, 3]);
        let b: SmallVec<u32, 4> = [1, 2, 3].into_iter().collect();
        assert_eq!(a, b);
        // Spilled vs spilled, built through different constructors.
        let c: SmallVec<u32, 2> = SmallVec::from_slice(&[1, 2, 3]);
        let d: SmallVec<u32, 2> = [1, 2, 3].into_iter().collect();
        assert!(c.spilled() && d.spilled());
        assert_eq!(c, d);
        let mut map: HashMap<SmallVec<u32, 2>, &str> = HashMap::new();
        map.insert(c, "x");
        assert_eq!(map.get(&d), Some(&"x"));
        let mut e = d;
        e.push(4);
        assert!(!map.contains_key(&e));
    }

    #[test]
    fn from_slice_and_sort() {
        let mut v: SmallVec<u32> = SmallVec::from_slice(&[9, 1, 5]);
        v.sort_unstable();
        assert_eq!(&*v, &[1, 5, 9]);
        let big: SmallVec<u32, 2> = (0..10).collect();
        assert!(big.spilled());
        assert_eq!(big.len(), 10);
    }
}
