//! Fisher-z partial-correlation conditional-independence test.

use crate::ci_test::{CiOutcome, CiTest};
use crate::special::standard_normal_two_sided_p;
use xinsight_data::{Dataset, Result};

/// Fisher-z test of `X ⫫ Y | Z` for numerical (measure) variables.
///
/// The partial correlation of `X` and `Y` given `Z` is computed from the
/// joint correlation matrix via the Schur complement (solving a small linear
/// system with Gaussian elimination); the Fisher z-transform of the partial
/// correlation is compared against the standard normal distribution.
///
/// The multi-dimensional datasets in the paper are dominated by categorical
/// dimensions, but the FLIGHT-style data contains continuous weather
/// measurements; this test lets XLearner run on those without discretizing.
#[derive(Debug, Clone, Copy)]
pub struct FisherZTest {
    alpha: f64,
}

impl FisherZTest {
    /// Creates a test at significance level `alpha`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in (0, 1)");
        FisherZTest { alpha }
    }

    /// The significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn column_values(data: &Dataset, name: &str) -> Result<Vec<f64>> {
        let col = data.measure(name)?;
        Ok(col.values().to_vec())
    }
}

impl Default for FisherZTest {
    fn default() -> Self {
        FisherZTest::new(0.05)
    }
}

impl CiTest for FisherZTest {
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome> {
        let mut names = vec![x, y];
        names.extend_from_slice(z);
        let columns = names
            .iter()
            .map(|n| Self::column_values(data, n))
            .collect::<Result<Vec<_>>>()?;
        // Keep only rows where every involved value is present.
        let n_rows = data.n_rows();
        let keep: Vec<usize> = (0..n_rows)
            .filter(|&i| columns.iter().all(|c| !c[i].is_nan()))
            .collect();
        let n = keep.len();
        let k = z.len();
        if n < k + 4 {
            return Ok(CiOutcome {
                independent: true,
                p_value: 1.0,
            });
        }
        let cols: Vec<Vec<f64>> = columns
            .iter()
            .map(|c| keep.iter().map(|&i| c[i]).collect())
            .collect();
        let corr = correlation_matrix(&cols);
        let r = partial_correlation(&corr);
        let r = r.clamp(-0.999_999, 0.999_999);
        let z_stat = 0.5 * ((1.0 + r) / (1.0 - r)).ln() * ((n - k - 3) as f64).sqrt();
        let p = standard_normal_two_sided_p(z_stat);
        Ok(CiOutcome {
            independent: p > self.alpha,
            p_value: p,
        })
    }

    fn name(&self) -> &'static str {
        "fisher-z"
    }
}

/// Pearson correlation matrix of the given columns (all the same length).
fn correlation_matrix(cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let m = cols.len();
    let n = cols[0].len() as f64;
    let means: Vec<f64> = cols.iter().map(|c| c.iter().sum::<f64>() / n).collect();
    let sds: Vec<f64> = cols
        .iter()
        .zip(&means)
        .map(|(c, &mu)| (c.iter().map(|v| (v - mu).powi(2)).sum::<f64>() / n).sqrt())
        .collect();
    let mut corr = vec![vec![0.0; m]; m];
    for i in 0..m {
        for j in 0..m {
            if i == j {
                corr[i][j] = 1.0;
                continue;
            }
            let cov = cols[i]
                .iter()
                .zip(&cols[j])
                .map(|(a, b)| (a - means[i]) * (b - means[j]))
                .sum::<f64>()
                / n;
            let denom = sds[i] * sds[j];
            corr[i][j] = if denom > 1e-300 { cov / denom } else { 0.0 };
        }
    }
    corr
}

/// Partial correlation of variables 0 and 1 given variables 2.. from their
/// correlation matrix, via inversion of the correlation matrix restricted to
/// the involved variables: `ρ_{01·Z} = -Ω_01 / sqrt(Ω_00 Ω_11)` where `Ω` is
/// the precision matrix.
fn partial_correlation(corr: &[Vec<f64>]) -> f64 {
    let m = corr.len();
    if m == 2 {
        return corr[0][1];
    }
    match invert(corr) {
        Some(prec) => {
            let denom = (prec[0][0] * prec[1][1]).sqrt();
            if denom > 1e-300 {
                -prec[0][1] / denom
            } else {
                0.0
            }
        }
        None => corr[0][1],
    }
}

/// Gauss-Jordan inversion of a small symmetric matrix; returns `None` when
/// the matrix is numerically singular.
fn invert(matrix: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = matrix.len();
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    let mut inv: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let p = a[col][col];
        for j in 0..n {
            a[col][j] /= p;
            inv[col][j] /= p;
        }
        for row in 0..n {
            if row != col {
                let factor = a[row][col];
                for j in 0..n {
                    a[row][j] -= factor * a[col][j];
                    inv[row][j] -= factor * inv[col][j];
                }
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::DatasetBuilder;

    /// Deterministic pseudo-random generator for reproducible test data.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        }
    }

    /// Z -> X, Z -> Y chain: X ⫫ Y | Z but not marginally.
    fn confounded_continuous(n: usize) -> Dataset {
        let mut rng = lcg(42);
        let mut z = Vec::with_capacity(n);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let zi = rng() * 4.0;
            z.push(zi);
            x.push(2.0 * zi + rng());
            y.push(-1.5 * zi + rng());
        }
        DatasetBuilder::new()
            .measure("Z", z)
            .measure("X", x)
            .measure("Y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn marginal_dependence_conditional_independence() {
        let d = confounded_continuous(2000);
        let t = FisherZTest::new(0.01);
        assert!(!t.independent(&d, "X", "Y", &[]).unwrap());
        assert!(t.independent(&d, "X", "Y", &["Z"]).unwrap());
    }

    #[test]
    fn independent_noise_accepted() {
        let mut rng = lcg(7);
        let x: Vec<f64> = (0..1000).map(|_| rng()).collect();
        let y: Vec<f64> = (0..1000).map(|_| rng()).collect();
        let d = DatasetBuilder::new()
            .measure("X", x)
            .measure("Y", y)
            .build()
            .unwrap();
        assert!(FisherZTest::new(0.01)
            .independent(&d, "X", "Y", &[])
            .unwrap());
    }

    #[test]
    fn too_few_rows_defaults_to_independent() {
        let d = DatasetBuilder::new()
            .measure("X", [1.0, 2.0, 3.0])
            .measure("Y", [1.0, 2.0, 3.0])
            .measure("Z", [0.0, 1.0, 0.0])
            .build()
            .unwrap();
        let out = FisherZTest::default().test(&d, "X", "Y", &["Z"]).unwrap();
        assert!(out.independent);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn matrix_inversion_identity() {
        let m = vec![
            vec![2.0, 0.0, 0.0],
            vec![0.0, 4.0, 0.0],
            vec![0.0, 0.0, 8.0],
        ];
        let inv = invert(&m).unwrap();
        assert!((inv[0][0] - 0.5).abs() < 1e-12);
        assert!((inv[1][1] - 0.25).abs() < 1e-12);
        assert!((inv[2][2] - 0.125).abs() < 1e-12);
        let singular = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(invert(&singular).is_none());
    }

    #[test]
    fn dimension_input_is_error() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "b"])
            .measure("Y", [1.0, 2.0])
            .build()
            .unwrap();
        assert!(FisherZTest::default().test(&d, "X", "Y", &[]).is_err());
    }
}
