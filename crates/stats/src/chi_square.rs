//! Pearson chi-square conditional-independence test.

use crate::ci_test::{outcome_from_statistic, CiOutcome, CiTest, IndexedCiTest};
use crate::contingency::ContingencyTable;
use crate::view::DiscoveryView;
use xinsight_data::{Dataset, Result};

/// Pearson's chi-square test of `X ⫫ Y | Z` for categorical variables.
///
/// The statistic is summed over the strata induced by the joint values of
/// `Z`; degrees of freedom only accrue from strata whose observed margins are
/// non-degenerate.  When the degrees of freedom collapse to zero (too little
/// data, too fine a stratification) the test returns "independent", which is
/// the conventional conservative choice in constraint-based discovery.
#[derive(Debug, Clone, Copy)]
pub struct ChiSquareTest {
    alpha: f64,
}

impl ChiSquareTest {
    /// Creates a test at significance level `alpha` (e.g. 0.05).
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in (0, 1)");
        ChiSquareTest { alpha }
    }

    /// The significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for ChiSquareTest {
    fn default() -> Self {
        ChiSquareTest::new(0.05)
    }
}

impl CiTest for ChiSquareTest {
    fn test(&self, data: &Dataset, x: &str, y: &str, z: &[&str]) -> Result<CiOutcome> {
        let table = ContingencyTable::build(data, x, y, z)?;
        let (stat, dof) = table.chi_square_statistic();
        Ok(outcome_from_statistic(stat, dof, self.alpha))
    }

    fn name(&self) -> &'static str {
        "chi-square"
    }

    fn compile<'a>(
        &'a self,
        data: &'a Dataset,
        vars: &'a [&'a str],
    ) -> Result<Box<dyn IndexedCiTest + 'a>> {
        Ok(Box::new(CompiledChiSquare {
            view: DiscoveryView::compile(data, vars)?,
            alpha: self.alpha,
        }))
    }
}

/// View-native chi-square: all queries run on precompiled code slices.
struct CompiledChiSquare<'a> {
    view: DiscoveryView<'a>,
    alpha: f64,
}

impl IndexedCiTest for CompiledChiSquare<'_> {
    fn test_ids(&self, x: u32, y: u32, z: &[u32]) -> Result<CiOutcome> {
        let table = ContingencyTable::from_view(&self.view, x, y, z)?;
        let (stat, dof) = table.chi_square_statistic();
        Ok(outcome_from_statistic(stat, dof, self.alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::DatasetBuilder;

    /// Builds a dataset where Z -> X and Z -> Y (X ⫫ Y | Z but not marginally).
    fn confounded(n: usize) -> Dataset {
        let mut z = Vec::with_capacity(n);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        // Deterministic pseudo-random pattern: enough to create dependence
        // through Z while keeping X and Y conditionally independent.
        let mut state = 0x12345678u64;
        let mut rand01 = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64
        };
        for _ in 0..n {
            let zi = rand01() < 0.5;
            z.push(if zi { "z1" } else { "z0" });
            let px = if zi { 0.9 } else { 0.1 };
            let py = if zi { 0.8 } else { 0.2 };
            x.push(if rand01() < px { "x1" } else { "x0" });
            y.push(if rand01() < py { "y1" } else { "y0" });
        }
        DatasetBuilder::new()
            .dimension("Z", z)
            .dimension("X", x)
            .dimension("Y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn detects_marginal_dependence_and_conditional_independence() {
        let d = confounded(4000);
        let test = ChiSquareTest::new(0.05);
        // Marginally X and Y are dependent (through Z).
        assert!(!test.independent(&d, "X", "Y", &[]).unwrap());
        // Conditionally on Z they are independent.
        assert!(test.independent(&d, "X", "Y", &["Z"]).unwrap());
    }

    #[test]
    fn perfectly_dependent_variables_rejected() {
        let x: Vec<&str> = (0..200)
            .map(|i| if i % 2 == 0 { "a" } else { "b" })
            .collect();
        let d = DatasetBuilder::new()
            .dimension("X", x.clone())
            .dimension("Y", x)
            .build()
            .unwrap();
        let test = ChiSquareTest::default();
        let out = test.test(&d, "X", "Y", &[]).unwrap();
        assert!(!out.independent);
        assert!(out.p_value < 1e-6);
    }

    #[test]
    fn degenerate_table_defaults_to_independent() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a"])
            .dimension("Y", ["p", "q", "p"])
            .build()
            .unwrap();
        let test = ChiSquareTest::default();
        let out = test.test(&d, "X", "Y", &[]).unwrap();
        assert!(out.independent);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn alpha_controls_strictness() {
        // A weak association: lenient alpha keeps it, strict alpha rejects it.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(if i % 2 == 0 { "a" } else { "b" });
            // 60/40 association.
            y.push(if (i % 10) < 6 {
                if i % 2 == 0 {
                    "p"
                } else {
                    "q"
                }
            } else if i % 2 == 0 {
                "q"
            } else {
                "p"
            });
        }
        let d = DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y)
            .build()
            .unwrap();
        let loose = ChiSquareTest::new(0.20);
        let strict = ChiSquareTest::new(0.001);
        let p = loose.test(&d, "X", "Y", &[]).unwrap().p_value;
        assert_eq!(loose.independent(&d, "X", "Y", &[]).unwrap(), p > 0.20);
        assert_eq!(strict.independent(&d, "X", "Y", &[]).unwrap(), p > 0.001);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn invalid_alpha_panics() {
        let _ = ChiSquareTest::new(1.5);
    }
}
