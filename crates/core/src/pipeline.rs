//! The end-to-end XInsight engine (Fig. 3 of the paper): an offline phase
//! (XLearner) and an online phase (XTranslator + XPlainer) behind one type.

use crate::explanation::{Explanation, ExplanationType, XdaSemantics};
use crate::persist::FittedModel;
use crate::why_query::WhyQuery;
use crate::xlearner::{XLearner, XLearnerOptions, XLearnerResult};
use crate::xplainer::{SearchStrategy, SelectionCache, XPlainer, XPlainerOptions};
use crate::xtranslator::{translate, Translation};
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use xinsight_data::{
    discretize_equal_frequency, discretize_equal_width, AttributeKind, Dataset, DatasetBuilder,
    Discretizer, Result,
};
use xinsight_graph::{separation, MixedGraph};
use xinsight_stats::{CachedCiTest, ChiSquareTest};

/// Options for the full pipeline.
#[derive(Debug, Clone)]
pub struct XInsightOptions {
    /// Options for the offline XLearner phase.
    pub xlearner: XLearnerOptions,
    /// Options for the online XPlainer phase.
    pub xplainer: XPlainerOptions,
    /// Significance level of the chi-square CI test used by XLearner.
    pub ci_alpha: f64,
    /// Number of bins used when a measure has to be discretized (both for
    /// causal discovery and for measure-valued explanations).
    pub measure_bins: usize,
    /// Search strategy handed to XPlainer.
    pub strategy: SearchStrategy,
    /// Master switch for engine parallelism, offline and online.
    ///
    /// Offline: the depth batches of the skeleton search and FCI's
    /// Possible-D-SEP stage fan out over the rayon pool (AND-ed with
    /// [`FciOptions::parallel`](xinsight_discovery::FciOptions) from the
    /// XLearner options).  Online: per-attribute searches in
    /// [`XInsight::explain`], per-query searches in
    /// [`XInsight::explain_many`], and the per-filter probe loops inside the
    /// strategies (the latter also honour
    /// [`XPlainerOptions::parallel`](crate::XPlainerOptions) — both must be
    /// `true` for the inner loops to fan out).  Results are identical either
    /// way; disable for serial baselines.  See [`crate::parallel`] for pool
    /// sizing.
    pub parallel: bool,
}

impl Default for XInsightOptions {
    fn default() -> Self {
        XInsightOptions {
            xlearner: XLearnerOptions::default(),
            xplainer: XPlainerOptions::default(),
            ci_alpha: 0.05,
            measure_bins: 4,
            strategy: SearchStrategy::Optimized,
            parallel: true,
        }
    }
}

/// The XInsight engine: fit once on a dataset (offline phase), then answer
/// any number of Why Queries (online phase).
#[derive(Debug)]
pub struct XInsight {
    options: XInsightOptions,
    /// Original data (nulls dropped) augmented with `<measure>_bin` columns.
    augmented: Dataset,
    /// Measures that were successfully discretized.
    binned_measures: Vec<String>,
    /// The discretizers behind `binned_measures`, kept for persistence.
    discretizers: Vec<Discretizer>,
    /// Result of the offline XLearner phase.
    learner_result: XLearnerResult,
}

impl XInsight {
    /// Runs the offline phase: preprocessing, FD detection and causal-graph
    /// learning.
    ///
    /// When [`XInsightOptions::parallel`] is set, the skeleton search and
    /// FCI's Possible-D-SEP stage evaluate their frozen depth batches on the
    /// rayon pool; the learned graph, sepsets and CI-test count are
    /// identical to a serial fit.
    pub fn fit(data: &Dataset, options: &XInsightOptions) -> Result<Self> {
        let clean = data.drop_null_rows();
        let dims: Vec<String> = clean
            .schema()
            .dimension_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let measures: Vec<String> = clean
            .schema()
            .measure_names()
            .into_iter()
            .map(str::to_owned)
            .collect();

        // Discretize each measure (falling back from equal-frequency to
        // equal-width; skipping degenerate measures entirely).
        let mut augmented = clean.clone();
        let mut discovery = DatasetBuilder::new();
        for name in &dims {
            discovery = discovery.dimension_column(name, clean.dimension(name)?.clone());
        }
        let mut binned_measures = Vec::new();
        let mut discretizers = Vec::new();
        for name in &measures {
            let discretizer = discretize_equal_frequency(&clean, name, options.measure_bins)
                .or_else(|_| discretize_equal_width(&clean, name, options.measure_bins));
            if let Ok(disc) = discretizer {
                let bin_name = format!("{name}_bin");
                augmented = disc.apply(&augmented, Some(&bin_name))?;
                // In the discovery view the binned column carries the measure's
                // own name so that graph nodes and attributes coincide.
                let tmp = disc.apply(&clean, Some("__tmp_bin"))?;
                discovery =
                    discovery.dimension_column(name, tmp.dimension("__tmp_bin")?.clone());
                binned_measures.push(name.clone());
                discretizers.push(disc);
            }
        }
        let discovery_view = discovery.build()?;

        let variables: Vec<&str> = discovery_view.schema().names();
        // `parallel` is the master switch for the offline phase too: AND-ing
        // with the FCI option means neither flag silently overrides an
        // explicit `false` in the other.
        let mut xlearner_options = options.xlearner.clone();
        xlearner_options.fci.parallel = options.parallel && xlearner_options.fci.parallel;
        let learner = XLearner::new(xlearner_options);
        let test = CachedCiTest::new(ChiSquareTest::new(options.ci_alpha));
        let mut learner_result = learner.learn(&discovery_view, &variables, &test)?;
        // The fit owns its CI cache, so its effectiveness would be invisible
        // once the test is dropped; snapshot the counters into the result so
        // serving processes and benches can report them.
        learner_result.ci_cache_stats = test.stats();

        Ok(XInsight {
            options: options.clone(),
            augmented,
            binned_measures,
            discretizers,
            learner_result,
        })
    }

    /// Exports the offline phase's output as a persistable [`FittedModel`].
    ///
    /// Together with [`XInsight::from_fitted`] this lets a serving process
    /// fit once, [`FittedModel::save`] the artifact, and later reconstruct
    /// the engine without re-running causal discovery.
    pub fn fitted_model(&self) -> FittedModel {
        FittedModel {
            graph: self.learner_result.graph.clone(),
            fd_graph: self.learner_result.fd_graph.clone(),
            fci_variables: self.learner_result.fci_variables.clone(),
            dropped_redundant: self.learner_result.dropped_redundant.clone(),
            sepsets: self.learner_result.sepsets.clone(),
            n_ci_tests: self.learner_result.n_ci_tests,
            discretizers: self.discretizers.clone(),
        }
    }

    /// Reconstructs an engine from a previously fitted model and the raw
    /// dataset, skipping causal discovery entirely.
    ///
    /// `data` must be schema-compatible with the dataset the model was
    /// fitted on (same dimensions and measures); typically it *is* that
    /// dataset, reloaded by a serving process.  The online options are
    /// supplied fresh, so a server can e.g. change the search strategy or
    /// parallelism without re-fitting.  Given the same data and options,
    /// [`XInsight::explain`] and [`XInsight::explain_many`] answer
    /// identically to the engine that produced the model.
    pub fn from_fitted(
        data: &Dataset,
        model: FittedModel,
        options: &XInsightOptions,
    ) -> Result<Self> {
        let clean = data.drop_null_rows();
        let mut augmented = clean;
        let mut binned_measures = Vec::new();
        for disc in &model.discretizers {
            let bin_name = format!("{}_bin", disc.measure());
            augmented = disc.apply(&augmented, Some(&bin_name))?;
            binned_measures.push(disc.measure().to_owned());
        }
        Ok(XInsight {
            options: options.clone(),
            augmented,
            binned_measures,
            discretizers: model.discretizers,
            learner_result: XLearnerResult {
                graph: model.graph,
                fd_graph: model.fd_graph,
                fci_variables: model.fci_variables,
                dropped_redundant: model.dropped_redundant,
                sepsets: model.sepsets,
                n_ci_tests: model.n_ci_tests,
                ci_cache_stats: xinsight_stats::CacheStats::default(),
            },
        })
    }

    /// The learned FD-augmented PAG.
    pub fn graph(&self) -> &MixedGraph {
        &self.learner_result.graph
    }

    /// The full XLearner result (FD graph, CI-test counts, …).
    pub fn learner_result(&self) -> &XLearnerResult {
        &self.learner_result
    }

    /// The preprocessed dataset the engine answers queries against
    /// (nulls dropped, `<measure>_bin` companion columns added).
    pub fn data(&self) -> &Dataset {
        &self.augmented
    }

    /// Runs XTranslator for a query: the per-variable XDA semantics.
    pub fn translation(&self, query: &WhyQuery) -> Translation {
        translate(&self.learner_result.graph, query)
    }

    /// Answers a Why Query with a ranked list of explanations
    /// (causal explanations first, then by responsibility).
    ///
    /// The per-attribute searches are independent; when
    /// [`XInsightOptions::parallel`] is set (the default) they fan out over
    /// the rayon thread pool, sharing one [`SelectionCache`] so sibling-mask
    /// and aggregate work done for one attribute is replayed by the others.
    /// The result is identical to the serial path.
    pub fn explain(&self, query: &WhyQuery) -> Result<Vec<Explanation>> {
        self.explain_with_cache(query, Arc::new(SelectionCache::new()))
    }

    /// Answers a batch of Why Queries, sharing one [`SelectionCache`] across
    /// all of them (and, when [`XInsightOptions::parallel`] is set, fanning
    /// the queries out over the thread pool).
    ///
    /// Queries in a batch typically hit the same sibling subspaces and
    /// candidate attributes, so the cross-query cache turns most of the
    /// second-to-last queries' `Δ(·)` terms into replays.  Results are in
    /// input order and byte-identical to calling [`XInsight::explain`] on
    /// each query serially.
    ///
    /// ```
    /// # use xinsight_core::{WhyQuery, pipeline::{XInsight, XInsightOptions}};
    /// # use xinsight_data::{Aggregate, DatasetBuilder, Subspace};
    /// # let mut loc = Vec::new();
    /// # let mut smoking = Vec::new();
    /// # let mut severity = Vec::new();
    /// # for i in 0..200 {
    /// #     let a = i % 2 == 0;
    /// #     loc.push(if a { "A" } else { "B" });
    /// #     let smokes = if a { i % 10 < 8 } else { i % 10 < 2 };
    /// #     smoking.push(if smokes { "Yes" } else { "No" });
    /// #     severity.push(match (smokes, i % 7) {
    /// #         (true, 0..=4) => 3.0,
    /// #         (true, _) => 2.0,
    /// #         (false, 0) => 2.0,
    /// #         (false, _) => 1.0,
    /// #     });
    /// # }
    /// # let data = DatasetBuilder::new()
    /// #     .dimension("Location", loc)
    /// #     .dimension("Smoking", smoking)
    /// #     .measure("LungCancer", severity)
    /// #     .build()
    /// #     .unwrap();
    /// let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
    /// let queries = [
    ///     WhyQuery::new("LungCancer", Aggregate::Avg,
    ///                   Subspace::of("Location", "A"),
    ///                   Subspace::of("Location", "B")).unwrap(),
    ///     WhyQuery::new("LungCancer", Aggregate::Sum,
    ///                   Subspace::of("Location", "A"),
    ///                   Subspace::of("Location", "B")).unwrap(),
    /// ];
    /// let batched = engine.explain_many(&queries).unwrap();
    /// assert_eq!(batched.len(), 2);
    /// assert_eq!(batched[0], engine.explain(&queries[0]).unwrap());
    /// ```
    pub fn explain_many(&self, queries: &[WhyQuery]) -> Result<Vec<Vec<Explanation>>> {
        self.explain_many_with_cache(queries, Arc::new(SelectionCache::new()))
    }

    /// [`XInsight::explain_many`] with a caller-supplied [`SelectionCache`].
    ///
    /// Answers are byte-identical to [`XInsight::explain`] on each query —
    /// the cache only replays `Δ(·)` building blocks, it never changes them.
    /// Callers that own the cache can read
    /// [`SelectionCache::stats`] afterwards (the serving layer accumulates
    /// them into its `/stats` endpoint) or share one cache across several
    /// related batches.  The usual cache rules apply: one cache per dataset
    /// (enforced by a fingerprint check), and entries are never evicted, so
    /// scope a cache to a bounded working set rather than holding one
    /// forever.
    pub fn explain_many_with_cache(
        &self,
        queries: &[WhyQuery],
        cache: Arc<SelectionCache>,
    ) -> Result<Vec<Vec<Explanation>>> {
        let results: Vec<Result<Vec<Explanation>>> = if self.options.parallel {
            queries
                .par_iter()
                .map(|query| self.explain_with_cache(query, Arc::clone(&cache)))
                .collect()
        } else {
            queries
                .iter()
                .map(|query| self.explain_with_cache(query, Arc::clone(&cache)))
                .collect()
        };
        results.into_iter().collect()
    }

    /// The explanation engine behind [`XInsight::explain`] and
    /// [`XInsight::explain_many`], parameterized by the selection cache the
    /// `Δ(·)` terms are answered through.
    fn explain_with_cache(
        &self,
        query: &WhyQuery,
        cache: Arc<SelectionCache>,
    ) -> Result<Vec<Explanation>> {
        let query = query.oriented(&self.augmented)?;
        let original_delta = query.delta(&self.augmented)?;
        let translation = self.translation(&query);
        // `XInsightOptions::parallel` is the master switch for the whole
        // online phase; `xplainer.parallel` can *additionally* opt the inner
        // probe loops out.  AND-ing the two means neither flag silently
        // overrides an explicit `false` in the other.
        let xplainer = XPlainer::new(XPlainerOptions {
            parallel: self.options.parallel && self.options.xplainer.parallel,
            ..self.options.xplainer.clone()
        });

        let skip: HashSet<&str> = {
            let mut s: HashSet<&str> = HashSet::new();
            s.insert(query.measure());
            s.insert(query.foreground());
            s.extend(query.background());
            s
        };

        // Candidate attributes in translation (= variable-name) order, so the
        // search schedule and output ranking are deterministic.
        let targets: Vec<(XdaSemantics, String, bool)> = translation
            .iter()
            .filter(|(variable, semantics)| {
                !skip.contains(variable) && semantics.has_explainability()
            })
            .filter_map(|(variable, semantics)| {
                // Measures are explained through their binned companion
                // column.
                let attribute = if self.binned_measures.iter().any(|m| m == variable) {
                    format!("{variable}_bin")
                } else {
                    variable.to_owned()
                };
                let is_dimension = self
                    .augmented
                    .schema()
                    .attribute_by_name(&attribute)
                    .map(|a| a.kind == AttributeKind::Dimension)
                    .unwrap_or(false);
                is_dimension.then(|| {
                    let homogeneous = self.is_homogeneous(&query, variable);
                    (semantics, attribute, homogeneous)
                })
            })
            .collect();

        let search = |target: &(XdaSemantics, String, bool)| {
            let (_, attribute, homogeneous) = target;
            xplainer.explain_attribute_cached(
                &self.augmented,
                &query,
                attribute,
                self.options.strategy,
                *homogeneous,
                Arc::clone(&cache),
            )
        };
        let candidates: Vec<_> = if self.options.parallel {
            targets.par_iter().map(search).collect()
        } else {
            targets.iter().map(search).collect()
        };

        let mut explanations = Vec::new();
        for (target, candidate) in targets.iter().zip(candidates) {
            let (semantics, _, _) = target;
            if let Some(c) = candidate? {
                let explanation_type = semantics
                    .explanation_type()
                    .unwrap_or(ExplanationType::NonCausal);
                let causal_role = match semantics {
                    XdaSemantics::CausalExplanation(role) => Some(*role),
                    _ => None,
                };
                explanations.push(Explanation {
                    explanation_type,
                    causal_role,
                    predicate: c.predicate,
                    responsibility: c.responsibility,
                    contingency: c.contingency,
                    original_delta,
                    remaining_delta: c.remaining_delta,
                });
            }
        }
        explanations.sort_by(|a, b| {
            let type_order = |t: ExplanationType| match t {
                ExplanationType::Causal => 0,
                ExplanationType::NonCausal => 1,
            };
            type_order(a.explanation_type)
                .cmp(&type_order(b.explanation_type))
                .then(
                    b.responsibility
                        .partial_cmp(&a.responsibility)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        Ok(explanations)
    }

    /// Homogeneity check (Def. 3.7): the sibling subspaces are homogeneous on
    /// `x` when `x ⫫_G F | B` in the learned graph.
    fn is_homogeneous(&self, query: &WhyQuery, x: &str) -> bool {
        let graph = &self.learner_result.graph;
        let (Some(xi), Some(fi)) = (graph.id(x), graph.id(query.foreground())) else {
            return false;
        };
        let cond: Vec<_> = query
            .background()
            .iter()
            .filter_map(|b| graph.id(b))
            .collect();
        separation::m_separated(graph, xi, fi, &cond)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, Subspace};

    /// Deterministic pseudo-random stream.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / (1u64 << 53) as f64
        }
    }

    /// A lung-cancer-style dataset following Fig. 1: Location and Stress cause
    /// Smoking, Smoking causes LungCancer severity, severity causes Surgery.
    fn lung_cancer_data(n: usize) -> Dataset {
        let mut rng = lcg(2024);
        let mut location = Vec::with_capacity(n);
        let mut stress = Vec::with_capacity(n);
        let mut smoking = Vec::with_capacity(n);
        let mut surgery = Vec::with_capacity(n);
        let mut severity = Vec::with_capacity(n);
        for _ in 0..n {
            let loc_a = rng() < 0.5;
            location.push(if loc_a { "A" } else { "B" });
            let high_stress = rng() < 0.5;
            stress.push(if high_stress { "High" } else { "Low" });
            let p_smoke = match (loc_a, high_stress) {
                (true, true) => 0.9,
                (true, false) => 0.7,
                (false, true) => 0.4,
                (false, false) => 0.1,
            };
            let smokes = rng() < p_smoke;
            smoking.push(if smokes { "Yes" } else { "No" });
            let sev = if smokes {
                2.0 + (rng() < 0.8) as u8 as f64
            } else {
                1.0 + (rng() < 0.2) as u8 as f64
            };
            severity.push(sev);
            surgery.push(if sev > 2.0 && rng() < 0.8 { "Yes" } else { "No" });
        }
        xinsight_data::DatasetBuilder::new()
            .dimension("Location", location)
            .dimension("Stress", stress)
            .dimension("Smoking", smoking)
            .dimension("Surgery", surgery)
            .measure("LungCancer", severity)
            .build()
            .unwrap()
    }

    fn why_query() -> WhyQuery {
        WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "A"),
            Subspace::of("Location", "B"),
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_smoking_is_a_top_causal_explanation() {
        let data = lung_cancer_data(3000);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let explanations = engine.explain(&why_query()).unwrap();
        assert!(!explanations.is_empty());
        let causal: Vec<_> = explanations
            .iter()
            .filter(|e| e.explanation_type == ExplanationType::Causal)
            .collect();
        assert!(
            causal.iter().any(|e| e.attribute() == "Smoking"),
            "Smoking must appear among causal explanations; got: {:?}",
            explanations.iter().map(|e| e.attribute()).collect::<Vec<_>>()
        );
        let smoking = causal.iter().find(|e| e.attribute() == "Smoking").unwrap();
        // Conditioning on either smoking status equalises the two locations,
        // so the optimal predicate is a single filter (Yes or No) with high
        // responsibility; which of the two wins depends on sampling noise.
        assert_eq!(smoking.predicate.len(), 1);
        assert!(smoking.responsibility > 0.3);
        assert!(smoking.reduction_ratio().unwrap() > 0.5);
        // Causal explanations are ranked before non-causal ones.
        let first_non_causal = explanations
            .iter()
            .position(|e| e.explanation_type == ExplanationType::NonCausal);
        let last_causal = explanations
            .iter()
            .rposition(|e| e.explanation_type == ExplanationType::Causal);
        if let (Some(nc), Some(c)) = (first_non_causal, last_causal) {
            assert!(c < nc);
        }
    }

    #[test]
    fn surgery_is_not_reported_as_causal() {
        let data = lung_cancer_data(3000);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let explanations = engine.explain(&why_query()).unwrap();
        for e in &explanations {
            if e.attribute() == "Surgery" {
                assert_eq!(e.explanation_type, ExplanationType::NonCausal);
            }
        }
    }

    #[test]
    fn translation_accessor_reports_semantics() {
        let data = lung_cancer_data(2000);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let t = engine.translation(&why_query());
        assert!(t
            .explainable_variables()
            .contains(&"Smoking"));
        assert!(engine.graph().n_nodes() >= 5);
        assert!(engine.learner_result().n_ci_tests > 0);
    }

    #[test]
    fn fitted_model_round_trip_serves_identical_explanations() {
        let data = lung_cancer_data(1500);
        let options = XInsightOptions::default();
        let engine = XInsight::fit(&data, &options).unwrap();
        let direct = engine.explain(&why_query()).unwrap();

        let json = engine.fitted_model().to_json();
        let model = crate::persist::FittedModel::from_json(&json).unwrap();
        assert_eq!(model, engine.fitted_model());
        let restored = XInsight::from_fitted(&data, model, &options).unwrap();
        assert_eq!(restored.graph(), engine.graph());
        assert_eq!(restored.data(), engine.data());
        assert_eq!(restored.explain(&why_query()).unwrap(), direct);
    }

    #[test]
    fn serial_and_parallel_fits_learn_the_same_model() {
        let data = lung_cancer_data(1200);
        let parallel = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let serial = XInsight::fit(
            &data,
            &XInsightOptions {
                parallel: false,
                ..XInsightOptions::default()
            },
        )
        .unwrap();
        assert_eq!(parallel.graph(), serial.graph());
        assert_eq!(
            parallel.learner_result().n_ci_tests,
            serial.learner_result().n_ci_tests
        );
        assert_eq!(parallel.fitted_model(), serial.fitted_model());
    }

    #[test]
    fn graph_contains_measure_node_via_discretization() {
        let data = lung_cancer_data(1500);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        assert!(engine.graph().id("LungCancer").is_some());
        // The augmented dataset exposes the binned companion column.
        assert!(engine.data().dimension("LungCancer_bin").is_ok());
    }
}
