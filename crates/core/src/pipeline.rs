//! The end-to-end XInsight engine (Fig. 3 of the paper): an offline phase
//! (XLearner) and an online phase (XTranslator + XPlainer) behind one type.
//!
//! The online phase is driven by one unified execution core,
//! [`XInsight::execute`]: a typed [`ExplainRequest`] (query + per-request
//! controls) in, a self-describing [`ExplainResponse`] (ranked, scored,
//! flagged, optionally provenance-carrying) out.  Single, batch and
//! cache-sharing entry points are thin shells over the same codepath, and
//! the legacy `explain*` methods survive as deprecated adapters.

use crate::execute::{ExplainRequest, ExplainResponse, Provenance, ScoredExplanation};
use crate::explanation::{Explanation, ExplanationType, XdaSemantics};
use crate::persist::FittedModel;
use crate::why_query::WhyQuery;
use crate::xlearner::{XLearner, XLearnerOptions, XLearnerResult};
use crate::xplainer::{
    ExplanationCandidate, SearchStrategy, SelectionCache, XPlainer, XPlainerOptions,
};
use crate::xtranslator::{translate, Translation};
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;
use xinsight_data::{
    discretize_equal_frequency, discretize_equal_width, Aggregate, AttributeKind, DataError,
    Dataset, DatasetBuilder, Discretizer, Result, Schema, SegmentedDataset,
};
use xinsight_graph::{separation, MixedGraph};
use xinsight_stats::{CachedCiTest, ChiSquareTest};

/// The human-readable name of the XPlainer search strategy a query with
/// this aggregate engages (Table 4 of the paper) — reported in
/// [`Provenance::strategy_evaluations`].
fn strategy_name(strategy: SearchStrategy, aggregate: Aggregate) -> &'static str {
    match strategy {
        SearchStrategy::BruteForce => "brute-force",
        SearchStrategy::Optimized => match aggregate {
            Aggregate::Sum | Aggregate::Count => "sum-optimized",
            Aggregate::Avg => "avg-optimized",
            Aggregate::Min | Aggregate::Max => "brute-force-fallback",
        },
    }
}

/// What happened to one candidate attribute during request execution.
enum SearchOutcome {
    /// The search ran; it may or may not have found an explanation.
    Done(Option<ExplanationCandidate>),
    /// The request's deadline expired before this search started.
    Skipped,
}

/// Options for the full pipeline.
#[derive(Debug, Clone)]
pub struct XInsightOptions {
    /// Options for the offline XLearner phase.
    pub xlearner: XLearnerOptions,
    /// Options for the online XPlainer phase.
    pub xplainer: XPlainerOptions,
    /// Significance level of the chi-square CI test used by XLearner.
    pub ci_alpha: f64,
    /// Number of bins used when a measure has to be discretized (both for
    /// causal discovery and for measure-valued explanations).
    pub measure_bins: usize,
    /// Search strategy handed to XPlainer.
    pub strategy: SearchStrategy,
    /// Master switch for engine parallelism, offline and online.
    ///
    /// Offline: the depth batches of the skeleton search and FCI's
    /// Possible-D-SEP stage fan out over the rayon pool (AND-ed with
    /// [`FciOptions::parallel`](xinsight_discovery::FciOptions) from the
    /// XLearner options).  Online: per-attribute searches in
    /// [`XInsight::explain`], per-query searches in
    /// [`XInsight::explain_many`], and the per-filter probe loops inside the
    /// strategies (the latter also honour
    /// [`XPlainerOptions::parallel`](crate::XPlainerOptions) — both must be
    /// `true` for the inner loops to fan out).  Results are identical either
    /// way; disable for serial baselines.  See [`crate::parallel`] for pool
    /// sizing.
    pub parallel: bool,
}

impl Default for XInsightOptions {
    fn default() -> Self {
        XInsightOptions {
            xlearner: XLearnerOptions::default(),
            xplainer: XPlainerOptions::default(),
            ci_alpha: 0.05,
            measure_bins: 4,
            strategy: SearchStrategy::Optimized,
            parallel: true,
        }
    }
}

/// The XInsight engine: fit once on a dataset (offline phase), then answer
/// any number of Why Queries (online phase).
#[derive(Debug)]
pub struct XInsight {
    options: XInsightOptions,
    /// The segmented store the online phase answers against: original data
    /// (nulls dropped) augmented with `<measure>_bin` columns.  One segment
    /// after a fit/restore; one more per [`XInsight::with_ingested`] batch.
    augmented: SegmentedDataset,
    /// The raw (pre-augmentation) schema — what ingested rows must match.
    raw_schema: Schema,
    /// Measures that were successfully discretized.
    binned_measures: Vec<String>,
    /// The discretizers behind `binned_measures`, kept for persistence.
    discretizers: Vec<Discretizer>,
    /// Result of the offline XLearner phase.
    learner_result: XLearnerResult,
}

impl XInsight {
    /// Runs the offline phase: preprocessing, FD detection and causal-graph
    /// learning.
    ///
    /// When [`XInsightOptions::parallel`] is set, the skeleton search and
    /// FCI's Possible-D-SEP stage evaluate their frozen depth batches on the
    /// rayon pool; the learned graph, sepsets and CI-test count are
    /// identical to a serial fit.
    pub fn fit(data: &Dataset, options: &XInsightOptions) -> Result<Self> {
        let clean = data.drop_null_rows();
        let dims: Vec<String> = clean
            .schema()
            .dimension_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let measures: Vec<String> = clean
            .schema()
            .measure_names()
            .into_iter()
            .map(str::to_owned)
            .collect();

        // Discretize each measure (falling back from equal-frequency to
        // equal-width; skipping degenerate measures entirely).
        let mut augmented = clean.clone();
        let mut discovery = DatasetBuilder::new();
        for name in &dims {
            discovery = discovery.dimension_column(name, clean.dimension(name)?.clone());
        }
        let mut binned_measures = Vec::new();
        let mut discretizers = Vec::new();
        for name in &measures {
            let discretizer = discretize_equal_frequency(&clean, name, options.measure_bins)
                .or_else(|_| discretize_equal_width(&clean, name, options.measure_bins));
            if let Ok(disc) = discretizer {
                let bin_name = format!("{name}_bin");
                augmented = disc.apply(&augmented, Some(&bin_name))?;
                // In the discovery view the binned column carries the measure's
                // own name so that graph nodes and attributes coincide.
                let tmp = disc.apply(&clean, Some("__tmp_bin"))?;
                discovery = discovery.dimension_column(name, tmp.dimension("__tmp_bin")?.clone());
                binned_measures.push(name.clone());
                discretizers.push(disc);
            }
        }
        let discovery_view = discovery.build()?;

        let variables: Vec<&str> = discovery_view.schema().names();
        // `parallel` is the master switch for the offline phase too: AND-ing
        // with the FCI option means neither flag silently overrides an
        // explicit `false` in the other.
        let mut xlearner_options = options.xlearner.clone();
        xlearner_options.fci.parallel = options.parallel && xlearner_options.fci.parallel;
        let learner = XLearner::new(xlearner_options);
        let test = CachedCiTest::new(ChiSquareTest::new(options.ci_alpha));
        let mut learner_result = learner.learn(&discovery_view, &variables, &test)?;
        // The fit owns its CI cache, so its effectiveness would be invisible
        // once the test is dropped; snapshot the counters into the result so
        // serving processes and benches can report them.
        learner_result.ci_cache_stats = test.stats();

        Ok(XInsight {
            options: options.clone(),
            raw_schema: clean.schema().clone(),
            augmented: SegmentedDataset::from_dataset(augmented),
            binned_measures,
            discretizers,
            learner_result,
        })
    }

    /// Exports the offline phase's output as a persistable [`FittedModel`].
    ///
    /// Together with [`XInsight::from_fitted`] this lets a serving process
    /// fit once, [`FittedModel::save`] the artifact, and later reconstruct
    /// the engine without re-running causal discovery.
    pub fn fitted_model(&self) -> FittedModel {
        FittedModel {
            graph: self.learner_result.graph.clone(),
            fd_graph: self.learner_result.fd_graph.clone(),
            fci_variables: self.learner_result.fci_variables.clone(),
            dropped_redundant: self.learner_result.dropped_redundant.clone(),
            sepsets: self.learner_result.sepsets.clone(),
            n_ci_tests: self.learner_result.n_ci_tests,
            discretizers: self.discretizers.clone(),
        }
    }

    /// Reconstructs an engine from a previously fitted model and the raw
    /// dataset, skipping causal discovery entirely.
    ///
    /// `data` must be schema-compatible with the dataset the model was
    /// fitted on (same dimensions and measures); typically it *is* that
    /// dataset, reloaded by a serving process.  The online options are
    /// supplied fresh, so a server can e.g. change the search strategy or
    /// parallelism without re-fitting.  Given the same data and options,
    /// [`XInsight::explain`] and [`XInsight::explain_many`] answer
    /// identically to the engine that produced the model.
    pub fn from_fitted(
        data: &Dataset,
        model: FittedModel,
        options: &XInsightOptions,
    ) -> Result<Self> {
        let clean = data.drop_null_rows();
        let raw_schema = clean.schema().clone();
        let mut augmented = clean;
        let mut binned_measures = Vec::new();
        for disc in &model.discretizers {
            let bin_name = format!("{}_bin", disc.measure());
            augmented = disc.apply(&augmented, Some(&bin_name))?;
            binned_measures.push(disc.measure().to_owned());
        }
        Ok(XInsight {
            options: options.clone(),
            raw_schema,
            augmented: SegmentedDataset::from_dataset(augmented),
            binned_measures,
            discretizers: model.discretizers,
            learner_result: XLearnerResult {
                graph: model.graph,
                fd_graph: model.fd_graph,
                fci_variables: model.fci_variables,
                dropped_redundant: model.dropped_redundant,
                sepsets: model.sepsets,
                n_ci_tests: model.n_ci_tests,
                ci_cache_stats: xinsight_stats::CacheStats::default(),
            },
        })
    }

    /// The learned FD-augmented PAG.
    pub fn graph(&self) -> &MixedGraph {
        &self.learner_result.graph
    }

    /// The full XLearner result (FD graph, CI-test counts, …).
    pub fn learner_result(&self) -> &XLearnerResult {
        &self.learner_result
    }

    /// The segmented store the engine answers queries against (nulls
    /// dropped, `<measure>_bin` companion columns added): one segment after
    /// a fit or restore, plus one per ingested batch.
    pub fn data(&self) -> &SegmentedDataset {
        &self.augmented
    }

    /// The raw (pre-augmentation) schema ingested rows must match: the
    /// original dimensions and measures, without the `<measure>_bin`
    /// companion columns the engine derives itself.
    pub fn raw_schema(&self) -> &Schema {
        &self.raw_schema
    }

    /// Returns a new engine whose store has `batch` appended as one sealed
    /// segment — the streaming-ingest step.  The fitted model (graph,
    /// discretizers, FDs) is shared unchanged: new rows become explainable
    /// through the *existing* model without re-running causal discovery,
    /// exactly like a dashboard refreshing over a growing table.
    ///
    /// `batch` must carry this engine's [raw schema](XInsight::raw_schema)
    /// (same attributes, kinds and order).  Rows with missing values are
    /// dropped (the paper's preprocessing, applied per batch — the result
    /// equals having fitted-restored over the concatenated data); a batch
    /// that is empty after cleaning is rejected.  The engine is cheap to
    /// produce: existing segments and the learned artifacts are shared, so
    /// a serving layer can atomically swap engines per ingest.
    pub fn with_ingested(&self, batch: &Dataset) -> Result<XInsight> {
        if *batch.schema() != self.raw_schema {
            return Err(DataError::DatasetMismatch(format!(
                "ingested rows must match the model's raw schema [{}]",
                self.raw_schema.names().join(", ")
            )));
        }
        let clean = batch.drop_null_rows();
        if clean.n_rows() == 0 {
            return Err(DataError::Serve(
                "ingest batch has no complete rows after dropping missing values".into(),
            ));
        }
        let mut augmented = clean;
        for disc in &self.discretizers {
            let bin_name = format!("{}_bin", disc.measure());
            augmented = disc.apply(&augmented, Some(&bin_name))?;
        }
        Ok(XInsight {
            options: self.options.clone(),
            raw_schema: self.raw_schema.clone(),
            augmented: self.augmented.seal(&augmented)?,
            binned_measures: self.binned_measures.clone(),
            discretizers: self.discretizers.clone(),
            learner_result: self.learner_result.clone(),
        })
    }

    /// Returns a new engine whose store has every sealed segment rewritten
    /// into **one** merged segment — the background-compaction step.
    ///
    /// A pure rewrite of immutable data through
    /// [`SegmentedDataset::compact`]: same rows in the same order, same
    /// global dictionary codes, same lineage, fresh segment id — so every
    /// explanation over the compacted engine is byte-identical to the
    /// segmented one, while scans stop paying the per-segment overhead
    /// that unbatched streaming ingest accumulates.  The fitted model
    /// (graph, discretizers, FDs) is shared unchanged, exactly like
    /// [`XInsight::with_ingested`]; an engine whose store is already a
    /// single segment comes back with its snapshot untouched (no epoch
    /// bump), so callers can invoke this idempotently.
    pub fn with_compacted(&self) -> Result<XInsight> {
        Ok(XInsight {
            options: self.options.clone(),
            raw_schema: self.raw_schema.clone(),
            augmented: self.augmented.compact()?,
            binned_measures: self.binned_measures.clone(),
            discretizers: self.discretizers.clone(),
            learner_result: self.learner_result.clone(),
        })
    }

    /// Runs XTranslator for a query: the per-variable XDA semantics.
    pub fn translation(&self, query: &WhyQuery) -> Translation {
        translate(&self.learner_result.graph, query)
    }

    /// Executes one [`ExplainRequest`]: the unified online entry point.
    ///
    /// Every per-request control is honoured here — the
    /// [`ExplanationType`] allowlist prunes candidate attributes *before*
    /// searching, the deadline skips searches that have not started when
    /// the budget runs out, and `min_score`/`top_k` trim the ranked list
    /// (flagging [`ExplainResponse::truncated`]).  A request with default
    /// options returns exactly what the legacy `explain` returned, ranked
    /// causal-first then by responsibility.
    ///
    /// ```
    /// # use xinsight_core::{ExplainRequest, WhyQuery, pipeline::{XInsight, XInsightOptions}};
    /// # use xinsight_data::{Aggregate, DatasetBuilder, Subspace};
    /// # let mut loc = Vec::new();
    /// # let mut smoking = Vec::new();
    /// # let mut severity = Vec::new();
    /// # for i in 0..200 {
    /// #     let a = i % 2 == 0;
    /// #     loc.push(if a { "A" } else { "B" });
    /// #     let smokes = if a { i % 10 < 8 } else { i % 10 < 2 };
    /// #     smoking.push(if smokes { "Yes" } else { "No" });
    /// #     severity.push(match (smokes, i % 7) {
    /// #         (true, 0..=4) => 3.0,
    /// #         (true, _) => 2.0,
    /// #         (false, 0) => 2.0,
    /// #         (false, _) => 1.0,
    /// #     });
    /// # }
    /// # let data = DatasetBuilder::new()
    /// #     .dimension("Location", loc)
    /// #     .dimension("Smoking", smoking)
    /// #     .measure("LungCancer", severity)
    /// #     .build()
    /// #     .unwrap();
    /// let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
    /// let query = WhyQuery::new("LungCancer", Aggregate::Avg,
    ///                           Subspace::of("Location", "A"),
    ///                           Subspace::of("Location", "B")).unwrap();
    /// let response = engine
    ///     .execute(&ExplainRequest::builder(query).top_k(1).include_provenance(true).build())
    ///     .unwrap();
    /// assert!(response.len() <= 1);
    /// assert!(response.explanations.iter().all(|s| s.rank == 1));
    /// assert!(response.provenance.is_some());
    /// ```
    pub fn execute(&self, request: &ExplainRequest) -> Result<ExplainResponse> {
        self.execute_with_cache(request, Arc::new(SelectionCache::new()))
    }

    /// Executes a batch of requests, sharing one [`SelectionCache`] across
    /// all of them (and, when [`XInsightOptions::parallel`] is set, fanning
    /// the requests out over the thread pool).
    ///
    /// Requests in a batch typically hit the same sibling subspaces and
    /// candidate attributes, so the cross-request cache turns most of the
    /// later requests' `Δ(·)` terms into replays.  Responses are in input
    /// order and identical to calling [`XInsight::execute`] per request.
    pub fn execute_batch(&self, requests: &[ExplainRequest]) -> Result<Vec<ExplainResponse>> {
        self.execute_batch_with_cache(requests, Arc::new(SelectionCache::new()))
    }

    /// [`XInsight::execute_batch`] with a caller-supplied
    /// [`SelectionCache`].
    ///
    /// The cache only replays `Δ(·)` building blocks, it never changes
    /// answers.  Callers that own the cache can read
    /// [`SelectionCache::stats`] afterwards (the serving layer accumulates
    /// them into its `/stats` endpoint) or share one cache across several
    /// related batches.  The usual cache rules apply: one cache per dataset
    /// (enforced by a fingerprint check), and entries are never evicted, so
    /// scope a cache to a bounded working set rather than holding one
    /// forever.
    pub fn execute_batch_with_cache(
        &self,
        requests: &[ExplainRequest],
        cache: Arc<SelectionCache>,
    ) -> Result<Vec<ExplainResponse>> {
        let results: Vec<Result<ExplainResponse>> = if self.options.parallel {
            requests
                .par_iter()
                .map(|request| self.execute_with_cache(request, Arc::clone(&cache)))
                .collect()
        } else {
            requests
                .iter()
                .map(|request| self.execute_with_cache(request, Arc::clone(&cache)))
                .collect()
        };
        results.into_iter().collect()
    }

    /// Answers a Why Query with a ranked list of explanations.
    #[deprecated(note = "use `XInsight::execute` with an `ExplainRequest`")]
    pub fn explain(&self, query: &WhyQuery) -> Result<Vec<Explanation>> {
        Ok(self
            .execute(&ExplainRequest::new(query.clone()))?
            .into_explanations())
    }

    /// Answers a batch of Why Queries with one shared [`SelectionCache`].
    #[deprecated(note = "use `XInsight::execute_batch` with `ExplainRequest`s")]
    pub fn explain_many(&self, queries: &[WhyQuery]) -> Result<Vec<Vec<Explanation>>> {
        let requests: Vec<ExplainRequest> = queries
            .iter()
            .map(|query| ExplainRequest::new(query.clone()))
            .collect();
        Ok(self
            .execute_batch(&requests)?
            .into_iter()
            .map(ExplainResponse::into_explanations)
            .collect())
    }

    /// Answers a batch of Why Queries through a caller-supplied
    /// [`SelectionCache`].
    #[deprecated(note = "use `XInsight::execute_batch_with_cache` with `ExplainRequest`s")]
    pub fn explain_many_with_cache(
        &self,
        queries: &[WhyQuery],
        cache: Arc<SelectionCache>,
    ) -> Result<Vec<Vec<Explanation>>> {
        let requests: Vec<ExplainRequest> = queries
            .iter()
            .map(|query| ExplainRequest::new(query.clone()))
            .collect();
        Ok(self
            .execute_batch_with_cache(&requests, cache)?
            .into_iter()
            .map(ExplainResponse::into_explanations)
            .collect())
    }

    /// The execution core behind every online entry point, parameterized by
    /// the selection cache the `Δ(·)` terms are answered through.
    pub fn execute_with_cache(
        &self,
        request: &ExplainRequest,
        cache: Arc<SelectionCache>,
    ) -> Result<ExplainResponse> {
        let started = Instant::now();
        let deadline = request.deadline().map(|budget| started + budget);
        let query = request.query().oriented_store(&self.augmented)?;
        let original_delta = query.delta_store(&self.augmented)?;
        let translation = self.translation(&query);
        // `XInsightOptions::parallel` is the master switch for the whole
        // online phase (overridable per request); `xplainer.parallel` can
        // *additionally* opt the inner probe loops out.  AND-ing the two
        // means neither flag silently overrides an explicit `false` in the
        // other.
        let parallel = request.parallel().unwrap_or(self.options.parallel);
        let xplainer = XPlainer::new(XPlainerOptions {
            parallel: parallel && self.options.xplainer.parallel,
            ..self.options.xplainer.clone()
        });

        let skip: HashSet<&str> = {
            let mut s: HashSet<&str> = HashSet::new();
            s.insert(query.measure());
            s.insert(query.foreground());
            s.extend(query.background());
            s
        };
        // The type allowlist prunes candidates *before* searching, so a
        // causal-only request never pays for non-causal searches.
        let type_allowed =
            |semantics: &XdaSemantics| match (request.types(), semantics.explanation_type()) {
                (None, _) => true,
                (Some(allow), Some(t)) => allow.contains(&t),
                (Some(_), None) => false,
            };

        // Candidate attributes in translation (= variable-name) order, so the
        // search schedule and output ranking are deterministic.
        let targets: Vec<(XdaSemantics, String, bool)> = translation
            .iter()
            .filter(|(variable, semantics)| {
                !skip.contains(variable)
                    && semantics.has_explainability()
                    && type_allowed(semantics)
            })
            .filter_map(|(variable, semantics)| {
                // Measures are explained through their binned companion
                // column.
                let attribute = if self.binned_measures.iter().any(|m| m == variable) {
                    format!("{variable}_bin")
                } else {
                    variable.to_owned()
                };
                let is_dimension = self
                    .augmented
                    .schema()
                    .attribute_by_name(&attribute)
                    .map(|a| a.kind == AttributeKind::Dimension)
                    .unwrap_or(false);
                is_dimension.then(|| {
                    let homogeneous = self.is_homogeneous(&query, variable);
                    (semantics, attribute, homogeneous)
                })
            })
            .collect();

        let search = |target: &(XdaSemantics, String, bool)| -> Result<SearchOutcome> {
            // Soft deadline: a search that has not *started* in budget is
            // skipped; one that has started runs to completion, so every
            // returned explanation is exact.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Ok(SearchOutcome::Skipped);
            }
            let (_, attribute, homogeneous) = target;
            xplainer
                .explain_attribute_cached(
                    &self.augmented,
                    &query,
                    attribute,
                    self.options.strategy,
                    *homogeneous,
                    Arc::clone(&cache),
                )
                .map(SearchOutcome::Done)
        };
        let outcomes: Vec<_> = if parallel {
            targets.par_iter().map(search).collect()
        } else {
            targets.iter().map(search).collect()
        };

        let mut explanations = Vec::new();
        let mut deadline_hit = false;
        let mut attributes_searched = 0usize;
        let mut attributes_skipped = 0usize;
        let mut delta_evaluations = 0usize;
        for (target, outcome) in targets.iter().zip(outcomes) {
            let (semantics, _, _) = target;
            let candidate = match outcome? {
                SearchOutcome::Done(candidate) => {
                    attributes_searched += 1;
                    candidate
                }
                SearchOutcome::Skipped => {
                    attributes_skipped += 1;
                    deadline_hit = true;
                    continue;
                }
            };
            if let Some(c) = candidate {
                delta_evaluations += c.n_delta_evaluations;
                let explanation_type = semantics
                    .explanation_type()
                    .unwrap_or(ExplanationType::NonCausal);
                let causal_role = match semantics {
                    XdaSemantics::CausalExplanation(role) => Some(*role),
                    _ => None,
                };
                explanations.push(Explanation {
                    explanation_type,
                    causal_role,
                    predicate: c.predicate,
                    responsibility: c.responsibility,
                    contingency: c.contingency,
                    original_delta,
                    remaining_delta: c.remaining_delta,
                });
            }
        }
        explanations.sort_by(|a, b| {
            let type_order = |t: ExplanationType| match t {
                ExplanationType::Causal => 0,
                ExplanationType::NonCausal => 1,
            };
            type_order(a.explanation_type)
                .cmp(&type_order(b.explanation_type))
                .then(
                    b.responsibility
                        .partial_cmp(&a.responsibility)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });

        // Post-ranking trims: first the score floor, then the count cap —
        // both only ever remove from the tail of the (already sorted) list
        // within each type class, and both set the `truncated` marker.
        let found = explanations.len();
        if let Some(min_score) = request.min_score() {
            explanations.retain(|e| e.responsibility >= min_score);
        }
        if let Some(top_k) = request.top_k() {
            explanations.truncate(top_k);
        }
        let truncated = explanations.len() < found;

        let explanations: Vec<ScoredExplanation> = explanations
            .into_iter()
            .enumerate()
            .map(|(i, explanation)| ScoredExplanation {
                rank: i + 1,
                score: explanation.responsibility,
                explanation,
            })
            .collect();
        let provenance = request.include_provenance().then(|| Provenance {
            strategy_evaluations: vec![(
                strategy_name(self.options.strategy, query.aggregate()).to_owned(),
                delta_evaluations,
            )],
            attributes_searched,
            attributes_skipped,
            selection_cache: cache.stats(),
            ci_cache_fit_time: self.learner_result.ci_cache_stats,
        });
        Ok(ExplainResponse {
            explanations,
            truncated,
            deadline_hit,
            elapsed: started.elapsed(),
            provenance,
        })
    }

    /// Homogeneity check (Def. 3.7): the sibling subspaces are homogeneous on
    /// `x` when `x ⫫_G F | B` in the learned graph.
    fn is_homogeneous(&self, query: &WhyQuery, x: &str) -> bool {
        let graph = &self.learner_result.graph;
        let (Some(xi), Some(fi)) = (graph.id(x), graph.id(query.foreground())) else {
            return false;
        };
        let cond: Vec<_> = query
            .background()
            .iter()
            .filter_map(|b| graph.id(b))
            .collect();
        separation::m_separated(graph, xi, fi, &cond)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, Subspace};

    /// Deterministic pseudo-random stream.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / (1u64 << 53) as f64
        }
    }

    /// A lung-cancer-style dataset following Fig. 1: Location and Stress cause
    /// Smoking, Smoking causes LungCancer severity, severity causes Surgery.
    fn lung_cancer_data(n: usize) -> Dataset {
        let mut rng = lcg(2024);
        let mut location = Vec::with_capacity(n);
        let mut stress = Vec::with_capacity(n);
        let mut smoking = Vec::with_capacity(n);
        let mut surgery = Vec::with_capacity(n);
        let mut severity = Vec::with_capacity(n);
        for _ in 0..n {
            let loc_a = rng() < 0.5;
            location.push(if loc_a { "A" } else { "B" });
            let high_stress = rng() < 0.5;
            stress.push(if high_stress { "High" } else { "Low" });
            let p_smoke = match (loc_a, high_stress) {
                (true, true) => 0.9,
                (true, false) => 0.7,
                (false, true) => 0.4,
                (false, false) => 0.1,
            };
            let smokes = rng() < p_smoke;
            smoking.push(if smokes { "Yes" } else { "No" });
            let sev = if smokes {
                2.0 + (rng() < 0.8) as u8 as f64
            } else {
                1.0 + (rng() < 0.2) as u8 as f64
            };
            severity.push(sev);
            surgery.push(if sev > 2.0 && rng() < 0.8 {
                "Yes"
            } else {
                "No"
            });
        }
        xinsight_data::DatasetBuilder::new()
            .dimension("Location", location)
            .dimension("Stress", stress)
            .dimension("Smoking", smoking)
            .dimension("Surgery", surgery)
            .measure("LungCancer", severity)
            .build()
            .unwrap()
    }

    fn why_query() -> WhyQuery {
        WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "A"),
            Subspace::of("Location", "B"),
        )
        .unwrap()
    }

    fn explain(engine: &XInsight, query: &WhyQuery) -> Vec<Explanation> {
        engine
            .execute(&ExplainRequest::new(query.clone()))
            .unwrap()
            .into_explanations()
    }

    #[test]
    fn end_to_end_smoking_is_a_top_causal_explanation() {
        let data = lung_cancer_data(3000);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let explanations = explain(&engine, &why_query());
        assert!(!explanations.is_empty());
        let causal: Vec<_> = explanations
            .iter()
            .filter(|e| e.explanation_type == ExplanationType::Causal)
            .collect();
        assert!(
            causal.iter().any(|e| e.attribute() == "Smoking"),
            "Smoking must appear among causal explanations; got: {:?}",
            explanations
                .iter()
                .map(|e| e.attribute())
                .collect::<Vec<_>>()
        );
        let smoking = causal.iter().find(|e| e.attribute() == "Smoking").unwrap();
        // Conditioning on either smoking status equalises the two locations,
        // so the optimal predicate is a single filter (Yes or No) with high
        // responsibility; which of the two wins depends on sampling noise.
        assert_eq!(smoking.predicate.len(), 1);
        assert!(smoking.responsibility > 0.3);
        assert!(smoking.reduction_ratio().unwrap() > 0.5);
        // Causal explanations are ranked before non-causal ones.
        let first_non_causal = explanations
            .iter()
            .position(|e| e.explanation_type == ExplanationType::NonCausal);
        let last_causal = explanations
            .iter()
            .rposition(|e| e.explanation_type == ExplanationType::Causal);
        if let (Some(nc), Some(c)) = (first_non_causal, last_causal) {
            assert!(c < nc);
        }
    }

    #[test]
    fn surgery_is_not_reported_as_causal() {
        let data = lung_cancer_data(3000);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let explanations = explain(&engine, &why_query());
        for e in &explanations {
            if e.attribute() == "Surgery" {
                assert_eq!(e.explanation_type, ExplanationType::NonCausal);
            }
        }
    }

    #[test]
    fn translation_accessor_reports_semantics() {
        let data = lung_cancer_data(2000);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let t = engine.translation(&why_query());
        assert!(t.explainable_variables().contains(&"Smoking"));
        assert!(engine.graph().n_nodes() >= 5);
        assert!(engine.learner_result().n_ci_tests > 0);
    }

    #[test]
    fn fitted_model_round_trip_serves_identical_explanations() {
        let data = lung_cancer_data(1500);
        let options = XInsightOptions::default();
        let engine = XInsight::fit(&data, &options).unwrap();
        let direct = explain(&engine, &why_query());

        let json = engine.fitted_model().to_json();
        let model = crate::persist::FittedModel::from_json(&json).unwrap();
        assert_eq!(model, engine.fitted_model());
        let restored = XInsight::from_fitted(&data, model, &options).unwrap();
        assert_eq!(restored.graph(), engine.graph());
        assert_eq!(restored.data(), engine.data());
        assert_eq!(explain(&restored, &why_query()), direct);
    }

    #[test]
    fn deprecated_shims_match_execute_exactly() {
        let data = lung_cancer_data(1200);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let query = why_query();
        let via_execute = explain(&engine, &query);
        #[allow(deprecated)]
        {
            assert_eq!(engine.explain(&query).unwrap(), via_execute);
            assert_eq!(
                engine.explain_many(std::slice::from_ref(&query)).unwrap(),
                vec![via_execute.clone()]
            );
            assert_eq!(
                engine
                    .explain_many_with_cache(
                        std::slice::from_ref(&query),
                        Arc::new(SelectionCache::new())
                    )
                    .unwrap(),
                vec![via_execute]
            );
        }
    }

    #[test]
    fn per_request_controls_shape_the_response() {
        let data = lung_cancer_data(3000);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let query = why_query();
        let full = engine.execute(&ExplainRequest::new(query.clone())).unwrap();
        assert!(!full.truncated);
        assert!(!full.deadline_hit);
        assert!(full.provenance.is_none());
        assert!(full.len() >= 2, "need several explanations to trim");
        // Ranks are 1-based and contiguous; scores mirror responsibility.
        for (i, scored) in full.explanations.iter().enumerate() {
            assert_eq!(scored.rank, i + 1);
            assert_eq!(scored.score, scored.explanation.responsibility);
        }

        // top_k keeps the best-ranked prefix and flags truncation.
        let top1 = engine
            .execute(&ExplainRequest::builder(query.clone()).top_k(1).build())
            .unwrap();
        assert_eq!(top1.len(), 1);
        assert!(top1.truncated);
        assert_eq!(top1.explanations[0], full.explanations[0]);

        // The type allowlist drops the other class entirely (and is not
        // counted as truncation — nothing the request asked for was cut).
        let causal_only = engine
            .execute(
                &ExplainRequest::builder(query.clone())
                    .allow_types([ExplanationType::Causal])
                    .build(),
            )
            .unwrap();
        assert!(!causal_only.is_empty());
        assert!(causal_only
            .explanations
            .iter()
            .all(|s| s.explanation.explanation_type == ExplanationType::Causal));
        assert!(!causal_only.truncated);

        // A min_score above every responsibility empties the response.
        let none = engine
            .execute(
                &ExplainRequest::builder(query.clone())
                    .min_score(2.0)
                    .build(),
            )
            .unwrap();
        assert!(none.is_empty());
        assert!(none.truncated);

        // Per-request serial override returns identical explanations.
        let serial = engine
            .execute(
                &ExplainRequest::builder(query.clone())
                    .parallel(false)
                    .build(),
            )
            .unwrap();
        assert_eq!(serial.explanations, full.explanations);

        // Provenance reports the strategy, its spend and the cache state.
        let with_provenance = engine
            .execute(
                &ExplainRequest::builder(query.clone())
                    .include_provenance(true)
                    .build(),
            )
            .unwrap();
        let provenance = with_provenance.provenance.unwrap();
        assert_eq!(provenance.strategy_evaluations.len(), 1);
        assert_eq!(provenance.strategy_evaluations[0].0, "avg-optimized");
        assert!(provenance.strategy_evaluations[0].1 > 0);
        assert!(provenance.attributes_searched > 0);
        assert_eq!(provenance.attributes_skipped, 0);
        assert!(provenance.selection_cache.lookups() > 0);
        assert!(provenance.ci_cache_fit_time.lookups() > 0);
    }

    #[test]
    fn zero_deadline_yields_a_flagged_partial_response() {
        let data = lung_cancer_data(1200);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let response = engine
            .execute(
                &ExplainRequest::builder(why_query())
                    .deadline(std::time::Duration::ZERO)
                    .include_provenance(true)
                    .build(),
            )
            .unwrap();
        // Nothing can start inside a zero budget: every candidate attribute
        // is skipped and the response says so.
        assert!(response.deadline_hit);
        assert!(response.is_empty());
        let provenance = response.provenance.unwrap();
        assert_eq!(provenance.attributes_searched, 0);
        assert!(provenance.attributes_skipped > 0);
    }

    #[test]
    fn execute_batch_matches_per_request_execute() {
        let data = lung_cancer_data(1200);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let requests = [
            ExplainRequest::new(why_query()),
            ExplainRequest::builder(why_query()).top_k(1).build(),
        ];
        let batched = engine.execute_batch(&requests).unwrap();
        assert_eq!(batched.len(), 2);
        for (request, response) in requests.iter().zip(&batched) {
            assert_eq!(
                response.explanations,
                engine.execute(request).unwrap().explanations
            );
        }
    }

    /// Rows `lo..hi` of a dataset as a standalone dataset.
    fn rows_range(data: &Dataset, lo: usize, hi: usize) -> Dataset {
        let mask =
            xinsight_data::RowMask::from_bools((0..data.n_rows()).map(|i| (lo..hi).contains(&i)));
        data.filter_rows(&mask).unwrap()
    }

    #[test]
    fn ingest_matches_restore_over_concatenated_data() {
        let data = lung_cancer_data(1500);
        let options = XInsightOptions::default();
        let engine = XInsight::fit(&data, &options).unwrap();
        let model = engine.fitted_model();
        let full = XInsight::from_fitted(&data, model.clone(), &options).unwrap();
        // Restore over a prefix, then stream the rest in as two ingest
        // batches: same rows, same model, three segments instead of one.
        let chunked = XInsight::from_fitted(&rows_range(&data, 0, 900), model, &options)
            .unwrap()
            .with_ingested(&rows_range(&data, 900, 1300))
            .unwrap()
            .with_ingested(&rows_range(&data, 1300, 1500))
            .unwrap();
        assert_eq!(chunked.data().n_segments(), 3);
        assert_eq!(chunked.data().epoch(), 2);
        assert_eq!(chunked.data().n_rows(), full.data().n_rows());
        // The segmented engine answers byte-identically to the monolithic one.
        assert_eq!(
            explain(&chunked, &why_query()),
            explain(&full, &why_query())
        );
    }

    #[test]
    fn compaction_preserves_answers_byte_for_byte() {
        let data = lung_cancer_data(1500);
        let options = XInsightOptions::default();
        let engine = XInsight::fit(&data, &options).unwrap();
        let model = engine.fitted_model();
        let chunked = XInsight::from_fitted(&rows_range(&data, 0, 900), model, &options)
            .unwrap()
            .with_ingested(&rows_range(&data, 900, 1300))
            .unwrap()
            .with_ingested(&rows_range(&data, 1300, 1500))
            .unwrap();
        let lineage = chunked.data().lineage();
        let compacted = chunked.with_compacted().unwrap();
        // One merged segment, same lineage (per-lineage caches stay valid),
        // next epoch, same rows.
        assert_eq!(compacted.data().n_segments(), 1);
        assert_eq!(compacted.data().lineage(), lineage);
        assert_eq!(compacted.data().epoch(), chunked.data().epoch() + 1);
        assert_eq!(compacted.data().n_rows(), chunked.data().n_rows());
        // Answers are byte-identical across the rewrite.
        assert_eq!(
            explain(&compacted, &why_query()),
            explain(&chunked, &why_query())
        );
        // Already-compact engines come back with their snapshot untouched.
        let again = compacted.with_compacted().unwrap();
        assert_eq!(again.data().epoch(), compacted.data().epoch());
    }

    #[test]
    fn ingest_validates_schema_and_non_empty_batches() {
        let data = lung_cancer_data(600);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        assert_eq!(engine.raw_schema().names(), data.schema().names());
        // A batch missing columns is rejected.
        let narrow = data.select_attributes(&["Location", "LungCancer"]).unwrap();
        assert!(engine.with_ingested(&narrow).is_err());
        // A batch with zero (complete) rows is rejected.
        let empty = rows_range(&data, 0, 0);
        assert!(engine.with_ingested(&empty).is_err());
    }

    #[test]
    fn serial_and_parallel_fits_learn_the_same_model() {
        let data = lung_cancer_data(1200);
        let parallel = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        let serial = XInsight::fit(
            &data,
            &XInsightOptions {
                parallel: false,
                ..XInsightOptions::default()
            },
        )
        .unwrap();
        assert_eq!(parallel.graph(), serial.graph());
        assert_eq!(
            parallel.learner_result().n_ci_tests,
            serial.learner_result().n_ci_tests
        );
        assert_eq!(parallel.fitted_model(), serial.fitted_model());
    }

    #[test]
    fn graph_contains_measure_node_via_discretization() {
        let data = lung_cancer_data(1500);
        let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
        assert!(engine.graph().id("LungCancer").is_some());
        // The augmented dataset exposes the binned companion column.
        assert!(engine.data().categories("LungCancer_bin").is_ok());
    }
}
