//! Minimal, dependency-free JSON value, writer and parser.
//!
//! The workspace builds fully offline (no serde), so every serialized
//! artifact — the persisted [`FittedModel`](crate::FittedModel), the Why
//! Query wire format and the serving layer's request/response bodies —
//! shares this one hand-rolled codepath.  It implements a strict subset of
//! JSON: objects, arrays, strings, `f64` numbers, booleans and `null`,
//! written deterministically (object fields keep insertion order, numbers
//! use Rust's shortest round-trip `f64` formatting) so that identical
//! values serialize to identical bytes.
//!
//! Parsing is defensive: container nesting is bounded
//! ([`MAX_PARSE_DEPTH`]), `\u` escapes validate surrogate pairing, and
//! every failure is a structured [`DataError::Persist`] rather than a
//! panic, so hostile or truncated input received over the wire degrades
//! into an error response.
//!
//! ```
//! use xinsight_core::json::Json;
//!
//! let doc = Json::Obj(vec![
//!     ("name".to_owned(), Json::Str("flight".to_owned())),
//!     ("rows".to_owned(), Json::Num(3000.0)),
//! ]);
//! let text = doc.to_string();
//! assert_eq!(text, "{\"name\":\"flight\",\"rows\":3000.0}");
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use xinsight_data::{DataError, Result};

/// A JSON value (the subset the workspace's formats use).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; all JSON numbers are handled as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered field list (serialization preserves the
    /// order; duplicate keys are not rejected, [`Json::get`] returns the
    /// first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Appends the canonical serialization of this value to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // `{:?}` on f64 is Rust's shortest round-trip representation.
                out.push_str(&format!("{n:?}"));
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(DataError::Persist(format!(
                "trailing garbage at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }

    /// Looks up a required object field.
    pub fn get(&self, key: &str) -> Result<&Json> {
        self.opt(key).ok_or_else(|| match self {
            Json::Obj(_) => DataError::Persist(format!("missing field `{key}`")),
            _ => DataError::Persist(format!("expected object while reading `{key}`")),
        })
    }

    /// Looks up an optional object field (`None` when absent or when `self`
    /// is not an object).
    pub fn opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(DataError::Persist("expected array".into())),
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(DataError::Persist("expected string".into())),
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(DataError::Persist("expected boolean".into())),
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(DataError::Persist("expected number".into())),
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Result<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return Err(DataError::Persist(format!(
                "expected non-negative integer, got {n}"
            )));
        }
        Ok(n as u64)
    }

    /// The value as an array of strings.
    pub fn as_string_vec(&self) -> Result<Vec<String>> {
        self.as_arr()?
            .iter()
            .map(|v| Ok(v.as_str()?.to_owned()))
            .collect()
    }
}

impl std::fmt::Display for Json {
    /// The canonical serialization ([`Json::write`] into a fresh string).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deepest container nesting the parser accepts — far beyond anything the
/// workspace's formats produce, but bounded so corrupted or hostile input
/// yields a structured error instead of a stack overflow.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| DataError::Persist("unexpected end of input".into()))
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(DataError::Persist(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(DataError::Persist(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek()? {
            b'{' | b'[' => {
                self.depth += 1;
                if self.depth > MAX_PARSE_DEPTH {
                    return Err(DataError::Persist(format!(
                        "nesting deeper than {MAX_PARSE_DEPTH} levels at byte {}",
                        self.pos
                    )));
                }
                let container = if self.bytes[self.pos] == b'{' {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                container
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => {
                    return Err(DataError::Persist(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(DataError::Persist(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| DataError::Persist("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| DataError::Persist("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // UTF-16 surrogate pairs: a high surrogate must
                            // be followed by `\uXXXX` with a low surrogate.
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(DataError::Persist(
                                        "high surrogate without a following \\u escape".into(),
                                    ));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(DataError::Persist(
                                        "high surrogate not followed by a low surrogate".into(),
                                    ));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(char::from_u32(code).ok_or_else(|| {
                                DataError::Persist("invalid \\u code point".into())
                            })?);
                        }
                        other => {
                            return Err(DataError::Persist(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| DataError::Persist("truncated utf-8".into()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| DataError::Persist("invalid utf-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    /// Reads four hex digits of a `\u` escape (cursor already past the `u`).
    fn hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| DataError::Persist("truncated \\u escape".into()))?;
        let hex = std::str::from_utf8(hex)
            .map_err(|_| DataError::Persist("invalid \\u escape".into()))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| DataError::Persist("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DataError::Persist("invalid number".into()))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| DataError::Persist(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_kind() {
        let doc = Json::Obj(vec![
            ("n".to_owned(), Json::Null),
            ("b".to_owned(), Json::Bool(true)),
            ("x".to_owned(), Json::Num(1.5)),
            ("s".to_owned(), Json::Str("a \"b\"\n\t".to_owned())),
            (
                "arr".to_owned(),
                Json::Arr(vec![Json::Num(1.0), Json::Bool(false), Json::Null]),
            ),
            ("obj".to_owned(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Canonical: re-serializing the parse reproduces the bytes.
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn optional_and_required_field_lookups() {
        let doc = Json::parse("{\"a\": 1, \"b\": \"x\", \"flag\": false}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64().unwrap(), 1);
        assert_eq!(doc.opt("b").unwrap().as_str().unwrap(), "x");
        assert!(!doc.get("flag").unwrap().as_bool().unwrap());
        assert!(doc.opt("missing").is_none());
        assert!(doc.get("missing").is_err());
        assert!(Json::Num(1.0).opt("a").is_none());
        assert!(Json::Num(1.0).get("a").is_err());
    }

    #[test]
    fn malformed_documents_are_structured_errors() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "nope",
            "{\"a\": 1} trailing",
            "{\"a\"}",
            "\"\\q\"",
            "1e",
        ] {
            assert!(
                matches!(Json::parse(bad), Err(DataError::Persist(_))),
                "`{bad}` should fail with a Persist error"
            );
        }
    }

    #[test]
    fn deep_nesting_is_a_structured_error_not_a_stack_overflow() {
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(matches!(err, DataError::Persist(_)));
        assert!(err.to_string().contains("nesting"), "got {err}");
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_fail() {
        let ok = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(ok, Json::Str("😀".to_owned()));
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(Json::parse("\"\\udc00\"").is_err());
    }

    #[test]
    fn fractional_and_negative_u64_are_rejected() {
        assert!(Json::Num(1.5).as_u64().is_err());
        assert!(Json::Num(-1.0).as_u64().is_err());
        assert_eq!(Json::Num(7.0).as_u64().unwrap(), 7);
    }
}
