//! XLearner (Sec. 3.1, Alg. 1): causal-graph learning under causal
//! insufficiency *and* FD-induced faithfulness violations.
//!
//! The three stages of Alg. 1:
//!
//! 1. **FD preclusion / harmonious skeleton** — dependents of functional
//!    dependencies are removed from the variable set handed to FCI; each such
//!    node is connected in a side skeleton `S2` to its lowest-cardinality FD
//!    determinant (Thm. 3.1 guarantees the concatenation stays harmonious).
//! 2. **Standard PAG learning** — FCI-SL + FCI-Orient over the remaining
//!    variables, which satisfy faithfulness.
//! 3. **FD orientation** — FD edges present in `S2` are oriented from
//!    determinant to dependent (the discrete-ANM argument of Sec. 3.1.2), and
//!    the two graphs are concatenated into the FD-augmented PAG.

// HashMap here never leaks iteration order into output: interior grouping map; output re-sorted by score (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::collections::{HashMap, HashSet};

use xinsight_data::{detect_fds, Dataset, FdDetectionOptions, FdGraph, Result};
use xinsight_discovery::{fci_orient, fci_skeleton, FciOptions, SepsetMap};
use xinsight_graph::MixedGraph;
use xinsight_stats::CiTest;

/// Options controlling an XLearner run.
#[derive(Debug, Clone)]
pub struct XLearnerOptions {
    /// Options forwarded to the FCI stage.
    pub fci: FciOptions,
    /// Options for FD detection (ignored when an FD graph is supplied
    /// explicitly).
    pub fd_detection: FdDetectionOptions,
    /// Whether stage 3 orients FD edges as determinant → dependent
    /// (the ANM hypothesis).  Disabling this is the ablation discussed in
    /// DESIGN.md; the edges then stay `o-o`.
    pub orient_fd_edges: bool,
}

impl Default for XLearnerOptions {
    fn default() -> Self {
        XLearnerOptions {
            fci: FciOptions::default(),
            fd_detection: FdDetectionOptions::default(),
            orient_fd_edges: true,
        }
    }
}

/// Result of an XLearner run.
#[derive(Debug, Clone)]
pub struct XLearnerResult {
    /// The FD-augmented PAG over all (non-redundant) variables.
    pub graph: MixedGraph,
    /// The FD-induced graph used in stage 1.
    pub fd_graph: FdGraph,
    /// Variables on which the FCI stage actually ran (FD dependents excluded).
    pub fci_variables: Vec<String>,
    /// Variables dropped because they are mutually determined by a kept one.
    pub dropped_redundant: Vec<String>,
    /// Separating sets recorded by the FCI stage.
    pub sepsets: SepsetMap,
    /// Number of CI tests issued by the FCI stage.
    pub n_ci_tests: usize,
    /// Hit/miss counters of the CI-test cache the fit ran through, captured
    /// after the learn completes.  Zero when the engine was reconstructed
    /// from a persisted model (no CI tests are re-issued on that path) or
    /// when the caller supplied an uncached test.
    pub ci_cache_stats: xinsight_stats::CacheStats,
}

/// The XLearner module.
#[derive(Debug, Clone, Default)]
pub struct XLearner {
    options: XLearnerOptions,
}

impl XLearner {
    /// Creates an XLearner with the given options.
    pub fn new(options: XLearnerOptions) -> Self {
        XLearner { options }
    }

    /// The options this learner was built with.
    pub fn options(&self) -> &XLearnerOptions {
        &self.options
    }

    /// Learns the FD-augmented PAG over `variables` (which must all be
    /// dimensions of `data`), detecting FDs from the data itself.
    pub fn learn(
        &self,
        data: &Dataset,
        variables: &[&str],
        test: &dyn CiTest,
    ) -> Result<XLearnerResult> {
        let projected = data.select_attributes(variables)?;
        let (_, fd_graph) = detect_fds(&projected, &self.options.fd_detection)?;
        self.learn_with_fd_graph(data, variables, test, &fd_graph)
    }

    /// Learns the FD-augmented PAG using an externally supplied FD graph
    /// (used by the synthetic experiments, where FDs are known by
    /// construction).
    pub fn learn_with_fd_graph(
        &self,
        data: &Dataset,
        variables: &[&str],
        test: &dyn CiTest,
        fd_graph: &FdGraph,
    ) -> Result<XLearnerResult> {
        // Redundant attributes (mutually-determining groups) are dropped.
        let redundant: HashSet<&str> = fd_graph
            .redundant_attributes()
            .iter()
            .map(String::as_str)
            .collect();
        let kept: Vec<&str> = variables
            .iter()
            .copied()
            .filter(|v| !redundant.contains(v))
            .collect();

        // ---- Stage 1: harmonious side skeleton S2 over FD dependents. ----
        let in_scope: HashSet<&str> = kept.iter().copied().collect();
        // Local mutable parent map restricted to in-scope nodes.
        let mut parents: HashMap<&str, Vec<&str>> = HashMap::new();
        for node in &kept {
            let ps: Vec<&str> = fd_graph
                .parents(node)
                .into_iter()
                .filter(|p| in_scope.contains(p))
                .collect();
            parents.insert(node, ps);
        }
        let depths = fd_graph.depths();
        let mut removed: Vec<&str> = Vec::new();
        // Edges of S2 as (dependent, determinant).
        let mut s2_edges: Vec<(String, String)> = Vec::new();
        loop {
            // Deepest node that still has an in-scope, non-removed parent.
            let candidate = kept
                .iter()
                .copied()
                .filter(|v| !removed.contains(v))
                .filter(|v| parents[v].iter().any(|p| !removed.contains(p)))
                .max_by_key(|v| depths.get(*v).copied().unwrap_or(0));
            let x = match candidate {
                Some(x) => x,
                None => break,
            };
            // Lowest-cardinality available parent (line 6 of Alg. 1).
            let y = parents[x]
                .iter()
                .copied()
                .filter(|p| !removed.contains(p))
                .min_by_key(|p| data.cardinality(p).unwrap_or(usize::MAX))
                .expect("candidate selection guarantees a parent");
            s2_edges.push((x.to_owned(), y.to_owned()));
            removed.push(x);
        }

        // ---- Stage 2: FCI over the remaining (faithfulness-compliant) vars. ----
        let fci_vars: Vec<&str> = kept
            .iter()
            .copied()
            .filter(|v| !removed.contains(v))
            .collect();
        let (g1, sepsets, n_ci_tests) = if fci_vars.len() >= 2 {
            let skeleton = fci_skeleton(data, &fci_vars, test, &self.options.fci)?;
            let pag = fci_orient(&skeleton.graph, &skeleton.sepsets);
            (pag, skeleton.sepsets, skeleton.n_ci_tests)
        } else {
            (
                MixedGraph::new(fci_vars.iter().map(|s| s.to_string())),
                SepsetMap::new(),
                0,
            )
        };

        // ---- Stage 3: orient S2 and concatenate. ----
        let mut graph = MixedGraph::new(kept.iter().map(|s| s.to_string()));
        graph.merge_by_name(&g1);
        for (dependent, determinant) in &s2_edges {
            let d = graph.expect_id(dependent);
            let t = graph.expect_id(determinant);
            graph.add_nondirected(t, d);
        }
        if self.options.orient_fd_edges {
            // For every FD X --FD--> Y whose endpoints are adjacent in S2,
            // orient X → Y (determinant causes dependent).
            for (dependent, determinant) in &s2_edges {
                if fd_graph.has_fd(determinant, dependent) {
                    let t = graph.expect_id(determinant);
                    let d = graph.expect_id(dependent);
                    graph.orient(t, d);
                }
            }
        }

        Ok(XLearnerResult {
            graph,
            fd_graph: fd_graph.clone(),
            fci_variables: fci_vars.iter().map(|s| s.to_string()).collect(),
            dropped_redundant: variables
                .iter()
                .filter(|v| redundant.contains(**v))
                .map(|s| s.to_string())
                .collect(),
            sepsets,
            n_ci_tests,
            ci_cache_stats: xinsight_stats::CacheStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::DatasetBuilder;
    use xinsight_stats::ChiSquareTest;

    /// Deterministic pseudo-random stream for building test data.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / (1u64 << 53) as f64
        }
    }

    /// A city/state/country dataset (Ex. 2.4) plus a weather variable caused
    /// by the state: City --FD--> State --FD--> Country, State -> Weather.
    fn city_weather(n: usize) -> Dataset {
        let mut rng = lcg(99);
        let cities = ["SEA", "SPO", "SFO", "LAX", "NYC", "BUF"];
        let state_of = ["WA", "WA", "CA", "CA", "NY", "NY"];
        let mut city = Vec::with_capacity(n);
        let mut state = Vec::with_capacity(n);
        let mut country = Vec::with_capacity(n);
        let mut weather = Vec::with_capacity(n);
        for _ in 0..n {
            let c = (rng() * cities.len() as f64) as usize % cities.len();
            city.push(cities[c]);
            state.push(state_of[c]);
            country.push("US");
            // Rain probability depends on the state.
            let p_rain = match state_of[c] {
                "WA" => 0.8,
                "CA" => 0.15,
                _ => 0.45,
            };
            weather.push(if rng() < p_rain { "Rain" } else { "Sun" });
        }
        DatasetBuilder::new()
            .dimension("City", city)
            .dimension("State", state)
            .dimension("Country", country)
            .dimension("Weather", weather)
            .build()
            .unwrap()
    }

    #[test]
    fn city_info_harmonious_skeleton_and_fd_orientation() {
        let data = city_weather(3000);
        let learner = XLearner::default();
        let test = ChiSquareTest::new(0.05);
        let vars = ["City", "State", "Country", "Weather"];
        let result = learner.learn(&data, &vars, &test).unwrap();

        // Country is constant here, so only City -> State is a usable FD; at
        // minimum the State node must be connected to City and the edge must
        // be oriented City -> State by the ANM stage.
        let g = &result.graph;
        let city = g.expect_id("City");
        let state = g.expect_id("State");
        assert!(g.adjacent(city, state), "FD edge City-State must be kept");
        assert!(
            g.is_parent(city, state),
            "FD edge must be oriented City -> State, got:\n{}",
            g.to_text()
        );
        // State (an FD dependent) must not have been part of the FCI variable set.
        assert!(!result.fci_variables.contains(&"State".to_string()));
        assert!(result.fci_variables.contains(&"Weather".to_string()));
    }

    #[test]
    fn fd_dependents_excluded_from_fci_but_present_in_graph() {
        let data = city_weather(2000);
        let learner = XLearner::default();
        let test = ChiSquareTest::new(0.05);
        let vars = ["City", "State", "Weather"];
        let result = learner.learn(&data, &vars, &test).unwrap();
        assert_eq!(result.graph.n_nodes(), 3);
        assert!(result.fci_variables.contains(&"City".to_string()));
        assert!(!result.fci_variables.contains(&"State".to_string()));
        assert!(result.n_ci_tests > 0);
    }

    #[test]
    fn ablation_disabling_fd_orientation_keeps_circles() {
        let data = city_weather(2000);
        let learner = XLearner::new(XLearnerOptions {
            orient_fd_edges: false,
            ..XLearnerOptions::default()
        });
        let test = ChiSquareTest::new(0.05);
        let result = learner
            .learn(&data, &["City", "State", "Weather"], &test)
            .unwrap();
        let g = &result.graph;
        let city = g.expect_id("City");
        let state = g.expect_id("State");
        assert!(g.adjacent(city, state));
        assert!(
            !g.is_parent(city, state),
            "without ANM the FD edge stays undetermined"
        );
    }

    #[test]
    fn explicit_fd_graph_is_respected() {
        let data = city_weather(1500);
        // Pretend only State --FD--> Country is known (ignore City FDs).
        let fd_graph = FdGraph::new(
            vec![
                "City".into(),
                "State".into(),
                "Country".into(),
                "Weather".into(),
            ],
            vec![xinsight_data::FunctionalDependency {
                determinant: "State".into(),
                dependent: "Country".into(),
            }],
        );
        let learner = XLearner::default();
        let test = ChiSquareTest::new(0.05);
        let result = learner
            .learn_with_fd_graph(
                &data,
                &["City", "State", "Country", "Weather"],
                &test,
                &fd_graph,
            )
            .unwrap();
        let g = &result.graph;
        assert!(g.is_parent(g.expect_id("State"), g.expect_id("Country")));
        // City stays in the FCI variable set because its FDs were not declared.
        assert!(result.fci_variables.contains(&"City".to_string()));
        assert!(!result.fci_variables.contains(&"Country".to_string()));
    }

    #[test]
    fn causal_edge_between_fci_variables_recovered() {
        // Smoking -> LungCancer with an FD bolt-on: Location --FD--> Region.
        let mut rng = lcg(7);
        let n = 4000;
        let mut location = Vec::with_capacity(n);
        let mut region = Vec::with_capacity(n);
        let mut smoking = Vec::with_capacity(n);
        let mut cancer = Vec::with_capacity(n);
        let locs = ["L1", "L2", "L3", "L4"];
        let regions = ["North", "North", "South", "South"];
        for _ in 0..n {
            let l = (rng() * 4.0) as usize % 4;
            location.push(locs[l]);
            region.push(regions[l]);
            let p_smoke = if l < 2 { 0.7 } else { 0.25 };
            let smokes = rng() < p_smoke;
            smoking.push(if smokes { "Yes" } else { "No" });
            let p_severe = if smokes { 0.8 } else { 0.2 };
            cancer.push(if rng() < p_severe { "Severe" } else { "Mild" });
        }
        let data = DatasetBuilder::new()
            .dimension("Location", location)
            .dimension("Region", region)
            .dimension("Smoking", smoking)
            .dimension("LungCancer", cancer)
            .build()
            .unwrap();
        let learner = XLearner::default();
        let test = ChiSquareTest::new(0.05);
        let result = learner
            .learn(
                &data,
                &["Location", "Region", "Smoking", "LungCancer"],
                &test,
            )
            .unwrap();
        let g = &result.graph;
        assert!(
            g.adjacent(g.expect_id("Smoking"), g.expect_id("LungCancer")),
            "causal edge must survive:\n{}",
            g.to_text()
        );
        assert!(g.is_parent(g.expect_id("Location"), g.expect_id("Region")));
    }

    #[test]
    fn single_variable_degenerates_gracefully() {
        let data = city_weather(100);
        let learner = XLearner::default();
        let test = ChiSquareTest::new(0.05);
        let result = learner.learn(&data, &["Weather"], &test).unwrap();
        assert_eq!(result.graph.n_nodes(), 1);
        assert_eq!(result.graph.n_edges(), 0);
        assert_eq!(result.n_ci_tests, 0);
    }
}
