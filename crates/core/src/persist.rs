//! Persistence of the fitted offline artifact.
//!
//! [`XInsight::fit`](crate::pipeline::XInsight::fit) runs the paper's whole
//! offline phase — preprocessing, FD detection, XLearner/FCI — which on
//! production data takes orders of magnitude longer than answering a query.
//! A serving process should therefore *load* a previously fitted model
//! instead of re-learning it.  [`FittedModel`] captures everything the
//! online phase needs (the FD-augmented PAG, the measure discretizers, the
//! FD graph and the discovery byproducts) in a small, versioned, dependency-
//! free JSON document, and
//! [`XInsight::from_fitted`](crate::pipeline::XInsight::from_fitted)
//! reconstitutes a fully functional engine from the artifact plus the raw
//! dataset.
//!
//! The format is hand-rolled (the workspace builds offline, so no serde):
//! a strict subset of JSON — objects, arrays, strings, `f64` numbers,
//! booleans and `null` — written deterministically so that identical models
//! serialize to identical bytes.

use std::collections::BTreeMap;
use std::path::Path;
use xinsight_data::{BinSpec, DataError, Discretizer, FdGraph, Result};
use xinsight_discovery::SepsetMap;
use xinsight_graph::{Mark, MixedGraph};

/// Version stamp written into every artifact; bump on breaking changes.
pub const FORMAT_VERSION: u64 = 1;

/// The serializable output of the offline phase.
///
/// Round-trips exactly: `FittedModel::from_json(&model.to_json())` equals
/// `model`, and an engine reconstructed through
/// [`XInsight::from_fitted`](crate::pipeline::XInsight::from_fitted) answers
/// queries identically to the engine that produced the model.
///
/// ```
/// # use xinsight_core::pipeline::{XInsight, XInsightOptions};
/// # use xinsight_data::DatasetBuilder;
/// # let data = DatasetBuilder::new()
/// #     .dimension("A", (0..60).map(|i| if i % 2 == 0 { "x" } else { "y" }))
/// #     .dimension("B", (0..60).map(|i| if i % 3 == 0 { "p" } else { "q" }))
/// #     .measure("M", (0..60).map(|i| i as f64))
/// #     .build()
/// #     .unwrap();
/// use xinsight_core::FittedModel;
///
/// let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
/// let json = engine.fitted_model().to_json();
/// let restored = FittedModel::from_json(&json).unwrap();
/// assert_eq!(restored, engine.fitted_model());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FittedModel {
    /// The FD-augmented PAG learned by XLearner.
    pub graph: MixedGraph,
    /// The FD-induced graph used in XLearner's stage 1.
    pub fd_graph: FdGraph,
    /// Variables the FCI stage actually ran on.
    pub fci_variables: Vec<String>,
    /// Variables dropped as mutually redundant.
    pub dropped_redundant: Vec<String>,
    /// Separating sets recorded by the skeleton search.
    pub sepsets: SepsetMap,
    /// Number of CI tests the fit issued (provenance metadata).
    pub n_ci_tests: usize,
    /// Discretizers for the measures that were binned during the fit, in
    /// application order.
    pub discretizers: Vec<Discretizer>,
}

impl FittedModel {
    /// Serializes the model to its canonical JSON text.
    pub fn to_json(&self) -> String {
        let graph_edges: Vec<Json> = self
            .graph
            .edges()
            .iter()
            .map(|e| {
                Json::Arr(vec![
                    Json::Num(e.a as f64),
                    Json::Num(e.b as f64),
                    Json::Str(mark_to_str(e.near_a).to_owned()),
                    Json::Str(mark_to_str(e.near_b).to_owned()),
                ])
            })
            .collect();
        let fd_edges: Vec<Json> = self
            .fd_graph
            .edges()
            .iter()
            .map(|&(a, b)| Json::Arr(vec![Json::Str(a.to_owned()), Json::Str(b.to_owned())]))
            .collect();
        // Deterministic sepset order: sort by the (already normalised) pair.
        let mut sepsets: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
        for (x, y, z) in self.sepsets.iter() {
            sepsets.insert((x.to_owned(), y.to_owned()), z.to_vec());
        }
        let sepsets: Vec<Json> = sepsets
            .into_iter()
            .map(|((x, y), z)| {
                Json::Arr(vec![
                    Json::Str(x),
                    Json::Str(y),
                    Json::Arr(z.into_iter().map(Json::Str).collect()),
                ])
            })
            .collect();
        let discretizers: Vec<Json> = self
            .discretizers
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("measure".to_owned(), Json::Str(d.measure().to_owned())),
                    (
                        "cuts".to_owned(),
                        Json::Arr(d.spec().cuts().iter().map(|&c| Json::Num(c)).collect()),
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            (
                "format_version".to_owned(),
                Json::Num(FORMAT_VERSION as f64),
            ),
            (
                "graph".to_owned(),
                Json::Obj(vec![
                    (
                        "nodes".to_owned(),
                        Json::Arr(
                            self.graph
                                .names()
                                .iter()
                                .map(|n| Json::Str(n.clone()))
                                .collect(),
                        ),
                    ),
                    ("edges".to_owned(), Json::Arr(graph_edges)),
                ]),
            ),
            (
                "fd_graph".to_owned(),
                Json::Obj(vec![
                    (
                        "nodes".to_owned(),
                        Json::Arr(
                            self.fd_graph
                                .nodes()
                                .iter()
                                .map(|n| Json::Str(n.clone()))
                                .collect(),
                        ),
                    ),
                    ("edges".to_owned(), Json::Arr(fd_edges)),
                    (
                        "redundant".to_owned(),
                        Json::Arr(
                            self.fd_graph
                                .redundant_attributes()
                                .iter()
                                .map(|n| Json::Str(n.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "fci_variables".to_owned(),
                Json::Arr(self.fci_variables.iter().map(|v| Json::Str(v.clone())).collect()),
            ),
            (
                "dropped_redundant".to_owned(),
                Json::Arr(
                    self.dropped_redundant
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
            ("sepsets".to_owned(), Json::Arr(sepsets)),
            ("n_ci_tests".to_owned(), Json::Num(self.n_ci_tests as f64)),
            ("discretizers".to_owned(), Json::Arr(discretizers)),
        ]);
        let mut out = String::new();
        doc.write(&mut out);
        out
    }

    /// Parses a model from its JSON text, validating the format version.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = Json::parse(text)?;
        let version = doc.get("format_version")?.as_u64()?;
        if version != FORMAT_VERSION {
            return Err(DataError::Persist(format!(
                "unsupported fitted-model format version {version} (expected {FORMAT_VERSION})"
            )));
        }

        let graph_doc = doc.get("graph")?;
        let nodes = graph_doc.get("nodes")?.as_string_vec()?;
        let mut graph = MixedGraph::new(nodes);
        for edge in graph_doc.get("edges")?.as_arr()? {
            let parts = edge.as_arr()?;
            if parts.len() != 4 {
                return Err(DataError::Persist("graph edge needs 4 fields".into()));
            }
            let a = parts[0].as_u64()? as usize;
            let b = parts[1].as_u64()? as usize;
            if a >= graph.n_nodes() || b >= graph.n_nodes() || a == b {
                return Err(DataError::Persist(format!(
                    "graph edge ({a}, {b}) out of range"
                )));
            }
            graph.add_edge(a, b, mark_from_str(parts[2].as_str()?)?, mark_from_str(parts[3].as_str()?)?);
        }

        let fd_doc = doc.get("fd_graph")?;
        let fd_edges: Vec<(String, String)> = fd_doc
            .get("edges")?
            .as_arr()?
            .iter()
            .map(|e| {
                let pair = e.as_arr()?;
                if pair.len() != 2 {
                    return Err(DataError::Persist("fd edge needs 2 fields".into()));
                }
                Ok((pair[0].as_str()?.to_owned(), pair[1].as_str()?.to_owned()))
            })
            .collect::<Result<_>>()?;
        let fd_graph = FdGraph::from_parts(
            fd_doc.get("nodes")?.as_string_vec()?,
            fd_edges,
            fd_doc.get("redundant")?.as_string_vec()?,
        );

        let mut sepsets = SepsetMap::new();
        for entry in doc.get("sepsets")?.as_arr()? {
            let parts = entry.as_arr()?;
            if parts.len() != 3 {
                return Err(DataError::Persist("sepset entry needs 3 fields".into()));
            }
            sepsets.insert(
                parts[0].as_str()?,
                parts[1].as_str()?,
                parts[2].as_string_vec()?,
            );
        }

        let discretizers = doc
            .get("discretizers")?
            .as_arr()?
            .iter()
            .map(|d| {
                let cuts = d
                    .get("cuts")?
                    .as_arr()?
                    .iter()
                    .map(|c| c.as_f64())
                    .collect::<Result<Vec<f64>>>()?;
                Ok(Discretizer::new(
                    d.get("measure")?.as_str()?,
                    BinSpec::from_cuts(cuts)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;

        Ok(FittedModel {
            graph,
            fd_graph,
            fci_variables: doc.get("fci_variables")?.as_string_vec()?,
            dropped_redundant: doc.get("dropped_redundant")?.as_string_vec()?,
            sepsets,
            n_ci_tests: doc.get("n_ci_tests")?.as_u64()? as usize,
            discretizers,
        })
    }

    /// Writes the model to a file, atomically: the JSON goes to a temporary
    /// sibling first and is renamed over the target, so a crash or full disk
    /// mid-write never destroys a previously saved artifact.  The sibling
    /// name is unique per process *and* per call, so concurrent saves to the
    /// same path from different threads cannot tear each other's writes.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(
            ".tmp.{}.{}",
            std::process::id(),
            SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp = std::path::PathBuf::from(tmp);
        let write = (|| {
            use std::io::Write as _;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.to_json().as_bytes())?;
            // Flush data to disk before the rename: otherwise a power loss
            // can journal the rename ahead of the data blocks and replace a
            // good artifact with a truncated one.
            file.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        write.map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            DataError::Persist(format!("writing {}: {e}", path.display()))
        })
    }

    /// Reads a model back from a file written by [`FittedModel::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| {
            DataError::Persist(format!("reading {}: {e}", path.as_ref().display()))
        })?;
        Self::from_json(&text)
    }
}

fn mark_to_str(mark: Mark) -> &'static str {
    match mark {
        Mark::Tail => "tail",
        Mark::Arrow => "arrow",
        Mark::Circle => "circle",
    }
}

fn mark_from_str(s: &str) -> Result<Mark> {
    match s {
        "tail" => Ok(Mark::Tail),
        "arrow" => Ok(Mark::Arrow),
        "circle" => Ok(Mark::Circle),
        other => Err(DataError::Persist(format!("unknown endpoint mark `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON value, writer and parser (the subset the model format uses).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // `{:?}` on f64 is Rust's shortest round-trip representation.
                out.push_str(&format!("{n:?}"));
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn parse(text: &str) -> Result<Json> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(DataError::Persist(format!(
                "trailing garbage at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }

    fn get(&self, key: &str) -> Result<&Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| DataError::Persist(format!("missing field `{key}`"))),
            _ => Err(DataError::Persist(format!(
                "expected object while reading `{key}`"
            ))),
        }
    }

    fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(DataError::Persist("expected array".into())),
        }
    }

    fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(DataError::Persist("expected string".into())),
        }
    }

    fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(DataError::Persist("expected number".into())),
        }
    }

    fn as_u64(&self) -> Result<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return Err(DataError::Persist(format!(
                "expected non-negative integer, got {n}"
            )));
        }
        Ok(n as u64)
    }

    fn as_string_vec(&self) -> Result<Vec<String>> {
        self.as_arr()?
            .iter()
            .map(|v| Ok(v.as_str()?.to_owned()))
            .collect()
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deepest container nesting the parser accepts — far beyond anything the
/// model format produces, but bounded so corrupted or hostile input yields a
/// structured error instead of a stack overflow.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| DataError::Persist("unexpected end of input".into()))
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(DataError::Persist(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(DataError::Persist(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek()? {
            b'{' | b'[' => {
                self.depth += 1;
                if self.depth > MAX_PARSE_DEPTH {
                    return Err(DataError::Persist(format!(
                        "nesting deeper than {MAX_PARSE_DEPTH} levels at byte {}",
                        self.pos
                    )));
                }
                let container = if self.bytes[self.pos] == b'{' {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                container
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => {
                    return Err(DataError::Persist(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(DataError::Persist(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| DataError::Persist("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| DataError::Persist("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // UTF-16 surrogate pairs: a high surrogate must
                            // be followed by `\uXXXX` with a low surrogate.
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(DataError::Persist(
                                        "high surrogate without a following \\u escape".into(),
                                    ));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(DataError::Persist(
                                        "high surrogate not followed by a low surrogate".into(),
                                    ));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    DataError::Persist("invalid \\u code point".into())
                                })?,
                            );
                        }
                        other => {
                            return Err(DataError::Persist(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| DataError::Persist("truncated utf-8".into()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| DataError::Persist("invalid utf-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    /// Reads four hex digits of a `\u` escape (cursor already past the `u`).
    fn hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| DataError::Persist("truncated \\u escape".into()))?;
        let hex = std::str::from_utf8(hex)
            .map_err(|_| DataError::Persist("invalid \\u escape".into()))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| DataError::Persist("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| {
            matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DataError::Persist("invalid number".into()))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| DataError::Persist(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> FittedModel {
        let mut graph = MixedGraph::new(["A", "B", "C \"quoted\"\n"]);
        graph.add_directed(0, 1);
        graph.add_edge(1, 2, Mark::Circle, Mark::Arrow);
        let fd_graph = FdGraph::from_parts(
            vec!["A".into(), "B".into()],
            vec![("A".into(), "B".into())],
            vec!["Dropped".into()],
        );
        let mut sepsets = SepsetMap::new();
        sepsets.insert("A", "C", vec!["B".into()]);
        sepsets.insert("B", "A", vec![]);
        FittedModel {
            graph,
            fd_graph,
            fci_variables: vec!["A".into(), "C \"quoted\"\n".into()],
            dropped_redundant: vec!["Dropped".into()],
            sepsets,
            n_ci_tests: 42,
            discretizers: vec![Discretizer::new(
                "M",
                BinSpec::from_cuts(vec![0.5, 133.0, 1e6]).unwrap(),
            )],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let model = sample_model();
        let json = model.to_json();
        let restored = FittedModel::from_json(&json).unwrap();
        assert_eq!(restored, model);
        // Canonical bytes: serializing the restored model reproduces them.
        assert_eq!(restored.to_json(), json);
    }

    #[test]
    fn save_and_load_round_trip_via_file() {
        let model = sample_model();
        let path = std::env::temp_dir().join("xinsight_persist_test_model.json");
        model.save(&path).unwrap();
        let loaded = FittedModel::load(&path).unwrap();
        assert_eq!(loaded, model);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let json = sample_model()
            .to_json()
            .replace("\"format_version\":1.0", "\"format_version\":99.0");
        let err = FittedModel::from_json(&json).unwrap_err();
        assert!(matches!(err, DataError::Persist(_)), "got {err:?}");
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn malformed_documents_are_structured_errors() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"format_version\": 1}",
            "{\"format_version\": \"x\"}",
            "nope",
            "{\"a\": 1} trailing",
        ] {
            assert!(
                matches!(FittedModel::from_json(bad), Err(DataError::Persist(_))),
                "`{bad}` should fail with a Persist error"
            );
        }
    }

    #[test]
    fn deep_nesting_is_a_structured_error_not_a_stack_overflow() {
        let bomb = "[".repeat(100_000);
        let err = FittedModel::from_json(&bomb).unwrap_err();
        assert!(matches!(err, DataError::Persist(_)));
        assert!(err.to_string().contains("nesting"), "got {err}");
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_fail() {
        let ok = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(ok, Json::Str("😀".to_owned()));
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(Json::parse("\"\\udc00\"").is_err());
    }

    #[test]
    fn unknown_marks_and_bad_edges_are_rejected() {
        let base = sample_model().to_json();
        let bad_mark = base.replace("\"tail\"", "\"wiggle\"");
        assert!(FittedModel::from_json(&bad_mark).is_err());
    }

    #[test]
    fn missing_file_is_a_persist_error() {
        let err = FittedModel::load("/nonexistent/path/model.json").unwrap_err();
        assert!(matches!(err, DataError::Persist(_)));
    }
}
