//! Persistence of the fitted offline artifact.
//!
//! [`XInsight::fit`](crate::pipeline::XInsight::fit) runs the paper's whole
//! offline phase — preprocessing, FD detection, XLearner/FCI — which on
//! production data takes orders of magnitude longer than answering a query.
//! A serving process should therefore *load* a previously fitted model
//! instead of re-learning it.  [`FittedModel`] captures everything the
//! online phase needs (the FD-augmented PAG, the measure discretizers, the
//! FD graph and the discovery byproducts) in a small, versioned, dependency-
//! free JSON document, and
//! [`XInsight::from_fitted`](crate::pipeline::XInsight::from_fitted)
//! reconstitutes a fully functional engine from the artifact plus the raw
//! dataset.
//!
//! The format is hand-rolled on [`crate::json`] (the workspace builds
//! offline, so no serde): a strict subset of JSON — objects, arrays,
//! strings, `f64` numbers, booleans and `null` — written deterministically
//! so that identical models serialize to identical bytes.

use crate::json::Json;
use std::path::Path;
use xinsight_data::{BinSpec, DataError, Discretizer, FdGraph, Result};
use xinsight_discovery::SepsetMap;
use xinsight_graph::{Mark, MixedGraph};

/// Version stamp written into every artifact; bump on breaking changes.
///
/// v2: sepsets are serialized as dense variable-id triples
/// (`[x, y, [z...]]`, ids indexing `fci_variables`) instead of name triples,
/// matching the id-keyed [`SepsetMap`].
pub const FORMAT_VERSION: u64 = 2;

/// The serializable output of the offline phase.
///
/// Round-trips exactly: `FittedModel::from_json(&model.to_json())` equals
/// `model`, and an engine reconstructed through
/// [`XInsight::from_fitted`](crate::pipeline::XInsight::from_fitted) answers
/// queries identically to the engine that produced the model.
///
/// ```
/// # use xinsight_core::pipeline::{XInsight, XInsightOptions};
/// # use xinsight_data::DatasetBuilder;
/// # let data = DatasetBuilder::new()
/// #     .dimension("A", (0..60).map(|i| if i % 2 == 0 { "x" } else { "y" }))
/// #     .dimension("B", (0..60).map(|i| if i % 3 == 0 { "p" } else { "q" }))
/// #     .measure("M", (0..60).map(|i| i as f64))
/// #     .build()
/// #     .unwrap();
/// use xinsight_core::FittedModel;
///
/// let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
/// let json = engine.fitted_model().to_json();
/// let restored = FittedModel::from_json(&json).unwrap();
/// assert_eq!(restored, engine.fitted_model());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FittedModel {
    /// The FD-augmented PAG learned by XLearner.
    pub graph: MixedGraph,
    /// The FD-induced graph used in XLearner's stage 1.
    pub fd_graph: FdGraph,
    /// Variables the FCI stage actually ran on.
    pub fci_variables: Vec<String>,
    /// Variables dropped as mutually redundant.
    pub dropped_redundant: Vec<String>,
    /// Separating sets recorded by the skeleton search.
    pub sepsets: SepsetMap,
    /// Number of CI tests the fit issued (provenance metadata).
    pub n_ci_tests: usize,
    /// Discretizers for the measures that were binned during the fit, in
    /// application order.
    pub discretizers: Vec<Discretizer>,
}

impl FittedModel {
    /// Serializes the model to its canonical JSON text.
    pub fn to_json(&self) -> String {
        let graph_edges: Vec<Json> = self
            .graph
            .edges()
            .iter()
            .map(|e| {
                Json::Arr(vec![
                    Json::Num(e.a as f64),
                    Json::Num(e.b as f64),
                    Json::Str(mark_to_str(e.near_a).to_owned()),
                    Json::Str(mark_to_str(e.near_b).to_owned()),
                ])
            })
            .collect();
        let fd_edges: Vec<Json> = self
            .fd_graph
            .edges()
            .iter()
            .map(|&(a, b)| Json::Arr(vec![Json::Str(a.to_owned()), Json::Str(b.to_owned())]))
            .collect();
        // Deterministic sepset order: sort by the (already normalised) id
        // pair.  Ids index `fci_variables`, which is also the node-id order
        // of the search that learned the sepsets.
        let mut sepset_entries: Vec<(u32, u32, &[u32])> = self.sepsets.iter().collect();
        sepset_entries.sort_unstable_by_key(|&(x, y, _)| (x, y));
        let sepsets: Vec<Json> = sepset_entries
            .into_iter()
            .map(|(x, y, z)| {
                Json::Arr(vec![
                    Json::Num(x as f64),
                    Json::Num(y as f64),
                    Json::Arr(z.iter().map(|&m| Json::Num(m as f64)).collect()),
                ])
            })
            .collect();
        let discretizers: Vec<Json> = self
            .discretizers
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("measure".to_owned(), Json::Str(d.measure().to_owned())),
                    (
                        "cuts".to_owned(),
                        Json::Arr(d.spec().cuts().iter().map(|&c| Json::Num(c)).collect()),
                    ),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            (
                "format_version".to_owned(),
                Json::Num(FORMAT_VERSION as f64),
            ),
            (
                "graph".to_owned(),
                Json::Obj(vec![
                    (
                        "nodes".to_owned(),
                        Json::Arr(
                            self.graph
                                .names()
                                .iter()
                                .map(|n| Json::Str(n.clone()))
                                .collect(),
                        ),
                    ),
                    ("edges".to_owned(), Json::Arr(graph_edges)),
                ]),
            ),
            (
                "fd_graph".to_owned(),
                Json::Obj(vec![
                    (
                        "nodes".to_owned(),
                        Json::Arr(
                            self.fd_graph
                                .nodes()
                                .iter()
                                .map(|n| Json::Str(n.clone()))
                                .collect(),
                        ),
                    ),
                    ("edges".to_owned(), Json::Arr(fd_edges)),
                    (
                        "redundant".to_owned(),
                        Json::Arr(
                            self.fd_graph
                                .redundant_attributes()
                                .iter()
                                .map(|n| Json::Str(n.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "fci_variables".to_owned(),
                Json::Arr(
                    self.fci_variables
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
            (
                "dropped_redundant".to_owned(),
                Json::Arr(
                    self.dropped_redundant
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
            ("sepsets".to_owned(), Json::Arr(sepsets)),
            ("n_ci_tests".to_owned(), Json::Num(self.n_ci_tests as f64)),
            ("discretizers".to_owned(), Json::Arr(discretizers)),
        ]);
        let mut out = String::new();
        doc.write(&mut out);
        out
    }

    /// Parses a model from its JSON text, validating the format version.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = Json::parse(text)?;
        let version = doc.get("format_version")?.as_u64()?;
        if version != FORMAT_VERSION {
            return Err(DataError::Persist(format!(
                "unsupported fitted-model format version {version} (expected {FORMAT_VERSION})"
            )));
        }

        let graph_doc = doc.get("graph")?;
        let nodes = graph_doc.get("nodes")?.as_string_vec()?;
        let mut graph = MixedGraph::new(nodes);
        for edge in graph_doc.get("edges")?.as_arr()? {
            let parts = edge.as_arr()?;
            if parts.len() != 4 {
                return Err(DataError::Persist("graph edge needs 4 fields".into()));
            }
            let a = parts[0].as_u64()? as usize;
            let b = parts[1].as_u64()? as usize;
            if a >= graph.n_nodes() || b >= graph.n_nodes() || a == b {
                return Err(DataError::Persist(format!(
                    "graph edge ({a}, {b}) out of range"
                )));
            }
            graph.add_edge(
                a,
                b,
                mark_from_str(parts[2].as_str()?)?,
                mark_from_str(parts[3].as_str()?)?,
            );
        }

        let fd_doc = doc.get("fd_graph")?;
        let fd_edges: Vec<(String, String)> = fd_doc
            .get("edges")?
            .as_arr()?
            .iter()
            .map(|e| {
                let pair = e.as_arr()?;
                if pair.len() != 2 {
                    return Err(DataError::Persist("fd edge needs 2 fields".into()));
                }
                Ok((pair[0].as_str()?.to_owned(), pair[1].as_str()?.to_owned()))
            })
            .collect::<Result<_>>()?;
        let fd_graph = FdGraph::from_parts(
            fd_doc.get("nodes")?.as_string_vec()?,
            fd_edges,
            fd_doc.get("redundant")?.as_string_vec()?,
        );

        let fci_variables = doc.get("fci_variables")?.as_string_vec()?;
        let n_fci = fci_variables.len() as u64;
        let mut sepsets = SepsetMap::new();
        for entry in doc.get("sepsets")?.as_arr()? {
            let parts = entry.as_arr()?;
            if parts.len() != 3 {
                return Err(DataError::Persist("sepset entry needs 3 fields".into()));
            }
            let x = parts[0].as_u64()?;
            let y = parts[1].as_u64()?;
            let z = parts[2]
                .as_arr()?
                .iter()
                .map(|m| m.as_u64())
                .collect::<Result<Vec<u64>>>()?;
            if let Some(&bad) = [x, y].iter().chain(z.iter()).find(|&&id| id >= n_fci) {
                return Err(DataError::Persist(format!(
                    "sepset id {bad} out of range (model has {n_fci} FCI variables)"
                )));
            }
            sepsets.insert(
                x as u32,
                y as u32,
                z.into_iter().map(|m| m as u32).collect(),
            );
        }

        let discretizers = doc
            .get("discretizers")?
            .as_arr()?
            .iter()
            .map(|d| {
                let cuts = d
                    .get("cuts")?
                    .as_arr()?
                    .iter()
                    .map(|c| c.as_f64())
                    .collect::<Result<Vec<f64>>>()?;
                Ok(Discretizer::new(
                    d.get("measure")?.as_str()?,
                    BinSpec::from_cuts(cuts)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;

        Ok(FittedModel {
            graph,
            fd_graph,
            fci_variables,
            dropped_redundant: doc.get("dropped_redundant")?.as_string_vec()?,
            sepsets,
            n_ci_tests: doc.get("n_ci_tests")?.as_u64()? as usize,
            discretizers,
        })
    }

    /// Writes the model to a file, atomically: the JSON goes to a temporary
    /// sibling first and is renamed over the target, so a crash or full disk
    /// mid-write never destroys a previously saved artifact.  The sibling
    /// name is unique per process *and* per call, so concurrent saves to the
    /// same path from different threads cannot tear each other's writes.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(
            ".tmp.{}.{}",
            std::process::id(),
            SAVE_SEQ.fetch_add(1, Ordering::Relaxed) // relaxed: tmp-name uniqueness needs atomicity only
        ));
        let tmp = std::path::PathBuf::from(tmp);
        let write = (|| {
            use std::io::Write as _;
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.to_json().as_bytes())?;
            // Flush data to disk before the rename: otherwise a power loss
            // can journal the rename ahead of the data blocks and replace a
            // good artifact with a truncated one.
            file.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        write.map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            DataError::Persist(format!("writing {}: {e}", path.display()))
        })
    }

    /// Reads a model back from a file written by [`FittedModel::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| DataError::Persist(format!("reading {}: {e}", path.as_ref().display())))?;
        Self::from_json(&text)
    }
}

fn mark_to_str(mark: Mark) -> &'static str {
    match mark {
        Mark::Tail => "tail",
        Mark::Arrow => "arrow",
        Mark::Circle => "circle",
    }
}

fn mark_from_str(s: &str) -> Result<Mark> {
    match s {
        "tail" => Ok(Mark::Tail),
        "arrow" => Ok(Mark::Arrow),
        "circle" => Ok(Mark::Circle),
        other => Err(DataError::Persist(format!(
            "unknown endpoint mark `{other}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> FittedModel {
        let mut graph = MixedGraph::new(["A", "B", "C \"quoted\"\n"]);
        graph.add_directed(0, 1);
        graph.add_edge(1, 2, Mark::Circle, Mark::Arrow);
        let fd_graph = FdGraph::from_parts(
            vec!["A".into(), "B".into()],
            vec![("A".into(), "B".into())],
            vec!["Dropped".into()],
        );
        let mut sepsets = SepsetMap::new();
        // Ids index `fci_variables` below: A=0, B=1, C"quoted"=2.
        sepsets.insert(0, 2, vec![1]);
        sepsets.insert(1, 0, vec![]);
        FittedModel {
            graph,
            fd_graph,
            fci_variables: vec!["A".into(), "B".into(), "C \"quoted\"\n".into()],
            dropped_redundant: vec!["Dropped".into()],
            sepsets,
            n_ci_tests: 42,
            discretizers: vec![Discretizer::new(
                "M",
                BinSpec::from_cuts(vec![0.5, 133.0, 1e6]).unwrap(),
            )],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let model = sample_model();
        let json = model.to_json();
        let restored = FittedModel::from_json(&json).unwrap();
        assert_eq!(restored, model);
        // Canonical bytes: serializing the restored model reproduces them.
        assert_eq!(restored.to_json(), json);
    }

    #[test]
    fn save_and_load_round_trip_via_file() {
        let model = sample_model();
        let path = std::env::temp_dir().join("xinsight_persist_test_model.json");
        model.save(&path).unwrap();
        let loaded = FittedModel::load(&path).unwrap();
        assert_eq!(loaded, model);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let json = sample_model()
            .to_json()
            .replace("\"format_version\":2.0", "\"format_version\":99.0");
        let err = FittedModel::from_json(&json).unwrap_err();
        assert!(matches!(err, DataError::Persist(_)), "got {err:?}");
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn malformed_documents_are_structured_errors() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"format_version\": 1}",
            "{\"format_version\": \"x\"}",
            "nope",
            "{\"a\": 1} trailing",
        ] {
            assert!(
                matches!(FittedModel::from_json(bad), Err(DataError::Persist(_))),
                "`{bad}` should fail with a Persist error"
            );
        }
    }

    #[test]
    fn deep_nesting_is_a_structured_error_not_a_stack_overflow() {
        let bomb = "[".repeat(100_000);
        let err = FittedModel::from_json(&bomb).unwrap_err();
        assert!(matches!(err, DataError::Persist(_)));
        assert!(err.to_string().contains("nesting"), "got {err}");
    }

    #[test]
    fn out_of_range_sepset_ids_are_rejected() {
        // The fixture has 3 FCI variables; id 9 cannot index them.
        let json = sample_model().to_json().replace("[0.0,2.0,", "[0.0,9.0,");
        let err = FittedModel::from_json(&json).unwrap_err();
        assert!(matches!(err, DataError::Persist(_)), "got {err:?}");
        assert!(err.to_string().contains("out of range"), "got {err}");
    }

    #[test]
    fn unknown_marks_and_bad_edges_are_rejected() {
        let base = sample_model().to_json();
        let bad_mark = base.replace("\"tail\"", "\"wiggle\"");
        assert!(FittedModel::from_json(&bad_mark).is_err());
    }

    #[test]
    fn missing_file_is_a_persist_error() {
        let err = FittedModel::load("/nonexistent/path/model.json").unwrap_err();
        assert!(matches!(err, DataError::Persist(_)));
    }
}
