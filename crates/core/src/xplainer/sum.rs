//! The SUM optimization (Sec. 3.3.2): canonical predicates and a closed-form
//! optimal explanation.
//!
//! For additive aggregates, `Δ(D_{P1} ∪ D_{P2}) = Δ(D_{P1}) + Δ(D_{P2})`, so
//!
//! * filters with non-positive `Δ_i` can be discarded (Prop. 3.2),
//! * the canonical predicate `P_C` — the shortest prefix of the filters sorted
//!   by decreasing `Δ_i` whose removal brings the difference below `ε`
//!   (Def. 3.6) — contains an optimal explanation (Prop. 3.3),
//! * every subset of `P_C` is an actual cause with the complement as a valid
//!   contingency (Thm. 3.3), and its responsibility is bounded by Thm. 3.4,
//!   giving the closed-form optimum `P* = {p_i ∈ P_C : Δ_i > C_3}` (Eqn. 8).
//!
//! The whole search costs `O(m log m)` (sorting dominates).

use super::context::SearchContext;
use super::{map_items, ExplanationCandidate};

/// Runs the SUM-optimized search.
pub fn search(ctx: &SearchContext<'_>) -> Option<ExplanationCandidate> {
    let delta_d = ctx.delta_d();
    if delta_d <= 0.0 {
        return None;
    }
    // Per-filter contributions Δ_i = Δ(D_{p_i}); undefined (empty side) counts
    // as no contribution for an additive aggregate's missing rows (Σ over an
    // empty set is zero on that side).  The probes are independent, so they
    // fan out over the thread pool; the ordered collect keeps the result
    // identical to a serial scan.
    let mut contributions: Vec<(usize, f64)> =
        map_items(ctx.parallel(), (0..ctx.m()).collect(), |i| {
            (i, ctx.delta_of(&[i]).unwrap_or(0.0))
        })
        .into_iter()
        .filter(|&(_, d)| d > 0.0)
        .collect();
    if contributions.is_empty() {
        return None;
    }
    contributions.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite deltas"));

    // Canonical predicate: the shortest prefix with Δ(D) − Σ Δ_i ≤ ε.
    let mut tau = 0.0;
    let mut canonical: Vec<usize> = Vec::new();
    let mut resolved = false;
    for &(idx, d) in &contributions {
        canonical.push(idx);
        tau += d;
        if delta_d - tau <= ctx.epsilon() {
            resolved = true;
            break;
        }
    }
    if !resolved {
        // Even removing every positive filter does not explain the difference
        // away: this attribute holds no counterfactual cause.
        return None;
    }

    // Closed-form optimum (Eqn. 8): keep canonical filters with Δ_i > C_3.
    let m_j = tau / delta_d;
    let c3 = ctx.sigma() * delta_d / (1.0 + m_j).powi(2);
    let mut optimal: Vec<usize> = canonical
        .iter()
        .copied()
        .filter(|&i| {
            contributions
                .iter()
                .find(|&&(idx, _)| idx == i)
                .map(|&(_, d)| d > c3)
                .unwrap_or(false)
        })
        .collect();
    if optimal.is_empty() {
        // Degenerate regularisation: fall back to the single strongest filter.
        optimal.push(canonical[0]);
    }

    // Approximate responsibility (Thm. 3.4): with normalised quantities
    // d_P = Δ(D_P)/Δ(D) and m_j = τ/Δ(D), ρ̂ = (1 + m_j + d_P) / (1 + m_j)².
    let delta_p: f64 = contributions
        .iter()
        .filter(|&&(idx, _)| optimal.contains(&idx))
        .map(|&(_, d)| d)
        .sum();
    let d_p = delta_p / delta_d;
    let responsibility = if optimal.len() == canonical.len() {
        1.0
    } else {
        ((1.0 + m_j + d_p) / (1.0 + m_j).powi(2)).clamp(0.0, 1.0)
    };

    let score = responsibility - ctx.sigma() * optimal.len() as f64;
    if score <= 1e-12 {
        return None;
    }

    let gamma: Vec<usize> = canonical
        .iter()
        .copied()
        .filter(|i| !optimal.contains(i))
        .collect();
    Some(ExplanationCandidate {
        predicate: ctx.predicate_of(&optimal),
        responsibility,
        contingency: if gamma.is_empty() {
            None
        } else {
            Some(ctx.predicate_of(&gamma))
        },
        remaining_delta: ctx.delta_without(&optimal),
        n_delta_evaluations: ctx.evaluations(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::why_query::WhyQuery;
    use crate::xplainer::XPlainerOptions;
    use xinsight_data::{Aggregate, DatasetBuilder, SegmentedDataset, Subspace};

    /// Three "guilty" categories with large positive Δ_i, several innocent ones.
    fn fixture(n_noise: usize) -> (SegmentedDataset, WhyQuery) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut m = Vec::new();
        for (cat, val) in [("g1", 100.0), ("g2", 80.0), ("g3", 60.0)] {
            x.push("a");
            y.push(cat.to_owned());
            m.push(val);
        }
        for i in 0..n_noise {
            // Noise categories contribute equally to both sides.
            for side in ["a", "b"] {
                x.push(side);
                y.push(format!("n{i}"));
                m.push(5.0);
            }
        }
        // Balance row so that side b is non-empty even without noise.
        x.push("b");
        y.push("base".to_owned());
        m.push(1.0);
        let data = DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y.iter().map(String::as_str))
            .measure("M", m)
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "M",
            Aggregate::Sum,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        (data, query)
    }

    #[test]
    fn canonical_predicate_contains_planted_causes() {
        let (data, query) = fixture(5);
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let result = search(&ctx).expect("must find an explanation");
        assert!(result.predicate.contains("g1"));
        assert!(result.predicate.contains("g2"));
        // Noise categories (zero net contribution) must not appear.
        assert!(!result.predicate.contains("n0"));
        assert!(result.responsibility > 0.5);
        assert!(result.responsibility <= 1.0);
    }

    #[test]
    fn cost_is_linear_in_filters_not_exponential() {
        let (data, query) = fixture(30);
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let result = search(&ctx).expect("must find an explanation");
        // One Δ(D_p) per filter, plus a handful of bookkeeping evaluations.
        assert!(result.n_delta_evaluations <= ctx.m() + 5);
    }

    #[test]
    fn negative_contributors_are_ignored() {
        // One category pushes the difference the other way (Δ_i < 0).
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "b", "b"])
            .dimension("Y", ["up", "down", "down", "base"])
            .measure("M", [100.0, 5.0, 50.0, 1.0])
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "M",
            Aggregate::Sum,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let result = search(&ctx).expect("must find an explanation");
        assert_eq!(result.predicate.values(), ["up"]);
        assert!(!result.predicate.contains("down"));
    }

    #[test]
    fn degenerate_all_filter_explanations_are_not_reported() {
        // Y's two categories contribute equally; explaining the query needs
        // both of them, and with σ = 1/m the score of the full predicate is
        // exactly zero, so XPlainer reports nothing for this attribute.
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "b", "b"])
            .dimension("Y", ["u", "v", "u", "v"])
            .measure("M", [10.0, 10.0, 1.0, 1.0])
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "M",
            Aggregate::Sum,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let opts = XPlainerOptions {
            epsilon: Some(0.5),
            ..XPlainerOptions::default()
        };
        let ctx = SearchContext::build(&data, &query, "Y", &opts).unwrap();
        assert!(search(&ctx).is_none());

        // A single constant category behaves the same way (σ = 1).
        let data2 = DatasetBuilder::new()
            .dimension("X", ["a", "a", "b", "b"])
            .dimension("Z", ["only", "only", "only", "only"])
            .measure("M", [10.0, 10.0, 1.0, 1.0])
            .build()
            .unwrap()
            .into_segmented();
        let query2 = WhyQuery::new(
            "M",
            Aggregate::Sum,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let ctx2 = SearchContext::build(&data2, &query2, "Z", &opts).unwrap();
        assert!(search(&ctx2).is_none());
    }

    #[test]
    fn zero_delta_query_returns_none() {
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "b"])
            .dimension("Y", ["u", "u"])
            .measure("M", [1.0, 1.0])
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "M",
            Aggregate::Sum,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        assert!(search(&ctx).is_none());
    }
}
