//! The shared selection/aggregation cache behind the online search engine,
//! keyed per segment of the store it serves.
//!
//! Every XPlainer strategy spends its time evaluating `Δ(D_P)` and
//! `Δ(D − D_P)` terms, each of which aggregates the measure over
//! *(sibling subspace mask) ∩ (predicate clause mask)* selections.  The same
//! building blocks recur constantly: the SUM path's per-filter masks are
//! re-probed by the AVG greedy rounds and by brute force, sibling-subspace
//! masks are shared by **every** clause of **every** attribute, and a batch
//! of Why Queries over the same store overlaps almost entirely.
//!
//! [`SelectionCache`] memoizes both layers **per segment**:
//!
//! * **masks** — one [`RowMask`] per `(segment, filter)`,
//!   `(segment, subspace)` and `(segment, clause)`, each in the segment's
//!   local row domain, stored behind `Arc` so concurrent searches share
//!   them;
//! * **partial aggregates** — per
//!   `(segment, side, measure, clause, complement)` the mergeable
//!   [`MeasureStats`] sufficient statistics, from which `Δ` under any
//!   aggregate is derived arithmetically *after* merging the per-segment
//!   partials in segment order.
//!
//! Keys carry the segment's process-unique id **and its seal epoch**.
//! Both are immutable properties of a sealed segment, so an ingest — which
//! only ever *adds* segments in a new snapshot — invalidates nothing:
//! the new segment simply contributes additional cache keys, and every
//! entry computed for older segments keeps answering across epochs.  A
//! cheap lineage latch ([`SegmentedDataset::lineage`]) rejects reuse with a
//! *different* store outright.
//!
//! Merging per-segment [`MeasureStats`] uses exact summation
//! ([`xinsight_data::ExactSum`]), so the merged aggregate is bit-identical
//! for any segmentation of the same rows — the invariant the
//! "segmented == monolithic" property tests pin down.
//!
//! The cache is written once and shared freely: all methods take `&self`,
//! interior state lives behind [`parking_lot::RwLock`] maps, and hit/miss
//! counters are atomic.  One instance serves a single
//! [`super::SearchContext`] (private, per-attribute reuse), a whole query
//! (cross-attribute reuse in
//! [`crate::pipeline::XInsight::execute`]) or a whole batch (cross-query
//! reuse in [`crate::pipeline::XInsight::execute_batch`]).
//!
//! Entries are never evicted: the cache grows with the number of *distinct*
//! `(segment, clause)` pairs probed, which is what turns repeated `Δ` terms
//! into replays.  For the optimized strategies that is O(m²) small entries
//! per attribute per segment; brute force probes O(2^m) clauses, bounded by
//! [`super::XPlainerOptions::max_brute_force_filters`] (the same knob that
//! bounds its running time).  Scope a cache to a bounded working set.  Two
//! scopes are in use today: a fresh cache per `execute_batch` call (the
//! pipeline's default), and the serving layer's **per-model cache** held
//! across requests *and across ingest* — legal because ingest preserves the
//! store lineage, so a post-ingest request replays every older segment's
//! partials and computes only the newly sealed segment: the "merge cached
//! prefix partials with fresh suffix partials" serve path.  The serving
//! layer bounds that long-lived scope by replacing the cache wholesale on
//! model reload and on compaction (both produce freshly-identified
//! segments, so a stale cache would only hold dead keys).

// HashMap here never leaks iteration order into output: mask/partial memo tables; key-looked-up only (see clippy.toml).
#![allow(clippy::disallowed_types)]

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use xinsight_data::{
    DataError, MeasureStats, Result, RowMask, Segment, SegmentedDataset, Subspace,
};

/// Clause masks are memoized up to this many filter values; larger unions are
/// built transiently instead.  Rationale: a partial aggregate is computed at
/// most once per (segment, side, clause, complement) key, so a clause mask is
/// needed only a handful of times ever — but brute force enumerates `2^m`
/// clauses, and retaining one mask per clause per segment in a never-evicted
/// cache would pin hundreds of MB on large datasets.  Short clauses (the ones
/// every strategy and attribute re-probes) stay shared; long tails stay
/// transient.
const MAX_CACHED_CLAUSE_VALUES: usize = 2;

/// The identity of one sealed segment: its process-unique id plus the epoch
/// it was sealed in.  Both never change for a sealed segment, so entries
/// under this key survive every later ingest.
#[derive(Debug, Clone, Copy, Hash, PartialEq, Eq)]
struct SegmentId {
    id: u64,
    epoch: u64,
}

impl SegmentId {
    fn of(segment: &Segment) -> SegmentId {
        SegmentId {
            id: segment.id(),
            epoch: segment.epoch(),
        }
    }
}

/// Key of one memoized row mask (scoped to a segment).
#[derive(Debug, Clone, Hash, PartialEq, Eq)]
enum MaskKey {
    /// A single equality filter `attribute = value`.
    Filter { attribute: String, value: String },
    /// A subspace (conjunction), keyed by its canonical display form.
    Subspace(String),
    /// A predicate clause: disjunction of filters on one attribute, values
    /// sorted.
    Clause {
        attribute: String,
        values: Vec<String>,
    },
}

/// Key of one memoized per-segment partial aggregate.
#[derive(Debug, Clone, Hash, PartialEq, Eq)]
struct PartialKey {
    /// The segment the statistics were computed over.
    segment: SegmentId,
    /// Canonical key of the sibling-subspace side the aggregate is scoped to.
    side: String,
    /// The aggregated measure.
    measure: String,
    /// Attribute the clause ranges over (empty for the empty clause, which
    /// references no attribute and is shared across attributes).
    attribute: String,
    /// Sorted, deduplicated clause values.
    values: Vec<String>,
    /// `false` → aggregate over `side ∩ clause`; `true` → over
    /// `side − clause` (the paper's `D − D_P` selections).
    complement: bool,
}

/// Shared, thread-safe memoization of per-segment filter/subspace/clause
/// masks and partial aggregates (see the module docs for the design).
#[derive(Debug, Default)]
pub struct SelectionCache {
    masks: RwLock<HashMap<(SegmentId, MaskKey), Arc<RowMask>>>,
    /// Per-segment partial aggregates behind `Arc`, so a warm-cache replay
    /// is a pointer copy rather than a clone of the exact-sum partials.
    partials: RwLock<HashMap<PartialKey, Arc<MeasureStats>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Lineage of the store this cache was first used with.  Entries are
    /// keyed by process-unique segment ids, so they could never *alias*
    /// across stores — the latch exists to fail loudly on the misuse
    /// (one cache per store) instead of silently giving zero hits.
    lineage: OnceLock<u64>,
}

impl SelectionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SelectionCache::default()
    }

    /// Number of cache lookups (masks + partial aggregates) answered from
    /// memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // relaxed: monotonic cache counter
    }

    /// Number of cache lookups that had to compute their entry.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed) // relaxed: monotonic cache counter
    }

    /// Number of distinct masks currently memoized.
    pub fn mask_entries(&self) -> usize {
        self.masks.read().len()
    }

    /// Number of distinct partial aggregates currently memoized.
    pub fn partial_entries(&self) -> usize {
        self.partials.read().len()
    }

    /// A snapshot of the hit/miss counters and the total entry count
    /// (masks + partial aggregates) in the engine-wide
    /// [`CacheStats`](xinsight_stats::CacheStats) shape, for the serving
    /// layer's `/stats` endpoint and the benches.
    pub fn stats(&self) -> xinsight_stats::CacheStats {
        xinsight_stats::CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            entries: self.mask_entries() + self.partial_entries(),
        }
    }

    /// Checks that `store` is (a snapshot of) the store this cache serves,
    /// latching its lineage on first use.  Every epoch of one store is
    /// accepted — sealed segments are immutable, so entries computed in an
    /// older epoch remain exact in every later one; a different store is
    /// rejected.  Public entry points call this; crate-internal hot paths
    /// call it once per search context and then use the `_trusted`
    /// variants.
    pub(super) fn ensure_store(&self, store: &SegmentedDataset) -> Result<()> {
        let lineage = store.lineage();
        let latched = *self.lineage.get_or_init(|| lineage);
        if latched == lineage {
            Ok(())
        } else {
            Err(DataError::DatasetMismatch(format!(
                "SelectionCache was built against store lineage {latched} but was queried \
                 with lineage {lineage}; use one cache per store (any epoch of it)"
            )))
        }
    }

    fn mask_or_insert(
        &self,
        key: (SegmentId, MaskKey),
        build: impl FnOnce() -> Result<RowMask>,
    ) -> Result<Arc<RowMask>> {
        if let Some(mask) = self.masks.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache counter
            return Ok(Arc::clone(mask));
        }
        let mask = Arc::new(build()?);
        // A concurrent search may have raced us here; both compute the same
        // mask.  As with partial aggregates, occupancy under the write lock
        // decides who counts the miss, keeping counters deterministic.
        match self.masks.write().entry(key) {
            std::collections::hash_map::Entry::Occupied(existing) => {
                self.hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache counter
                Ok(Arc::clone(existing.get()))
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.misses.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache counter
                Ok(Arc::clone(slot.insert(mask)))
            }
        }
    }

    /// The row mask of one equality filter `attribute = value` within one
    /// segment (segment-local row domain).
    pub fn filter_mask(
        &self,
        store: &SegmentedDataset,
        segment: &Segment,
        attribute: &str,
        value: &str,
    ) -> Result<Arc<RowMask>> {
        self.ensure_store(store)?;
        self.filter_mask_trusted(segment, attribute, value)
    }

    pub(super) fn filter_mask_trusted(
        &self,
        segment: &Segment,
        attribute: &str,
        value: &str,
    ) -> Result<Arc<RowMask>> {
        self.mask_or_insert(
            (
                SegmentId::of(segment),
                MaskKey::Filter {
                    attribute: attribute.to_owned(),
                    value: value.to_owned(),
                },
            ),
            || xinsight_data::Filter::equals(attribute, value).mask(segment.data()),
        )
    }

    /// The row mask of a subspace (conjunction of filters) within one
    /// segment.
    pub fn subspace_mask(
        &self,
        store: &SegmentedDataset,
        segment: &Segment,
        subspace: &Subspace,
    ) -> Result<Arc<RowMask>> {
        self.ensure_store(store)?;
        self.subspace_mask_trusted(segment, subspace)
    }

    pub(super) fn subspace_mask_trusted(
        &self,
        segment: &Segment,
        subspace: &Subspace,
    ) -> Result<Arc<RowMask>> {
        self.mask_or_insert(
            (
                SegmentId::of(segment),
                MaskKey::Subspace(subspace_key(subspace)),
            ),
            || subspace.mask(segment.data()),
        )
    }

    /// The row mask of a predicate clause — the union of the given filters
    /// on one attribute — within one segment.  `values` must be sorted and
    /// deduplicated (the caller's canonical clause form).  The empty clause
    /// selects no rows.
    ///
    /// Clauses up to `MAX_CACHED_CLAUSE_VALUES` values are memoized; larger
    /// unions are built transiently (see that constant's docs for why).
    pub fn clause_mask(
        &self,
        store: &SegmentedDataset,
        segment: &Segment,
        attribute: &str,
        values: &[String],
    ) -> Result<Arc<RowMask>> {
        self.ensure_store(store)?;
        self.clause_mask_trusted(segment, attribute, values)
    }

    fn clause_mask_trusted(
        &self,
        segment: &Segment,
        attribute: &str,
        values: &[String],
    ) -> Result<Arc<RowMask>> {
        if let [value] = values {
            // A single-filter clause *is* its filter mask; no second entry.
            return self.filter_mask_trusted(segment, attribute, value);
        }
        let build_union = || {
            let mut mask = RowMask::zeros(segment.n_rows());
            for value in values {
                let filter = self.filter_mask_trusted(segment, attribute, value)?;
                mask = mask.or(&filter);
            }
            Ok(mask)
        };
        if values.len() > MAX_CACHED_CLAUSE_VALUES {
            return Ok(Arc::new(build_union()?));
        }
        self.mask_or_insert(
            (
                SegmentId::of(segment),
                MaskKey::Clause {
                    attribute: attribute.to_owned(),
                    values: values.to_vec(),
                },
            ),
            build_union,
        )
    }

    /// The partial aggregate of `measure` over `side ∩ clause`
    /// (or `side − clause` when `complement` is set) within one segment,
    /// memoized.  Callers merge the per-segment statistics in segment order
    /// — a bit-exact operation thanks to [`MeasureStats`]'s exact sum.
    ///
    /// Returns the (shared) statistics and whether they were freshly
    /// computed (`true` on a cache miss) — the search context uses the flag
    /// to count actual `Δ(·)` evaluations as opposed to cache replays.
    #[allow(clippy::too_many_arguments)]
    pub fn partial_agg(
        &self,
        store: &SegmentedDataset,
        segment: &Segment,
        measure: &str,
        side_key: &str,
        side: &RowMask,
        attribute: &str,
        values: &[String],
        complement: bool,
    ) -> Result<(Arc<MeasureStats>, bool)> {
        self.ensure_store(store)?;
        self.partial_agg_trusted(
            segment, measure, side_key, side, attribute, values, complement,
        )
    }

    /// [`SelectionCache::partial_agg`] without the per-call store check —
    /// for hot-path callers (the search context) that validated the store
    /// once at construction and hold it for their whole lifetime.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn partial_agg_trusted(
        &self,
        segment: &Segment,
        measure: &str,
        side_key: &str,
        side: &RowMask,
        attribute: &str,
        values: &[String],
        complement: bool,
    ) -> Result<(Arc<MeasureStats>, bool)> {
        let key = PartialKey {
            segment: SegmentId::of(segment),
            side: side_key.to_owned(),
            measure: measure.to_owned(),
            // The empty clause selects nothing regardless of attribute; key it
            // attribute-free so e.g. Δ(D) probes are shared across attributes.
            attribute: if values.is_empty() {
                String::new()
            } else {
                attribute.to_owned()
            },
            values: values.to_vec(),
            complement,
        };
        if let Some(stats) = self.partials.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache counter
            return Ok((Arc::clone(stats), false));
        }
        let clause = self.clause_mask_trusted(segment, attribute, values)?;
        let stats = Arc::new(compute_partial(
            segment, measure, side, &clause, complement,
        )?);
        // Freshness is decided by entry occupancy under the write lock: when
        // two workers race on the same key, both compute (same inputs → same
        // stats) but exactly one reports `fresh = true`, so each distinct key
        // is counted as a miss exactly once.  (A caller aggregating over the
        // per-side, per-segment keys of one Δ term can still attribute a racy
        // term to two workers — see `SearchContext::evaluations`.)
        match self.partials.write().entry(key) {
            std::collections::hash_map::Entry::Occupied(existing) => {
                self.hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache counter
                Ok((Arc::clone(existing.get()), false))
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.misses.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache counter
                slot.insert(Arc::clone(&stats));
                Ok((stats, true))
            }
        }
    }
}

/// Canonical cache key of a subspace: its sorted `attr = value` display form.
fn subspace_key(subspace: &Subspace) -> String {
    subspace.to_string()
}

/// Aggregates `measure` over `side ∩ clause` (or `side − clause`) within one
/// segment using the word-parallel mask primitives; no intermediate mask is
/// materialized.
fn compute_partial(
    segment: &Segment,
    measure: &str,
    side: &RowMask,
    clause: &RowMask,
    complement: bool,
) -> Result<MeasureStats> {
    let column = segment.data().measure(measure)?;
    // Popcount-only emptiness probe: selections that wipe out a side (the
    // common case deep in the greedy/brute loops) never touch the column.
    let rows = if complement {
        side.and_not_count(clause)
    } else {
        side.intersect_count(clause)
    };
    let mut stats = MeasureStats::new();
    if rows == 0 {
        return Ok(stats);
    }
    stats.add_rows(rows);
    let (mut kept, mut removed);
    let selected: &mut dyn Iterator<Item = usize> = if complement {
        removed = side.iter_and_not(clause);
        &mut removed
    } else {
        kept = side.iter_and(clause);
        &mut kept
    };
    for i in selected {
        if let Some(v) = column.value(i) {
            stats.observe(v);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, DatasetBuilder, Filter, Value};

    fn data() -> SegmentedDataset {
        SegmentedDataset::from_dataset(
            DatasetBuilder::new()
                .dimension("X", ["a", "a", "a", "b", "b", "b"])
                .dimension("Y", ["p", "q", "r", "p", "q", "r"])
                .measure("M", [10.0, 2.0, 3.0, 1.0, 5.0, 7.0])
                .build()
                .unwrap(),
        )
    }

    fn seg(store: &SegmentedDataset) -> &Segment {
        &store.segments()[0]
    }

    #[test]
    fn filter_masks_are_shared() {
        let store = data();
        let cache = SelectionCache::new();
        let m1 = cache.filter_mask(&store, seg(&store), "Y", "p").unwrap();
        let m2 = cache.filter_mask(&store, seg(&store), "Y", "p").unwrap();
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(m1.iter_selected().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn clause_mask_is_union_of_filters() {
        let store = data();
        let cache = SelectionCache::new();
        let values = vec!["p".to_owned(), "q".to_owned()];
        let clause = cache
            .clause_mask(&store, seg(&store), "Y", &values)
            .unwrap();
        let by_hand = Filter::equals("Y", "p")
            .mask(seg(&store).data())
            .unwrap()
            .or(&Filter::equals("Y", "q").mask(seg(&store).data()).unwrap());
        assert_eq!(*clause, by_hand);
        // Single-value clauses alias the filter-mask entry.
        let single = cache
            .clause_mask(&store, seg(&store), "Y", &["r".to_owned()])
            .unwrap();
        let filter = cache.filter_mask(&store, seg(&store), "Y", "r").unwrap();
        assert!(Arc::ptr_eq(&single, &filter));
    }

    #[test]
    fn partial_aggregates_match_direct_aggregation() {
        let store = data();
        let cache = SelectionCache::new();
        let side = Filter::equals("X", "a").mask(seg(&store).data()).unwrap();
        let values = vec!["p".to_owned(), "q".to_owned()];
        let (stats, fresh) = cache
            .partial_agg(
                &store,
                seg(&store),
                "M",
                "X = a",
                &side,
                "Y",
                &values,
                false,
            )
            .unwrap();
        assert!(fresh);
        // X = a ∩ Y ∈ {p, q} selects rows 0 and 1: M = 10, 2.
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.count, 2);
        assert_eq!(stats.sum(), 12.0);
        assert_eq!(stats.value(Aggregate::Avg), Some(6.0));
        assert_eq!(stats.value(Aggregate::Min), Some(2.0));
        assert_eq!(stats.value(Aggregate::Max), Some(10.0));
        assert_eq!(stats.value(Aggregate::Count), Some(2.0));
        // Complement: X = a − Y ∈ {p, q} selects row 2 only.
        let (rest, _) = cache
            .partial_agg(&store, seg(&store), "M", "X = a", &side, "Y", &values, true)
            .unwrap();
        assert_eq!(rest.rows, 1);
        assert_eq!(rest.value(Aggregate::Sum), Some(3.0));
        // Replay hits the cache.
        let (again, fresh) = cache
            .partial_agg(
                &store,
                seg(&store),
                "M",
                "X = a",
                &side,
                "Y",
                &values,
                false,
            )
            .unwrap();
        assert!(!fresh);
        assert_eq!(again, stats);
    }

    #[test]
    fn empty_selection_semantics_mirror_aggregate_eval() {
        let store = data();
        let cache = SelectionCache::new();
        let side = Filter::equals("X", "a").mask(seg(&store).data()).unwrap();
        // The empty clause intersected with anything is empty…
        let (none, _) = cache
            .partial_agg(&store, seg(&store), "M", "X = a", &side, "Y", &[], false)
            .unwrap();
        assert_eq!(none.rows, 0);
        assert_eq!(none.value(Aggregate::Sum), Some(0.0));
        assert_eq!(none.value(Aggregate::Count), Some(0.0));
        assert_eq!(none.value(Aggregate::Avg), None);
        assert_eq!(none.value(Aggregate::Min), None);
        // …and its complement is the side itself.
        let (all, _) = cache
            .partial_agg(&store, seg(&store), "M", "X = a", &side, "Y", &[], true)
            .unwrap();
        assert_eq!(all.rows, 3);
        assert_eq!(all.value(Aggregate::Sum), Some(15.0));
    }

    #[test]
    fn empty_clause_entry_is_shared_across_attributes() {
        let store = data();
        let cache = SelectionCache::new();
        let side = Filter::equals("X", "b").mask(seg(&store).data()).unwrap();
        let (_, fresh_y) = cache
            .partial_agg(&store, seg(&store), "M", "X = b", &side, "Y", &[], true)
            .unwrap();
        let (_, fresh_x) = cache
            .partial_agg(&store, seg(&store), "M", "X = b", &side, "X", &[], true)
            .unwrap();
        assert!(fresh_y);
        assert!(!fresh_x, "empty clause must be keyed attribute-free");
    }

    #[test]
    fn missing_measure_values_are_skipped() {
        let store = SegmentedDataset::from_dataset(
            DatasetBuilder::new()
                .dimension("X", ["a", "a", "a"])
                .measure_column(
                    "M",
                    xinsight_data::MeasureColumn::from_optional_values([
                        Some(4.0),
                        None,
                        Some(6.0),
                    ]),
                )
                .build()
                .unwrap(),
        );
        let cache = SelectionCache::new();
        let side = store.segments()[0].all_rows();
        let (stats, _) = cache
            .partial_agg(
                &store,
                &store.segments()[0],
                "M",
                "all",
                &side,
                "",
                &[],
                true,
            )
            .unwrap();
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.count, 2);
        assert_eq!(stats.value(Aggregate::Avg), Some(5.0));
    }

    #[test]
    fn unknown_measure_is_an_error() {
        let store = data();
        let cache = SelectionCache::new();
        let side = seg(&store).all_rows();
        assert!(cache
            .partial_agg(&store, seg(&store), "nope", "all", &side, "Y", &[], false)
            .is_err());
    }

    #[test]
    fn reuse_with_a_different_store_is_rejected_but_epochs_are_not() {
        let store = data();
        let cache = SelectionCache::new();
        cache.filter_mask(&store, seg(&store), "Y", "p").unwrap();
        // Another epoch of the *same* store is accepted, and the new segment
        // contributes fresh keys while old entries replay.
        let grown = store
            .append_rows(&[vec![Value::from("a"), Value::from("p"), Value::from(100.0)]])
            .unwrap();
        let hits_before = cache.hits();
        assert!(cache
            .filter_mask(&grown, &grown.segments()[0], "Y", "p")
            .is_ok());
        assert_eq!(cache.hits(), hits_before + 1, "old segment entries replay");
        assert!(cache
            .filter_mask(&grown, &grown.segments()[1], "Y", "p")
            .is_ok());
        assert_eq!(cache.mask_entries(), 2, "new segment adds its own key");
        // A different store (even with identical contents) is rejected.
        let other = data();
        assert!(matches!(
            cache.filter_mask(&other, &other.segments()[0], "Y", "p"),
            Err(DataError::DatasetMismatch(_))
        ));
    }

    #[test]
    fn long_clauses_are_not_retained_in_the_mask_layer() {
        let store = data();
        let cache = SelectionCache::new();
        let side = Filter::equals("X", "a").mask(seg(&store).data()).unwrap();
        // A 3-value clause (> MAX_CACHED_CLAUSE_VALUES): its union mask must
        // be transient, while its partial aggregate is still memoized.
        let long: Vec<String> = ["p", "q", "r"].iter().map(|s| s.to_string()).collect();
        let (_, fresh) = cache
            .partial_agg(&store, seg(&store), "M", "X = a", &side, "Y", &long, false)
            .unwrap();
        assert!(fresh);
        let masks_after_long = cache.mask_entries();
        let (_, replay) = cache
            .partial_agg(&store, seg(&store), "M", "X = a", &side, "Y", &long, false)
            .unwrap();
        assert!(!replay, "partial aggregates of long clauses are memoized");
        assert_eq!(
            cache.mask_entries(),
            masks_after_long,
            "long clause unions must not accumulate in the mask layer"
        );
        // Only the three constituent filter masks were stored, no 3-value
        // clause entry.
        assert_eq!(masks_after_long, 3);
        // A 2-value clause is still shared.
        let short: Vec<String> = ["p", "q"].iter().map(|s| s.to_string()).collect();
        let first = cache.clause_mask(&store, seg(&store), "Y", &short).unwrap();
        let second = cache.clause_mask(&store, seg(&store), "Y", &short).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
    }
}
