//! The shared selection/aggregation cache behind the online search engine.
//!
//! Every XPlainer strategy spends its time evaluating `Δ(D_P)` and
//! `Δ(D − D_P)` terms, each of which aggregates the measure over
//! *(sibling subspace mask) ∩ (predicate clause mask)* selections.  The same
//! building blocks recur constantly: the SUM path's per-filter masks are
//! re-probed by the AVG greedy rounds and by brute force, sibling-subspace
//! masks are shared by **every** clause of **every** attribute, and a batch
//! of Why Queries over the same dataset overlaps almost entirely.
//!
//! [`SelectionCache`] memoizes both layers:
//!
//! * **masks** — one [`RowMask`] per filter (`X = x`), per subspace
//!   (conjunction) and per predicate clause (disjunction of filters on one
//!   attribute), stored behind `Arc` so concurrent searches share them;
//! * **partial aggregates** — per *(side, measure, clause, complement)* the
//!   `(rows, count, sum, min, max)` tuple a [`PartialAgg`] carries, from
//!   which `Δ` under any aggregate function is derived arithmetically.
//!
//! Aggregates are computed with the word-parallel mask primitives
//! ([`RowMask::intersect_count`], [`RowMask::and_not_count`],
//! [`RowMask::iter_and`], [`RowMask::iter_and_not`]), so the inner loop never
//! materializes an intersection mask; selections that empty a side are
//! detected by popcount alone without touching the measure column.
//!
//! The cache is written once and shared freely: all methods take `&self`,
//! interior state lives behind [`parking_lot::RwLock`] maps, and hit/miss
//! counters are atomic.  One instance serves a single [`super::SearchContext`]
//! (private, per-attribute reuse), a whole query (cross-attribute reuse in
//! [`crate::pipeline::XInsight::explain`]) or a whole batch (cross-query
//! reuse in [`crate::pipeline::XInsight::explain_many`]).
//!
//! Lookups build an owned string key per probe (side, measure, clause
//! values); that is already far less allocation than the pre-cache engine's
//! one materialized union mask per probe, but a context-local layer keyed by
//! filter-index bitmasks would shave it further — a noted future
//! optimization, not yet needed at the scales the benchmarks cover.
//!
//! Entries are never evicted: the cache grows with the number of *distinct*
//! clauses probed, which is what turns repeated `Δ` terms into replays.
//! For the optimized strategies that is O(m²) small entries per attribute;
//! brute force probes O(2^m) clauses, bounded by
//! [`super::XPlainerOptions::max_brute_force_filters`] (the same knob that
//! bounds its running time).  Scope a cache to a batch — create a fresh one
//! per `explain_many` call, as the pipeline does — rather than holding one
//! forever.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use xinsight_data::{Aggregate, DataError, Dataset, Result, RowMask, Subspace};

/// Clause masks are memoized up to this many filter values; larger unions are
/// built transiently instead.  Rationale: a partial aggregate is computed at
/// most once per (side, clause, complement) key, so a clause mask is needed
/// only a handful of times ever — but brute force enumerates `2^m` clauses,
/// and retaining one `n_rows`-bit mask per clause in a never-evicted cache
/// would pin hundreds of MB on large datasets.  Short clauses (the ones every
/// strategy and attribute re-probes) stay shared; long tails stay transient.
const MAX_CACHED_CLAUSE_VALUES: usize = 2;

/// Key of one memoized row mask.
#[derive(Debug, Clone, Hash, PartialEq, Eq)]
enum MaskKey {
    /// A single equality filter `attribute = value`.
    Filter { attribute: String, value: String },
    /// A subspace (conjunction), keyed by its canonical display form.
    Subspace(String),
    /// A predicate clause: disjunction of filters on one attribute, values
    /// sorted.
    Clause {
        attribute: String,
        values: Vec<String>,
    },
}

/// Key of one memoized partial aggregate.
#[derive(Debug, Clone, Hash, PartialEq, Eq)]
struct PartialKey {
    /// Canonical key of the sibling-subspace side the aggregate is scoped to.
    side: String,
    /// The aggregated measure.
    measure: String,
    /// Attribute the clause ranges over (empty for the empty clause, which
    /// references no attribute and is shared across attributes).
    attribute: String,
    /// Sorted, deduplicated clause values.
    values: Vec<String>,
    /// `false` → aggregate over `side ∩ clause`; `true` → over
    /// `side − clause` (the paper's `D − D_P` selections).
    complement: bool,
}

/// The sufficient statistics of a measure over one selection: every aggregate
/// the data model supports is derived from this tuple, so SUM, AVG, COUNT,
/// MIN and MAX probes of the same selection share one cache entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialAgg {
    /// Number of selected rows (including rows whose measure is missing).
    pub rows: usize,
    /// Number of selected rows with a non-missing measure value.
    pub count: usize,
    /// Sum of the non-missing measure values.
    pub sum: f64,
    /// Minimum of the non-missing measure values (`∞` when `count == 0`).
    pub min: f64,
    /// Maximum of the non-missing measure values (`−∞` when `count == 0`).
    pub max: f64,
}

impl PartialAgg {
    const EMPTY: PartialAgg = PartialAgg {
        rows: 0,
        count: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };

    /// The value of `aggregate` over this selection, or `None` when the
    /// aggregate is undefined on an empty selection (AVG / MIN / MAX;
    /// SUM and COUNT of an empty selection are 0, mirroring
    /// [`Aggregate::eval`]).
    pub fn value(&self, aggregate: Aggregate) -> Option<f64> {
        match aggregate {
            Aggregate::Sum => Some(self.sum),
            Aggregate::Count => Some(self.count as f64),
            Aggregate::Avg => (self.count > 0).then(|| self.sum / self.count as f64),
            Aggregate::Min => (self.count > 0).then_some(self.min),
            Aggregate::Max => (self.count > 0).then_some(self.max),
        }
    }
}

/// Shared, thread-safe memoization of filter/subspace/clause masks and
/// partial aggregates (see the module docs for the design).
#[derive(Debug, Default)]
pub struct SelectionCache {
    masks: RwLock<HashMap<MaskKey, Arc<RowMask>>>,
    partials: RwLock<HashMap<PartialKey, PartialAgg>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Fingerprint of the dataset this cache was first used with; every
    /// entry is only valid against that dataset, so later calls with a
    /// detectably different one are rejected instead of replaying wrong
    /// answers (heuristic — see [`DatasetFingerprint`]'s limits).
    dataset: OnceLock<DatasetFingerprint>,
    /// Address of the last dataset that passed the fingerprint check — a
    /// fast path so repeated checks against the *same* `&Dataset` (the
    /// common case: one engine, one batch) skip rehashing its contents.
    checked_ptr: AtomicUsize,
}

/// An identity check for "same dataset as before": row count, an FNV-1a hash
/// of the schema's attribute names and every dimension's category dictionary,
/// and a content hash — over **all** rows for datasets up to
/// [`FINGERPRINT_FULL_SCAN_ROWS`] rows, over a fixed evenly-spaced sample of
/// [`FINGERPRINT_SAMPLE_ROWS`] rows above that.
///
/// This is a *heuristic* guard, not a cryptographic guarantee: for large
/// datasets, two that agree on shape, every dimension dictionary and every
/// sampled row are indistinguishable.  It reliably catches the realistic
/// misuses (different source data, different seed, re-binned or re-coded
/// columns); callers must still follow the documented rule of one cache per
/// dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DatasetFingerprint {
    n_rows: usize,
    schema_hash: u64,
    content_hash: u64,
}

/// Datasets up to this many rows are content-hashed in full.
const FINGERPRINT_FULL_SCAN_ROWS: usize = 4096;
/// Larger datasets are content-hashed over this many evenly-spaced rows.
const FINGERPRINT_SAMPLE_ROWS: usize = 64;

impl DatasetFingerprint {
    fn of(data: &Dataset) -> Self {
        let fnv = |hash: &mut u64, byte: u8| {
            *hash ^= byte as u64;
            *hash = hash.wrapping_mul(0x100000001b3);
        };
        let fnv_u64 = |hash: &mut u64, word: u64| {
            for byte in word.to_le_bytes() {
                fnv(hash, byte);
            }
        };
        // Schema: attribute names plus each dimension's category dictionary
        // (dictionaries capture most content divergence — different data
        // almost always codes differently).
        let mut schema_hash: u64 = 0xcbf29ce484222325;
        for idx in 0..data.n_attributes() {
            for b in data.schema().names()[idx].bytes() {
                fnv(&mut schema_hash, b);
            }
            fnv(&mut schema_hash, 0xff); // attribute separator
            if let xinsight_data::Column::Dimension(col) = data.column(idx) {
                for category in col.categories() {
                    for b in category.bytes() {
                        fnv(&mut schema_hash, b);
                    }
                    fnv(&mut schema_hash, 0xfe); // category separator
                }
            }
        }
        // Content: full scan for small datasets, evenly-spaced sample above.
        let mut content_hash: u64 = 0xcbf29ce484222325;
        let n = data.n_rows();
        let (step, take) = if n <= FINGERPRINT_FULL_SCAN_ROWS {
            (1, n)
        } else {
            (n / FINGERPRINT_SAMPLE_ROWS, FINGERPRINT_SAMPLE_ROWS)
        };
        for row in (0..n).step_by(step.max(1)).take(take) {
            for idx in 0..data.n_attributes() {
                match data.column(idx) {
                    xinsight_data::Column::Dimension(col) => {
                        fnv_u64(&mut content_hash, col.code(row) as u64)
                    }
                    xinsight_data::Column::Measure(col) => {
                        fnv_u64(&mut content_hash, col.values()[row].to_bits())
                    }
                }
            }
        }
        DatasetFingerprint {
            n_rows: n,
            schema_hash,
            content_hash,
        }
    }
}

impl SelectionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SelectionCache::default()
    }

    /// Number of cache lookups (masks + partial aggregates) answered from
    /// memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache lookups that had to compute their entry.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct masks currently memoized.
    pub fn mask_entries(&self) -> usize {
        self.masks.read().len()
    }

    /// Number of distinct partial aggregates currently memoized.
    pub fn partial_entries(&self) -> usize {
        self.partials.read().len()
    }

    /// A snapshot of the hit/miss counters and the total entry count
    /// (masks + partial aggregates) in the engine-wide
    /// [`CacheStats`](xinsight_stats::CacheStats) shape, for the serving
    /// layer's `/stats` endpoint and the benches.
    pub fn stats(&self) -> xinsight_stats::CacheStats {
        xinsight_stats::CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            entries: self.mask_entries() + self.partial_entries(),
        }
    }

    /// Checks that `data` is the dataset this cache serves (latching it on
    /// first use); every public method calls this before touching entries.
    /// Crate-internal hot paths call it once per search context and then use
    /// the `_trusted` variants.
    pub(super) fn ensure_dataset(&self, data: &Dataset) -> Result<()> {
        let ptr = data as *const Dataset as usize;
        if self.checked_ptr.load(Ordering::Relaxed) == ptr {
            // Same allocation as the last accepted dataset: skip rehashing.
            // (A different dataset reallocated at the same address while the
            // cache lives is possible in principle; the fingerprint itself is
            // already a heuristic, and this shortcut only widens it for
            // callers who dropped one borrowed dataset mid-batch.)
            return Ok(());
        }
        let fingerprint = DatasetFingerprint::of(data);
        let latched = self.dataset.get_or_init(|| fingerprint);
        if *latched == fingerprint {
            self.checked_ptr.store(ptr, Ordering::Relaxed);
            Ok(())
        } else {
            Err(DataError::DatasetMismatch(format!(
                "SelectionCache was built against a dataset with {} rows \
                 (schema {:#x}, content {:#x}) but was queried with one with \
                 {} rows (schema {:#x}, content {:#x}); use one cache per \
                 dataset",
                latched.n_rows,
                latched.schema_hash,
                latched.content_hash,
                fingerprint.n_rows,
                fingerprint.schema_hash,
                fingerprint.content_hash
            )))
        }
    }

    fn mask_or_insert(
        &self,
        key: MaskKey,
        build: impl FnOnce() -> Result<RowMask>,
    ) -> Result<Arc<RowMask>> {
        if let Some(mask) = self.masks.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(mask));
        }
        let mask = Arc::new(build()?);
        // A concurrent search may have raced us here; both compute the same
        // mask.  As with partial aggregates, occupancy under the write lock
        // decides who counts the miss, keeping counters deterministic.
        match self.masks.write().entry(key) {
            std::collections::hash_map::Entry::Occupied(existing) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(existing.get()))
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(slot.insert(mask)))
            }
        }
    }

    /// The row mask of one equality filter `attribute = value`.
    pub fn filter_mask(
        &self,
        data: &Dataset,
        attribute: &str,
        value: &str,
    ) -> Result<Arc<RowMask>> {
        self.ensure_dataset(data)?;
        self.filter_mask_trusted(data, attribute, value)
    }

    pub(super) fn filter_mask_trusted(
        &self,
        data: &Dataset,
        attribute: &str,
        value: &str,
    ) -> Result<Arc<RowMask>> {
        self.mask_or_insert(
            MaskKey::Filter {
                attribute: attribute.to_owned(),
                value: value.to_owned(),
            },
            || xinsight_data::Filter::equals(attribute, value).mask(data),
        )
    }

    /// The row mask of a subspace (conjunction of filters).
    pub fn subspace_mask(&self, data: &Dataset, subspace: &Subspace) -> Result<Arc<RowMask>> {
        self.ensure_dataset(data)?;
        self.subspace_mask_trusted(data, subspace)
    }

    pub(super) fn subspace_mask_trusted(
        &self,
        data: &Dataset,
        subspace: &Subspace,
    ) -> Result<Arc<RowMask>> {
        self.mask_or_insert(MaskKey::Subspace(subspace_key(subspace)), || {
            subspace.mask(data)
        })
    }

    /// The row mask of a predicate clause: the union of the given filters on
    /// one attribute.  `values` must be sorted and deduplicated (the caller's
    /// canonical clause form).  The empty clause selects no rows.
    ///
    /// Clauses up to `MAX_CACHED_CLAUSE_VALUES` values are memoized; larger
    /// unions are built transiently (see that constant's docs for why).
    pub fn clause_mask(
        &self,
        data: &Dataset,
        attribute: &str,
        values: &[String],
    ) -> Result<Arc<RowMask>> {
        self.ensure_dataset(data)?;
        self.clause_mask_trusted(data, attribute, values)
    }

    fn clause_mask_trusted(
        &self,
        data: &Dataset,
        attribute: &str,
        values: &[String],
    ) -> Result<Arc<RowMask>> {
        if let [value] = values {
            // A single-filter clause *is* its filter mask; no second entry.
            return self.filter_mask_trusted(data, attribute, value);
        }
        let build_union = || {
            let mut mask = RowMask::zeros(data.n_rows());
            for value in values {
                let filter = self.filter_mask_trusted(data, attribute, value)?;
                mask = mask.or(&filter);
            }
            Ok(mask)
        };
        if values.len() > MAX_CACHED_CLAUSE_VALUES {
            return Ok(Arc::new(build_union()?));
        }
        self.mask_or_insert(
            MaskKey::Clause {
                attribute: attribute.to_owned(),
                values: values.to_vec(),
            },
            build_union,
        )
    }

    /// The partial aggregate of `measure` over `side ∩ clause`
    /// (or `side − clause` when `complement` is set), memoized.
    ///
    /// Returns the statistics and whether they were freshly computed (`true`
    /// on a cache miss) — the search context uses the flag to count actual
    /// `Δ(·)` evaluations as opposed to cache replays.
    #[allow(clippy::too_many_arguments)]
    pub fn partial_agg(
        &self,
        data: &Dataset,
        measure: &str,
        side_key: &str,
        side: &RowMask,
        attribute: &str,
        values: &[String],
        complement: bool,
    ) -> Result<(PartialAgg, bool)> {
        self.ensure_dataset(data)?;
        self.partial_agg_trusted(data, measure, side_key, side, attribute, values, complement)
    }

    /// [`SelectionCache::partial_agg`] without the per-call dataset check —
    /// for hot-path callers (the search context) that validated the dataset
    /// once at construction and hold it for their whole lifetime.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn partial_agg_trusted(
        &self,
        data: &Dataset,
        measure: &str,
        side_key: &str,
        side: &RowMask,
        attribute: &str,
        values: &[String],
        complement: bool,
    ) -> Result<(PartialAgg, bool)> {
        let key = PartialKey {
            side: side_key.to_owned(),
            measure: measure.to_owned(),
            // The empty clause selects nothing regardless of attribute; key it
            // attribute-free so e.g. Δ(D) probes are shared across attributes.
            attribute: if values.is_empty() {
                String::new()
            } else {
                attribute.to_owned()
            },
            values: values.to_vec(),
            complement,
        };
        if let Some(stats) = self.partials.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((*stats, false));
        }
        let clause = self.clause_mask_trusted(data, attribute, values)?;
        let stats = compute_partial(data, measure, side, &clause, complement)?;
        // Freshness is decided by entry occupancy under the write lock: when
        // two workers race on the same key, both compute (same inputs → same
        // stats) but exactly one reports `fresh = true`, so each distinct key
        // is counted as a miss exactly once.  (A caller aggregating over the
        // two per-side keys of one Δ term can still attribute a racy term to
        // two workers — see `SearchContext::evaluations`.)
        match self.partials.write().entry(key) {
            std::collections::hash_map::Entry::Occupied(existing) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok((*existing.get(), false))
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                slot.insert(stats);
                Ok((stats, true))
            }
        }
    }
}

/// Canonical cache key of a subspace: its sorted `attr = value` display form.
fn subspace_key(subspace: &Subspace) -> String {
    subspace.to_string()
}

/// Aggregates `measure` over `side ∩ clause` (or `side − clause`) using the
/// word-parallel mask primitives; no intermediate mask is materialized.
fn compute_partial(
    data: &Dataset,
    measure: &str,
    side: &RowMask,
    clause: &RowMask,
    complement: bool,
) -> Result<PartialAgg> {
    let column = data.measure(measure)?;
    // Popcount-only emptiness probe: selections that wipe out a side (the
    // common case deep in the greedy/brute loops) never touch the column.
    let rows = if complement {
        side.and_not_count(clause)
    } else {
        side.intersect_count(clause)
    };
    if rows == 0 {
        return Ok(PartialAgg::EMPTY);
    }
    let mut stats = PartialAgg {
        rows,
        ..PartialAgg::EMPTY
    };
    let (mut kept, mut removed);
    let selected: &mut dyn Iterator<Item = usize> = if complement {
        removed = side.iter_and_not(clause);
        &mut removed
    } else {
        kept = side.iter_and(clause);
        &mut kept
    };
    for i in selected {
        if let Some(v) = column.value(i) {
            stats.count += 1;
            stats.sum += v;
            stats.min = stats.min.min(v);
            stats.max = stats.max.max(v);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{DatasetBuilder, Filter};

    fn data() -> Dataset {
        DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "b", "b", "b"])
            .dimension("Y", ["p", "q", "r", "p", "q", "r"])
            .measure("M", [10.0, 2.0, 3.0, 1.0, 5.0, 7.0])
            .build()
            .unwrap()
    }

    #[test]
    fn filter_masks_are_shared() {
        let d = data();
        let cache = SelectionCache::new();
        let m1 = cache.filter_mask(&d, "Y", "p").unwrap();
        let m2 = cache.filter_mask(&d, "Y", "p").unwrap();
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(m1.iter_selected().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn clause_mask_is_union_of_filters() {
        let d = data();
        let cache = SelectionCache::new();
        let values = vec!["p".to_owned(), "q".to_owned()];
        let clause = cache.clause_mask(&d, "Y", &values).unwrap();
        let by_hand = Filter::equals("Y", "p")
            .mask(&d)
            .unwrap()
            .or(&Filter::equals("Y", "q").mask(&d).unwrap());
        assert_eq!(*clause, by_hand);
        // Single-value clauses alias the filter-mask entry.
        let single = cache.clause_mask(&d, "Y", &["r".to_owned()]).unwrap();
        let filter = cache.filter_mask(&d, "Y", "r").unwrap();
        assert!(Arc::ptr_eq(&single, &filter));
    }

    #[test]
    fn partial_aggregates_match_direct_aggregation() {
        let d = data();
        let cache = SelectionCache::new();
        let side = Filter::equals("X", "a").mask(&d).unwrap();
        let values = vec!["p".to_owned(), "q".to_owned()];
        let (stats, fresh) = cache
            .partial_agg(&d, "M", "X = a", &side, "Y", &values, false)
            .unwrap();
        assert!(fresh);
        // X = a ∩ Y ∈ {p, q} selects rows 0 and 1: M = 10, 2.
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.count, 2);
        assert_eq!(stats.sum, 12.0);
        assert_eq!(stats.value(Aggregate::Avg), Some(6.0));
        assert_eq!(stats.value(Aggregate::Min), Some(2.0));
        assert_eq!(stats.value(Aggregate::Max), Some(10.0));
        assert_eq!(stats.value(Aggregate::Count), Some(2.0));
        // Complement: X = a − Y ∈ {p, q} selects row 2 only.
        let (rest, _) = cache
            .partial_agg(&d, "M", "X = a", &side, "Y", &values, true)
            .unwrap();
        assert_eq!(rest.rows, 1);
        assert_eq!(rest.value(Aggregate::Sum), Some(3.0));
        // Replay hits the cache.
        let (again, fresh) = cache
            .partial_agg(&d, "M", "X = a", &side, "Y", &values, false)
            .unwrap();
        assert!(!fresh);
        assert_eq!(again, stats);
    }

    #[test]
    fn empty_selection_semantics_mirror_aggregate_eval() {
        let d = data();
        let cache = SelectionCache::new();
        let side = Filter::equals("X", "a").mask(&d).unwrap();
        // The empty clause intersected with anything is empty…
        let (none, _) = cache
            .partial_agg(&d, "M", "X = a", &side, "Y", &[], false)
            .unwrap();
        assert_eq!(none.rows, 0);
        assert_eq!(none.value(Aggregate::Sum), Some(0.0));
        assert_eq!(none.value(Aggregate::Count), Some(0.0));
        assert_eq!(none.value(Aggregate::Avg), None);
        assert_eq!(none.value(Aggregate::Min), None);
        // …and its complement is the side itself.
        let (all, _) = cache
            .partial_agg(&d, "M", "X = a", &side, "Y", &[], true)
            .unwrap();
        assert_eq!(all.rows, 3);
        assert_eq!(all.value(Aggregate::Sum), Some(15.0));
    }

    #[test]
    fn empty_clause_entry_is_shared_across_attributes() {
        let d = data();
        let cache = SelectionCache::new();
        let side = Filter::equals("X", "b").mask(&d).unwrap();
        let (_, fresh_y) = cache
            .partial_agg(&d, "M", "X = b", &side, "Y", &[], true)
            .unwrap();
        let (_, fresh_x) = cache
            .partial_agg(&d, "M", "X = b", &side, "X", &[], true)
            .unwrap();
        assert!(fresh_y);
        assert!(!fresh_x, "empty clause must be keyed attribute-free");
    }

    #[test]
    fn missing_measure_values_are_skipped() {
        let d = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a"])
            .measure_column(
                "M",
                xinsight_data::MeasureColumn::from_optional_values([Some(4.0), None, Some(6.0)]),
            )
            .build()
            .unwrap();
        let cache = SelectionCache::new();
        let side = d.all_rows();
        let (stats, _) = cache
            .partial_agg(&d, "M", "all", &side, "", &[], true)
            .unwrap();
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.count, 2);
        assert_eq!(stats.value(Aggregate::Avg), Some(5.0));
    }

    #[test]
    fn unknown_measure_is_an_error() {
        let d = data();
        let cache = SelectionCache::new();
        let side = d.all_rows();
        assert!(cache
            .partial_agg(&d, "nope", "all", &side, "Y", &[], false)
            .is_err());
    }

    #[test]
    fn reuse_with_a_different_dataset_is_rejected() {
        let d = data();
        let cache = SelectionCache::new();
        cache.filter_mask(&d, "Y", "p").unwrap();
        // Identical dataset (same schema, rows and contents) → accepted.
        let identical = data();
        assert!(cache.filter_mask(&identical, "Y", "q").is_ok());
        // Same shape but different contents → rejected (content hash).
        let same_shape = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "b", "b", "b"])
            .dimension("Y", ["q", "q", "r", "p", "p", "r"])
            .measure("M", [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .build()
            .unwrap();
        assert!(matches!(
            cache.filter_mask(&same_shape, "Y", "p"),
            Err(DataError::DatasetMismatch(_))
        ));
        // Different row count → rejected with a DatasetMismatch error.
        let shorter = DatasetBuilder::new()
            .dimension("X", ["a", "b"])
            .dimension("Y", ["p", "q"])
            .measure("M", [1.0, 2.0])
            .build()
            .unwrap();
        assert!(matches!(
            cache.filter_mask(&shorter, "Y", "p"),
            Err(DataError::DatasetMismatch(_))
        ));
        // Different schema (even with the fingerprinted row count) → rejected.
        let renamed = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "b", "b", "b"])
            .dimension("Z", ["p", "q", "r", "p", "q", "r"])
            .measure("M", [10.0, 2.0, 3.0, 1.0, 5.0, 7.0])
            .build()
            .unwrap();
        assert!(matches!(
            cache.subspace_mask(&renamed, &Subspace::of("X", "a")),
            Err(DataError::DatasetMismatch(_))
        ));
    }

    #[test]
    fn long_clauses_are_not_retained_in_the_mask_layer() {
        let d = data();
        let cache = SelectionCache::new();
        let side = Filter::equals("X", "a").mask(&d).unwrap();
        // A 3-value clause (> MAX_CACHED_CLAUSE_VALUES): its union mask must
        // be transient, while its partial aggregate is still memoized.
        let long: Vec<String> = ["p", "q", "r"].iter().map(|s| s.to_string()).collect();
        let (_, fresh) = cache
            .partial_agg(&d, "M", "X = a", &side, "Y", &long, false)
            .unwrap();
        assert!(fresh);
        let masks_after_long = cache.mask_entries();
        let (_, replay) = cache
            .partial_agg(&d, "M", "X = a", &side, "Y", &long, false)
            .unwrap();
        assert!(!replay, "partial aggregates of long clauses are memoized");
        assert_eq!(
            cache.mask_entries(),
            masks_after_long,
            "long clause unions must not accumulate in the mask layer"
        );
        // Only the three constituent filter masks were stored, no 3-value
        // clause entry.
        assert_eq!(masks_after_long, 3);
        // A 2-value clause is still shared.
        let short: Vec<String> = ["p", "q"].iter().map(|s| s.to_string()).collect();
        let first = cache.clause_mask(&d, "Y", &short).unwrap();
        let second = cache.clause_mask(&d, "Y", &short).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
    }
}
