//! The AVG optimization (Alg. 2 of the paper): greedy canonical-predicate
//! construction with homogeneity-based pruning.
//!
//! AVG lacks the additivity that makes the SUM search closed-form, so Alg. 2
//! grows a canonical predicate `P_C` greedily — in each round inserting the
//! filter whose removal shrinks the remaining difference the most — until the
//! remainder drops below `ε`.  When the sibling subspaces are *homogeneous* on
//! the attribute (Def. 3.7, checked by the caller against the causal graph),
//! Prop. 3.4 justifies pruning candidate filters whose own `Δ_i` does not
//! exceed the current remainder.  Every prefix `P_k` of `P_C` is then an
//! actual cause with the suffix as contingency, and the best
//! `ρ̂_{P_k} − σ·|P_k|` is returned.  Total cost `O(m²)` Δ-evaluations.

use super::context::SearchContext;
use super::{map_items, ExplanationCandidate};

/// Runs the AVG-optimized greedy search (Alg. 2).
pub fn search(ctx: &SearchContext<'_>, homogeneous: bool) -> Option<ExplanationCandidate> {
    let m = ctx.m();
    if ctx.delta_d() <= 0.0 {
        return None;
    }
    // Δ_i is invariant throughout the greedy loop (queried once, line 7 note);
    // the m probes are independent and fan out over the thread pool.
    let per_filter_delta: Vec<Option<f64>> =
        map_items(ctx.parallel(), (0..m).collect(), |i| ctx.delta_of(&[i]));

    let max_len = ((1.0 / ctx.sigma()).floor() as usize).clamp(1, m);
    let mut canonical: Vec<usize> = Vec::new();
    let mut remaining = Some(ctx.delta_d());

    for _round in 0..max_len {
        if ctx.is_resolved(remaining) {
            break;
        }
        let available: Vec<usize> = (0..m).filter(|i| !canonical.contains(i)).collect();
        if available.is_empty() {
            break;
        }
        // Homogeneity pruning (Prop. 3.4): only filters whose own Δ_i exceeds
        // the current remainder can reduce it.
        let candidates: Vec<usize> = if homogeneous {
            let threshold = remaining.unwrap_or(f64::NEG_INFINITY);
            let pruned: Vec<usize> = available
                .iter()
                .copied()
                .filter(|&i| match per_filter_delta[i] {
                    Some(d) => d > threshold,
                    None => false,
                })
                .collect();
            if pruned.is_empty() {
                available.clone()
            } else {
                pruned
            }
        } else {
            available.clone()
        };
        // Greedy step: insert the filter minimising Δ(D − D_{P_C} − D_p).
        // Trials are independent; evaluate them in parallel, then pick the
        // winner with the serial scan's exact tie-breaking (first strictly
        // smaller value in candidate order) so parallelism cannot change the
        // chosen predicate.
        let trials: Vec<(usize, f64)> = map_items(ctx.parallel(), candidates, |i| {
            let mut trial = canonical.clone();
            trial.push(i);
            // An undefined remainder (one side emptied) must never be chosen.
            (i, ctx.delta_without(&trial).unwrap_or(f64::INFINITY))
        });
        let mut best: Option<(usize, f64)> = None;
        for (i, value) in trials {
            match best {
                Some((_, b)) if b <= value => {}
                _ => best = Some((i, value)),
            }
        }
        let Some((chosen, _)) = best else { break };
        canonical.push(chosen);
        remaining = ctx.delta_without(&canonical);
    }

    if !ctx.is_resolved(remaining) {
        // Line 15 of Alg. 2: no valid canonical predicate within the budget.
        return None;
    }
    if canonical.is_empty() {
        return None;
    }

    // Lines 16–21: evaluate every prefix P_k with the suffix as contingency.
    let mut best: Option<(f64, ExplanationCandidate)> = None;
    for k in 1..=canonical.len() {
        let p_k: Vec<usize> = canonical[..k].to_vec();
        let gamma: Vec<usize> = canonical[k..].to_vec();
        // Validity of P_k as an actual cause: Δ(D − D_Γ) must still exceed ε.
        let without_gamma = ctx.delta_without(&gamma);
        if !matches!(without_gamma, Some(d) if d > ctx.epsilon()) && !gamma.is_empty() {
            continue;
        }
        let weight = ctx.contingency_weight(&p_k, &gamma);
        let responsibility = 1.0 / (1.0 + weight);
        let score = responsibility - ctx.sigma() * k as f64;
        if score <= 1e-12 {
            continue;
        }
        let better = match &best {
            Some((s, _)) => score > *s + 1e-12,
            None => true,
        };
        if better {
            best = Some((
                score,
                ExplanationCandidate {
                    predicate: ctx.predicate_of(&p_k),
                    responsibility,
                    contingency: if gamma.is_empty() {
                        None
                    } else {
                        Some(ctx.predicate_of(&gamma))
                    },
                    remaining_delta: ctx.delta_without(&p_k),
                    n_delta_evaluations: 0,
                },
            ));
        }
    }
    best.map(|(_, mut c)| {
        c.n_delta_evaluations = ctx.evaluations();
        c
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::why_query::WhyQuery;
    use crate::xplainer::XPlainerOptions;
    use xinsight_data::{Aggregate, DatasetBuilder, SegmentedDataset, Subspace};

    /// SYN-B-style data: categories bad1/bad2 of Y push AVG(Z) up on the
    /// X = a side only.
    fn fixture() -> (SegmentedDataset, WhyQuery) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        for i in 0..120 {
            x.push("a");
            if i < 30 {
                y.push("bad1".to_owned());
                z.push(60.0);
            } else if i < 50 {
                y.push("bad2".to_owned());
                z.push(55.0);
            } else {
                y.push(format!("ok{}", i % 4));
                z.push(10.0);
            }
        }
        for i in 0..120 {
            x.push("b");
            y.push(format!("ok{}", i % 4));
            z.push(10.0);
        }
        let data = DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y.iter().map(String::as_str))
            .measure("Z", z)
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "Z",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        (data, query)
    }

    #[test]
    fn greedy_search_finds_planted_explanation() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let result = search(&ctx, true).expect("must find an explanation");
        assert!(result.predicate.contains("bad1"));
        assert!(result.predicate.contains("bad2"));
        assert!(!result.predicate.contains("ok0"));
        assert!(result.responsibility > 0.5);
        // Remaining difference after removing the explanation is small.
        assert!(result.remaining_delta.unwrap() <= ctx.epsilon());
    }

    #[test]
    fn homogeneity_pruning_reduces_cost_but_not_the_answer() {
        let (data, query) = fixture();
        let opts = XPlainerOptions::default();
        let ctx_hom = SearchContext::build(&data, &query, "Y", &opts).unwrap();
        let hom = search(&ctx_hom, true).expect("explanation with pruning");
        let ctx_het = SearchContext::build(&data, &query, "Y", &opts).unwrap();
        let het = search(&ctx_het, false).expect("explanation without pruning");
        assert_eq!(hom.predicate.values(), het.predicate.values());
        assert!(hom.n_delta_evaluations <= het.n_delta_evaluations);
    }

    #[test]
    fn single_dominant_filter_gets_full_responsibility() {
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "b", "b", "b"])
            .dimension("Y", ["spike", "norm", "norm", "norm", "norm", "spike"])
            .measure("Z", [90.0, 10.0, 10.0, 10.0, 10.0, 11.0])
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "Z",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let result = search(&ctx, true).expect("must find an explanation");
        assert_eq!(result.predicate.values(), ["spike"]);
        assert!((result.responsibility - 1.0).abs() < 1e-9);
        assert!(result.contingency.is_none());
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // With σ forced to 1, only one filter may be selected; a single filter
        // cannot resolve this difference, so Alg. 2 reports ⊥ (None).
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "a", "b", "b", "b", "b"])
            .dimension("Y", ["u", "u", "v", "v", "w", "w", "w", "w"])
            .measure("Z", [50.0, 50.0, 50.0, 50.0, 10.0, 10.0, 10.0, 10.0])
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "Z",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let opts = XPlainerOptions {
            sigma: Some(1.0),
            epsilon: Some(0.5),
            ..XPlainerOptions::default()
        };
        let ctx = SearchContext::build(&data, &query, "Y", &opts).unwrap();
        // Removing u alone leaves v rows at 50 vs w rows at 10 (Δ = 40 > ε);
        // the single allowed round cannot resolve the query.
        assert!(search(&ctx, true).is_none());
    }

    #[test]
    fn non_positive_delta_returns_none() {
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "b"])
            .dimension("Y", ["u", "u"])
            .measure("Z", [1.0, 1.0])
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "Z",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        assert!(search(&ctx, true).is_none());
    }
}
