//! XPlainer (Sec. 3.3): predicate-level quantitative explanations via an
//! adaptation of DB causality.
//!
//! Given a Why Query `Δ` and an attribute of interest `X`, XPlainer searches
//! for the predicate `P` over `X`'s filters that maximises
//! `ρ_P − σ·|P|` (Eqn. 4), where `ρ_P` is the W-Responsibility of `P`
//! (Def. 3.5) and `σ` is the conciseness regulariser.
//!
//! Three search strategies are provided, mirroring Table 4 of the paper:
//!
//! * [`SearchStrategy::BruteForce`] — exact, `O(2^m)`, any aggregate;
//! * the SUM optimization (`O(m log m)`, canonical predicates, Props. 3.2/3.3,
//!   Thms. 3.3/3.4);
//! * the AVG optimization (`O(m²)` greedy, Alg. 2, with the homogeneity
//!   pruning of Prop. 3.4).
//!
//! [`SearchStrategy::Optimized`] picks the appropriate optimization from the
//! query's aggregate and falls back to brute force for aggregates the paper
//! does not optimise (MIN/MAX).

mod avg;
mod brute;
mod cache;
mod context;
mod sum;

pub use cache::SelectionCache;
pub use context::SearchContext;

use crate::why_query::WhyQuery;
use rayon::prelude::*;
use std::sync::Arc;
use xinsight_data::{Aggregate, Predicate, Result, SegmentedDataset};

/// How XPlainer searches for the optimal explanation on one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Exhaustive search over all predicates and contingencies (exact but
    /// exponential; refuses to run above
    /// [`XPlainerOptions::max_brute_force_filters`]).
    BruteForce,
    /// The paper's aggregate-specific optimizations (SUM: canonical
    /// predicates; AVG: greedy Alg. 2).
    Optimized,
}

/// Options controlling XPlainer.
#[derive(Debug, Clone)]
pub struct XPlainerOptions {
    /// Absolute threshold `ε` below which the remaining difference counts as
    /// "explained away".  When `None`, `ε = epsilon_fraction · Δ(D)`.
    pub epsilon: Option<f64>,
    /// Relative threshold used when [`XPlainerOptions::epsilon`] is `None`.
    pub epsilon_fraction: f64,
    /// Conciseness regulariser `σ`.  When `None`, `σ = 1/m` (the paper's
    /// recommendation, so that selecting every filter scores zero).
    pub sigma: Option<f64>,
    /// Upper bound on the number of filters brute force will accept.
    pub max_brute_force_filters: usize,
    /// Whether the strategies' independent `Δ(·)` probe loops (per-filter
    /// contributions, greedy trials, brute-force predicates) fan out over the
    /// rayon thread pool.  The chosen explanation is identical either way.
    pub parallel: bool,
}

impl Default for XPlainerOptions {
    fn default() -> Self {
        XPlainerOptions {
            epsilon: None,
            epsilon_fraction: 0.1,
            sigma: None,
            max_brute_force_filters: 14,
            parallel: true,
        }
    }
}

/// Maps `f` over `items` — in parallel over the thread pool when `parallel`
/// is set, serially otherwise — always preserving input order, so callers see
/// identical results on either path.
pub(crate) fn map_items<I, T, F>(parallel: bool, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    if parallel {
        items.into_par_iter().map(f).collect()
    } else {
        items.into_iter().map(f).collect()
    }
}

/// The outcome of searching one attribute: the best predicate found, its
/// responsibility and the certifying contingency.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplanationCandidate {
    /// The explanation predicate `P`.
    pub predicate: Predicate,
    /// (Approximate) W-Responsibility of `P`.
    pub responsibility: f64,
    /// The contingency `Γ` used to certify `P` as an actual cause (empty /
    /// `None` when `P` is itself a counterfactual cause).
    pub contingency: Option<Predicate>,
    /// `Δ(D − D_P)` for reporting (None when a sibling side became empty).
    pub remaining_delta: Option<f64>,
    /// Number of `Δ(·)` evaluations spent by the search — the cost metric the
    /// scalability experiment tracks alongside wall-clock time.
    pub n_delta_evaluations: usize,
}

/// The XPlainer module.
#[derive(Debug, Clone, Default)]
pub struct XPlainer {
    options: XPlainerOptions,
}

impl XPlainer {
    /// Creates an XPlainer with the given options.
    pub fn new(options: XPlainerOptions) -> Self {
        XPlainer { options }
    }

    /// The options this explainer was built with.
    pub fn options(&self) -> &XPlainerOptions {
        &self.options
    }

    /// Searches the optimal explanation for `query` within the filters of
    /// `attribute`, over every segment of `store`.
    ///
    /// `homogeneous` states whether the sibling subspaces are homogeneous on
    /// the attribute (Def. 3.7) — the caller derives this from the causal
    /// graph; it only affects the AVG pruning.  Returns `Ok(None)` when the
    /// attribute admits no (counterfactual or actual) cause at the configured
    /// `ε`.  The result is bit-identical for any segmentation of the same
    /// rows (the per-segment partials merge exactly).
    pub fn explain_attribute(
        &self,
        store: &SegmentedDataset,
        query: &WhyQuery,
        attribute: &str,
        strategy: SearchStrategy,
        homogeneous: bool,
    ) -> Result<Option<ExplanationCandidate>> {
        self.explain_attribute_cached(
            store,
            query,
            attribute,
            strategy,
            homogeneous,
            Arc::new(SelectionCache::new()),
        )
    }

    /// Like [`XPlainer::explain_attribute`], but answering every `Δ(·)` term
    /// through a shared [`SelectionCache`], so per-segment masks and partial
    /// aggregates built here are reused by searches over other attributes
    /// (and other queries) holding the same cache.  This is the entry point
    /// the batched [`crate::pipeline::XInsight::execute_batch`] engine uses.
    #[allow(clippy::too_many_arguments)]
    pub fn explain_attribute_cached(
        &self,
        store: &SegmentedDataset,
        query: &WhyQuery,
        attribute: &str,
        strategy: SearchStrategy,
        homogeneous: bool,
        cache: Arc<SelectionCache>,
    ) -> Result<Option<ExplanationCandidate>> {
        let ctx = SearchContext::build_with_cache(store, query, attribute, &self.options, cache)?;
        if ctx.m() == 0 || ctx.delta_d() <= ctx.epsilon() {
            // Either nothing to explain or the difference is already below ε.
            return Ok(None);
        }
        let candidate = match strategy {
            SearchStrategy::BruteForce => {
                if ctx.m() > self.options.max_brute_force_filters {
                    return Err(xinsight_data::DataError::InvalidBinning(format!(
                        "brute-force search over {} filters exceeds the configured cap of {}",
                        ctx.m(),
                        self.options.max_brute_force_filters
                    )));
                }
                brute::search(&ctx)
            }
            SearchStrategy::Optimized => match query.aggregate() {
                Aggregate::Sum | Aggregate::Count => sum::search(&ctx),
                Aggregate::Avg => avg::search(&ctx, homogeneous),
                _ => {
                    if ctx.m() <= self.options.max_brute_force_filters {
                        brute::search(&ctx)
                    } else {
                        None
                    }
                }
            },
        };
        Ok(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{DatasetBuilder, Subspace};

    /// A dataset where `Y ∈ {bad1, bad2}` drives the difference of AVG(Z)
    /// between X = a and X = b (a miniature SYN-B, Sec. 8.12 of the paper).
    fn synb_like() -> (SegmentedDataset, WhyQuery) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        // X = a rows: 40 rows in bad categories with high Z, 60 normal.
        for i in 0..100 {
            x.push("a");
            if i < 20 {
                y.push("bad1");
                z.push(60.0);
            } else if i < 40 {
                y.push("bad2");
                z.push(55.0);
            } else {
                y.push(["ok1", "ok2", "ok3"][i % 3]);
                z.push(10.0);
            }
        }
        // X = b rows: only normal categories.
        for i in 0..100 {
            x.push("b");
            y.push(["ok1", "ok2", "ok3"][i % 3]);
            z.push(10.0);
        }
        let data = DatasetBuilder::new()
            .dimension("X", x)
            .dimension("Y", y)
            .measure("Z", z)
            .build()
            .unwrap();
        let query = WhyQuery::new(
            "Z",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        (SegmentedDataset::from_dataset(data), query)
    }

    #[test]
    fn avg_optimized_finds_the_planted_explanation() {
        let (data, query) = synb_like();
        let xplainer = XPlainer::default();
        let candidate = xplainer
            .explain_attribute(&data, &query, "Y", SearchStrategy::Optimized, true)
            .unwrap()
            .expect("an explanation must exist");
        assert_eq!(candidate.predicate.attribute(), "Y");
        assert!(candidate.predicate.contains("bad1"));
        assert!(candidate.predicate.contains("bad2"));
        assert!(!candidate.predicate.contains("ok1"));
        assert!(candidate.responsibility > 0.5);
    }

    #[test]
    fn brute_force_agrees_with_optimized_on_small_instances() {
        let (data, query) = synb_like();
        let xplainer = XPlainer::default();
        let brute = xplainer
            .explain_attribute(&data, &query, "Y", SearchStrategy::BruteForce, true)
            .unwrap()
            .expect("brute force must find an explanation");
        let opt = xplainer
            .explain_attribute(&data, &query, "Y", SearchStrategy::Optimized, true)
            .unwrap()
            .expect("optimized must find an explanation");
        assert_eq!(brute.predicate.values(), opt.predicate.values());
        // The optimized search must not be more expensive than brute force.
        assert!(opt.n_delta_evaluations <= brute.n_delta_evaluations);
    }

    #[test]
    fn sum_optimized_explains_sum_queries() {
        let (data, _) = synb_like();
        let query = WhyQuery::new(
            "Z",
            Aggregate::Sum,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let xplainer = XPlainer::default();
        let candidate = xplainer
            .explain_attribute(&data, &query, "Y", SearchStrategy::Optimized, true)
            .unwrap()
            .expect("an explanation must exist");
        assert!(candidate.predicate.contains("bad1"));
        assert!(candidate.predicate.contains("bad2"));
        assert!(candidate.responsibility > 0.5);
    }

    #[test]
    fn no_explanation_when_difference_is_below_epsilon() {
        let data = SegmentedDataset::from_dataset(
            DatasetBuilder::new()
                .dimension("X", ["a", "a", "b", "b"])
                .dimension("Y", ["u", "v", "u", "v"])
                .measure("Z", [1.0, 1.0, 1.0, 1.0])
                .build()
                .unwrap(),
        );
        let query = WhyQuery::new(
            "Z",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let xplainer = XPlainer::default();
        assert!(xplainer
            .explain_attribute(&data, &query, "Y", SearchStrategy::Optimized, true)
            .unwrap()
            .is_none());
    }

    #[test]
    fn brute_force_refuses_high_cardinality() {
        let n = 2000usize;
        let x: Vec<&str> = (0..n).map(|i| if i < 1000 { "a" } else { "b" }).collect();
        let y: Vec<String> = (0..n).map(|i| format!("v{}", i % 20)).collect();
        let z: Vec<f64> = (0..n).map(|i| if i < 1000 { 5.0 } else { 1.0 }).collect();
        let data = SegmentedDataset::from_dataset(
            DatasetBuilder::new()
                .dimension("X", x)
                .dimension("Y", y.iter().map(String::as_str))
                .measure("Z", z)
                .build()
                .unwrap(),
        );
        let query = WhyQuery::new(
            "Z",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let xplainer = XPlainer::default();
        assert!(xplainer
            .explain_attribute(&data, &query, "Y", SearchStrategy::BruteForce, true)
            .is_err());
        // The optimized path handles the same cardinality fine.
        assert!(xplainer
            .explain_attribute(&data, &query, "Y", SearchStrategy::Optimized, true)
            .is_ok());
    }
}
