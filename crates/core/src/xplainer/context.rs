//! Shared search state for the XPlainer strategies.

use super::XPlainerOptions;
use crate::why_query::WhyQuery;
use std::cell::Cell;
use xinsight_data::{Dataset, Filter, Predicate, Result, RowMask};

/// Precomputed per-attribute state shared by every search strategy: the
/// filters of the attribute, their row masks, `Δ(D)`, `ε` and `σ`, plus a
/// counter of `Δ(·)` evaluations.
#[derive(Debug)]
pub struct SearchContext<'a> {
    data: &'a Dataset,
    query: &'a WhyQuery,
    attribute: String,
    filters: Vec<Filter>,
    filter_masks: Vec<RowMask>,
    delta_d: f64,
    epsilon: f64,
    sigma: f64,
    evaluations: Cell<usize>,
}

impl<'a> SearchContext<'a> {
    /// Builds the context for one attribute of interest.
    pub fn build(
        data: &'a Dataset,
        query: &'a WhyQuery,
        attribute: &str,
        options: &XPlainerOptions,
    ) -> Result<Self> {
        let column = data.dimension(attribute)?;
        let filters: Vec<Filter> = column
            .categories()
            .iter()
            .map(|v| Filter::equals(attribute, v.clone()))
            .collect();
        let filter_masks = filters
            .iter()
            .map(|f| f.mask(data))
            .collect::<Result<Vec<_>>>()?;
        let delta_d = query.delta(data)?;
        let epsilon = options
            .epsilon
            .unwrap_or(options.epsilon_fraction * delta_d.abs());
        let m = filters.len().max(1);
        let sigma = options.sigma.unwrap_or(1.0 / m as f64);
        Ok(SearchContext {
            data,
            query,
            attribute: attribute.to_owned(),
            filters,
            filter_masks,
            delta_d,
            epsilon,
            sigma,
            evaluations: Cell::new(0),
        })
    }

    /// Number of filters `m` on the attribute.
    pub fn m(&self) -> usize {
        self.filters.len()
    }

    /// The attribute of interest.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// `Δ(D)` over the full dataset.
    pub fn delta_d(&self) -> f64 {
        self.delta_d
    }

    /// The threshold `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The conciseness regulariser `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The filters of the attribute, indexed by filter id.
    pub fn filters(&self) -> &[Filter] {
        &self.filters
    }

    /// Number of `Δ(·)` evaluations spent so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations.get()
    }

    /// Builds a [`Predicate`] from filter indices.
    pub fn predicate_of(&self, indices: &[usize]) -> Predicate {
        Predicate::new(
            &self.attribute,
            indices.iter().map(|&i| self.filters[i].value().to_owned()),
        )
    }

    fn union_mask(&self, indices: &[usize]) -> RowMask {
        let mut mask = RowMask::zeros(self.data.n_rows());
        for &i in indices {
            mask = mask.or(&self.filter_masks[i]);
        }
        mask
    }

    /// `Δ(D_P)` where `P` is the disjunction of the given filters.
    /// Returns `None` when a sibling subspace is empty within `D_P`.
    pub fn delta_of(&self, indices: &[usize]) -> Option<f64> {
        self.evaluations.set(self.evaluations.get() + 1);
        let mask = self.union_mask(indices);
        self.query
            .delta_over_opt(self.data, &mask)
            .expect("context attributes validated at build time")
    }

    /// `Δ(D − D_P)`: the difference after removing the rows matched by the
    /// given filters.  Returns `None` when a sibling subspace becomes empty.
    pub fn delta_without(&self, indices: &[usize]) -> Option<f64> {
        self.evaluations.set(self.evaluations.get() + 1);
        let removed = self.union_mask(indices);
        let kept = self.data.all_rows().minus(&removed);
        self.query
            .delta_over_opt(self.data, &kept)
            .expect("context attributes validated at build time")
    }

    /// The paper's "`≤ ε`" check.  An undefined difference (one sibling
    /// subspace emptied entirely) does **not** count as explained away:
    /// wiping out one side of the comparison is a degenerate, uninformative
    /// "explanation" and is rejected.
    pub fn is_resolved(&self, delta: Option<f64>) -> bool {
        matches!(delta, Some(d) if d <= self.epsilon)
    }

    /// W-weight of a contingency `Γ` for an explanation `P` (Def. 3.5):
    /// `max((Δ(D − D_P) − Δ(D − D_P − D_Γ)) / Δ(D), 0)`.
    pub fn contingency_weight(&self, p: &[usize], gamma: &[usize]) -> f64 {
        let without_p = self.delta_without(p);
        let mut both: Vec<usize> = p.to_vec();
        both.extend_from_slice(gamma);
        let without_both = self.delta_without(&both);
        let a = without_p.unwrap_or(0.0);
        let b = without_both.unwrap_or(0.0);
        if self.delta_d.abs() < f64::EPSILON {
            return 0.0;
        }
        ((a - b) / self.delta_d).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, DatasetBuilder, Subspace};

    fn fixture() -> (Dataset, WhyQuery) {
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "b", "b", "b"])
            .dimension("Y", ["p", "q", "q", "p", "q", "q"])
            .measure("M", [10.0, 2.0, 2.0, 1.0, 1.0, 1.0])
            .build()
            .unwrap();
        let query = WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        (data, query)
    }

    #[test]
    fn context_exposes_filters_and_delta() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        assert_eq!(ctx.m(), 2);
        assert_eq!(ctx.attribute(), "Y");
        // Δ(D) = avg(a) − avg(b) = 14/3 − 1.
        assert!((ctx.delta_d() - (14.0 / 3.0 - 1.0)).abs() < 1e-12);
        assert!(ctx.epsilon() > 0.0);
        assert_eq!(ctx.sigma(), 0.5);
    }

    #[test]
    fn delta_of_and_without_track_subsets() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let p_index = ctx
            .filters()
            .iter()
            .position(|f| f.value() == "p")
            .unwrap();
        // Restricting to Y = p: avg(a) = 10, avg(b) = 1.
        assert!((ctx.delta_of(&[p_index]).unwrap() - 9.0).abs() < 1e-12);
        // Removing Y = p rows: avg(a) = 2, avg(b) = 1.
        assert!((ctx.delta_without(&[p_index]).unwrap() - 1.0).abs() < 1e-12);
        assert!(ctx.evaluations() >= 2);
    }

    #[test]
    fn removing_everything_is_not_a_valid_resolution() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let all: Vec<usize> = (0..ctx.m()).collect();
        assert_eq!(ctx.delta_without(&all), None);
        assert!(!ctx.is_resolved(None));
        assert!(!ctx.is_resolved(Some(ctx.delta_d())));
        assert!(ctx.is_resolved(Some(0.0)));
    }

    #[test]
    fn predicate_of_maps_indices_to_values() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let pred = ctx.predicate_of(&[0, 1]);
        assert_eq!(pred.len(), 2);
        assert_eq!(pred.attribute(), "Y");
    }

    #[test]
    fn explicit_epsilon_and_sigma_override_defaults() {
        let (data, query) = fixture();
        let opts = XPlainerOptions {
            epsilon: Some(0.25),
            sigma: Some(0.05),
            ..XPlainerOptions::default()
        };
        let ctx = SearchContext::build(&data, &query, "Y", &opts).unwrap();
        assert_eq!(ctx.epsilon(), 0.25);
        assert_eq!(ctx.sigma(), 0.05);
    }

    #[test]
    fn contingency_weight_is_nonnegative_fraction() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let w = ctx.contingency_weight(&[0], &[1]);
        assert!(w >= 0.0);
    }
}
