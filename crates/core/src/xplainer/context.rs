//! Shared search state for the XPlainer strategies.

use super::cache::SelectionCache;
use super::XPlainerOptions;
use crate::why_query::WhyQuery;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use xinsight_data::{DataError, Dataset, Filter, Predicate, Result};

/// Precomputed per-attribute state shared by every search strategy: the
/// filters of the attribute, the sibling-subspace masks, `Δ(D)`, `ε` and
/// `σ`, plus a counter of `Δ(·)` evaluations.
///
/// All `Δ` terms are answered through a [`SelectionCache`]: masks and partial
/// aggregates computed by one strategy (or one attribute, or one query of a
/// batch) are replayed by the others instead of being recomputed.  The
/// context is `Sync`, so the strategies may probe it from parallel workers.
#[derive(Debug)]
pub struct SearchContext<'a> {
    data: &'a Dataset,
    query: &'a WhyQuery,
    attribute: String,
    filters: Vec<Filter>,
    s1_key: String,
    s2_key: String,
    s1_mask: Arc<xinsight_data::RowMask>,
    s2_mask: Arc<xinsight_data::RowMask>,
    delta_d: f64,
    epsilon: f64,
    sigma: f64,
    parallel: bool,
    /// Number of `Δ(·)` terms actually computed (cache misses); replays from
    /// the cache are free and not counted.  Serial runs count exactly one per
    /// distinct term; under parallel scheduling, workers racing on the same
    /// term may each win one of its two per-side cache entries and both count
    /// it, so parallel counts can exceed serial ones by a bounded amount.
    evaluations: AtomicUsize,
    cache: Arc<SelectionCache>,
}

impl<'a> SearchContext<'a> {
    /// Builds the context for one attribute of interest with a private cache.
    pub fn build(
        data: &'a Dataset,
        query: &'a WhyQuery,
        attribute: &str,
        options: &XPlainerOptions,
    ) -> Result<Self> {
        Self::build_with_cache(
            data,
            query,
            attribute,
            options,
            Arc::new(SelectionCache::new()),
        )
    }

    /// Builds the context for one attribute of interest on a shared cache, so
    /// masks and partial aggregates are reused across attributes, strategies
    /// and queries.
    pub fn build_with_cache(
        data: &'a Dataset,
        query: &'a WhyQuery,
        attribute: &str,
        options: &XPlainerOptions,
        cache: Arc<SelectionCache>,
    ) -> Result<Self> {
        let column = data.dimension(attribute)?;
        // Validate the measure up front: every later Δ probe relies on it and
        // `expect`s success, so a missing/typo'd measure must surface as an
        // error here, not a panic deep in a worker.
        data.measure(query.measure())?;
        let filters: Vec<Filter> = column
            .categories()
            .iter()
            .map(|v| Filter::equals(attribute, v.clone()))
            .collect();
        // Validate the dataset against the cache's fingerprint exactly once;
        // the warm-up below and every later Δ probe use the trusted variants.
        cache.ensure_dataset(data)?;
        // Warm the mask layer: sibling-subspace and per-filter masks.
        let s1_mask = cache.subspace_mask_trusted(data, query.s1())?;
        let s2_mask = cache.subspace_mask_trusted(data, query.s2())?;
        for filter in &filters {
            cache.filter_mask_trusted(data, filter.attribute(), filter.value())?;
        }
        let s1_key = query.s1().to_string();
        let s2_key = query.s2().to_string();
        let mut ctx = SearchContext {
            data,
            query,
            attribute: attribute.to_owned(),
            filters,
            s1_key,
            s2_key,
            s1_mask,
            s2_mask,
            delta_d: 0.0,
            epsilon: 0.0,
            sigma: 0.0,
            parallel: options.parallel,
            evaluations: AtomicUsize::new(0),
            cache,
        };
        // Δ(D) through the cache (the empty clause's complement selects the
        // full sides), shared across every attribute of the same query.
        let delta_d = ctx
            .delta_clause(&[], true)
            .ok_or_else(|| DataError::EmptyAggregate {
                aggregate: "WHY-QUERY",
                attribute: query.measure().to_owned(),
            })?;
        ctx.delta_d = delta_d;
        ctx.epsilon = options
            .epsilon
            .unwrap_or(options.epsilon_fraction * delta_d.abs());
        let m = ctx.filters.len().max(1);
        ctx.sigma = options.sigma.unwrap_or(1.0 / m as f64);
        // Δ(D) is not a search step; don't bill it to the strategies.
        ctx.evaluations.store(0, Ordering::Relaxed);
        Ok(ctx)
    }

    /// Number of filters `m` on the attribute.
    pub fn m(&self) -> usize {
        self.filters.len()
    }

    /// The attribute of interest.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// `Δ(D)` over the full dataset.
    pub fn delta_d(&self) -> f64 {
        self.delta_d
    }

    /// The threshold `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The conciseness regulariser `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The filters of the attribute, indexed by filter id.
    pub fn filters(&self) -> &[Filter] {
        &self.filters
    }

    /// The selection/aggregation cache answering this context's `Δ` terms.
    pub fn cache(&self) -> &Arc<SelectionCache> {
        &self.cache
    }

    /// Whether the strategies should fan their probe loops out over the
    /// thread pool.
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// Number of `Δ(·)` evaluations actually computed so far (cache replays
    /// are not counted).
    pub fn evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Builds a [`Predicate`] from filter indices.
    pub fn predicate_of(&self, indices: &[usize]) -> Predicate {
        Predicate::new(
            &self.attribute,
            indices.iter().map(|&i| self.filters[i].value().to_owned()),
        )
    }

    /// The canonical (sorted, deduplicated) clause values of filter indices.
    fn clause_values(&self, indices: &[usize]) -> Vec<String> {
        let mut values: Vec<String> = indices
            .iter()
            .map(|&i| self.filters[i].value().to_owned())
            .collect();
        values.sort();
        values.dedup();
        values
    }

    /// `Δ` over `side ∩ clause` (or `side − clause`), both sides, via the
    /// cache.  `None` when one sibling side's aggregate is undefined.
    fn delta_clause(&self, indices: &[usize], complement: bool) -> Option<f64> {
        let values = self.clause_values(indices);
        let (a, fresh_a) = self
            .cache
            .partial_agg_trusted(
                self.data,
                self.query.measure(),
                &self.s1_key,
                &self.s1_mask,
                &self.attribute,
                &values,
                complement,
            )
            .expect("context attributes validated at build time");
        let (b, fresh_b) = self
            .cache
            .partial_agg_trusted(
                self.data,
                self.query.measure(),
                &self.s2_key,
                &self.s2_mask,
                &self.attribute,
                &values,
                complement,
            )
            .expect("context attributes validated at build time");
        if fresh_a || fresh_b {
            self.evaluations.fetch_add(1, Ordering::Relaxed);
        }
        let aggregate = self.query.aggregate();
        match (a.value(aggregate), b.value(aggregate)) {
            (Some(x), Some(y)) => Some(x - y),
            _ => None,
        }
    }

    /// `Δ(D_P)` where `P` is the disjunction of the given filters.
    /// Returns `None` when a sibling subspace is empty within `D_P`.
    pub fn delta_of(&self, indices: &[usize]) -> Option<f64> {
        self.delta_clause(indices, false)
    }

    /// `Δ(D − D_P)`: the difference after removing the rows matched by the
    /// given filters.  Returns `None` when a sibling subspace becomes empty.
    pub fn delta_without(&self, indices: &[usize]) -> Option<f64> {
        self.delta_clause(indices, true)
    }

    /// The paper's "`≤ ε`" check.  An undefined difference (one sibling
    /// subspace emptied entirely) does **not** count as explained away:
    /// wiping out one side of the comparison is a degenerate, uninformative
    /// "explanation" and is rejected.
    pub fn is_resolved(&self, delta: Option<f64>) -> bool {
        matches!(delta, Some(d) if d <= self.epsilon)
    }

    /// W-weight of a contingency `Γ` for an explanation `P` (Def. 3.5):
    /// `max((Δ(D − D_P) − Δ(D − D_P − D_Γ)) / Δ(D), 0)`.
    pub fn contingency_weight(&self, p: &[usize], gamma: &[usize]) -> f64 {
        let without_p = self.delta_without(p);
        let mut both: Vec<usize> = p.to_vec();
        both.extend_from_slice(gamma);
        let without_both = self.delta_without(&both);
        let a = without_p.unwrap_or(0.0);
        let b = without_both.unwrap_or(0.0);
        if self.delta_d.abs() < f64::EPSILON {
            return 0.0;
        }
        ((a - b) / self.delta_d).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, DatasetBuilder, Subspace};

    fn fixture() -> (Dataset, WhyQuery) {
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "b", "b", "b"])
            .dimension("Y", ["p", "q", "q", "p", "q", "q"])
            .measure("M", [10.0, 2.0, 2.0, 1.0, 1.0, 1.0])
            .build()
            .unwrap();
        let query = WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        (data, query)
    }

    #[test]
    fn context_exposes_filters_and_delta() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        assert_eq!(ctx.m(), 2);
        assert_eq!(ctx.attribute(), "Y");
        // Δ(D) = avg(a) − avg(b) = 14/3 − 1.
        assert!((ctx.delta_d() - (14.0 / 3.0 - 1.0)).abs() < 1e-12);
        assert!(ctx.epsilon() > 0.0);
        assert_eq!(ctx.sigma(), 0.5);
    }

    #[test]
    fn delta_of_and_without_track_subsets() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let p_index = ctx.filters().iter().position(|f| f.value() == "p").unwrap();
        // Restricting to Y = p: avg(a) = 10, avg(b) = 1.
        assert!((ctx.delta_of(&[p_index]).unwrap() - 9.0).abs() < 1e-12);
        // Removing Y = p rows: avg(a) = 2, avg(b) = 1.
        assert!((ctx.delta_without(&[p_index]).unwrap() - 1.0).abs() < 1e-12);
        assert!(ctx.evaluations() >= 2);
    }

    #[test]
    fn cached_replays_are_not_billed_as_evaluations() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let first = ctx.delta_of(&[0]);
        let after_first = ctx.evaluations();
        let replay = ctx.delta_of(&[0]);
        assert_eq!(first, replay);
        assert_eq!(
            ctx.evaluations(),
            after_first,
            "replaying a memoized Δ must not count as an evaluation"
        );
    }

    #[test]
    fn sibling_contexts_share_the_cache() {
        let (data, query) = fixture();
        let cache = Arc::new(SelectionCache::new());
        let opts = XPlainerOptions::default();
        let ctx1 =
            SearchContext::build_with_cache(&data, &query, "Y", &opts, Arc::clone(&cache)).unwrap();
        let _ = ctx1.delta_of(&[0]);
        let spent = ctx1.evaluations();
        assert!(spent > 0);
        // A second context over the same attribute replays everything.
        let ctx2 =
            SearchContext::build_with_cache(&data, &query, "Y", &opts, Arc::clone(&cache)).unwrap();
        let _ = ctx2.delta_of(&[0]);
        assert_eq!(ctx2.evaluations(), 0);
        assert!(cache.hits() > 0);
    }

    #[test]
    fn removing_everything_is_not_a_valid_resolution() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let all: Vec<usize> = (0..ctx.m()).collect();
        assert_eq!(ctx.delta_without(&all), None);
        assert!(!ctx.is_resolved(None));
        assert!(!ctx.is_resolved(Some(ctx.delta_d())));
        assert!(ctx.is_resolved(Some(0.0)));
    }

    #[test]
    fn predicate_of_maps_indices_to_values() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let pred = ctx.predicate_of(&[0, 1]);
        assert_eq!(pred.len(), 2);
        assert_eq!(pred.attribute(), "Y");
    }

    #[test]
    fn explicit_epsilon_and_sigma_override_defaults() {
        let (data, query) = fixture();
        let opts = XPlainerOptions {
            epsilon: Some(0.25),
            sigma: Some(0.05),
            ..XPlainerOptions::default()
        };
        let ctx = SearchContext::build(&data, &query, "Y", &opts).unwrap();
        assert_eq!(ctx.epsilon(), 0.25);
        assert_eq!(ctx.sigma(), 0.05);
    }

    #[test]
    fn unknown_measure_errors_instead_of_panicking() {
        let (data, _) = fixture();
        let bad = WhyQuery::new(
            "NoSuchMeasure",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        assert!(SearchContext::build(&data, &bad, "Y", &XPlainerOptions::default()).is_err());
        // A dimension used as a measure is rejected the same way.
        let dim = WhyQuery::new(
            "Y",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        assert!(SearchContext::build(&data, &dim, "Y", &XPlainerOptions::default()).is_err());
    }

    #[test]
    fn contingency_weight_is_nonnegative_fraction() {
        let (data, query) = fixture();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let w = ctx.contingency_weight(&[0], &[1]);
        assert!(w >= 0.0);
    }
}
