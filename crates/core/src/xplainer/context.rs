//! Shared search state for the XPlainer strategies, spanning every segment
//! of the store.
//!
//! The strategies (`sum`, `avg`, `brute`) are segmentation-oblivious: they
//! probe `Δ(·)` terms through this context, and the context answers each
//! term by merging per-segment partial aggregates from the
//! [`SelectionCache`] — deterministically, in segment order, with exact
//! summation — so the chosen explanation is bit-identical for any
//! segmentation of the same rows.

use super::cache::SelectionCache;
use super::{map_items, XPlainerOptions};
use crate::why_query::WhyQuery;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use xinsight_data::{
    DataError, Filter, MeasureStats, Predicate, Result, RowMask, Segment, SegmentedDataset,
};

/// The per-segment slice of the context: the segment plus its two
/// sibling-subspace masks (segment-local row domain).
#[derive(Debug)]
struct SegmentSides {
    segment: Arc<Segment>,
    s1: Arc<RowMask>,
    s2: Arc<RowMask>,
}

/// Precomputed per-attribute state shared by every search strategy: the
/// filters of the attribute (drawn from the store's *global* dictionary, so
/// categories that only appear in later segments are searchable), the
/// per-segment sibling-subspace masks, `Δ(D)`, `ε` and `σ`, plus a counter
/// of `Δ(·)` evaluations.
///
/// All `Δ` terms are answered through a [`SelectionCache`]: per-segment
/// masks and partial aggregates computed by one strategy (or one attribute,
/// or one query of a batch) are replayed by the others instead of being
/// recomputed.  The context is `Sync`, so the strategies may probe it from
/// parallel workers; with parallelism enabled, both the per-filter probe
/// loops *and* the per-segment partials inside one probe fan out over the
/// shared rayon pool (searches scale with segments × attributes).
#[derive(Debug)]
pub struct SearchContext<'a> {
    store: &'a SegmentedDataset,
    query: &'a WhyQuery,
    attribute: String,
    filters: Vec<Filter>,
    s1_key: String,
    s2_key: String,
    sides: Vec<SegmentSides>,
    delta_d: f64,
    epsilon: f64,
    sigma: f64,
    parallel: bool,
    /// Number of `Δ(·)` terms actually computed (cache misses); replays from
    /// the cache are free and not counted.  Serial runs count exactly one per
    /// distinct term; under parallel scheduling, workers racing on the same
    /// term may each win one of its per-side, per-segment cache entries and
    /// both count it, so parallel counts can exceed serial ones by a bounded
    /// amount.
    evaluations: AtomicUsize,
    cache: Arc<SelectionCache>,
}

impl<'a> SearchContext<'a> {
    /// Builds the context for one attribute of interest with a private cache.
    pub fn build(
        store: &'a SegmentedDataset,
        query: &'a WhyQuery,
        attribute: &str,
        options: &XPlainerOptions,
    ) -> Result<Self> {
        Self::build_with_cache(
            store,
            query,
            attribute,
            options,
            Arc::new(SelectionCache::new()),
        )
    }

    /// Builds the context for one attribute of interest on a shared cache, so
    /// masks and partial aggregates are reused across attributes, strategies
    /// and queries — and, because cache entries are keyed per immutable
    /// segment, across store *epochs* of one lineage: a context built after
    /// an ingest replays every older segment's masks and partials from the
    /// cache and only computes the newly sealed segments (the serving
    /// layer's prefix-merge path hinges on exactly this warm-up behaviour).
    pub fn build_with_cache(
        store: &'a SegmentedDataset,
        query: &'a WhyQuery,
        attribute: &str,
        options: &XPlainerOptions,
        cache: Arc<SelectionCache>,
    ) -> Result<Self> {
        // Filters come from the global dictionary: every category observed in
        // *any* segment, in stable first-occurrence (= code) order.
        let categories = store.categories(attribute)?;
        // Validate the measure up front: every later Δ probe relies on it and
        // `expect`s success, so a missing/typo'd measure must surface as an
        // error here, not a panic deep in a worker.
        store.check_measure(query.measure())?;
        let filters: Vec<Filter> = categories
            .iter()
            .map(|v| Filter::equals(attribute, v.as_ref()))
            .collect();
        // Validate the store against the cache's lineage latch exactly once;
        // the warm-up below and every later Δ probe use the trusted variants.
        cache.ensure_store(store)?;
        // Warm the mask layer per segment: sibling-subspace and per-filter
        // masks.  Segments are independent, so the warm-up fans out over the
        // pool — this is the "segments × attributes" axis of engine
        // parallelism (attributes fan out one level up, in the pipeline).
        let sides: Vec<SegmentSides> = map_items(
            options.parallel,
            store.segments().iter().map(Arc::clone).collect(),
            |segment| -> Result<SegmentSides> {
                let s1 = cache.subspace_mask_trusted(&segment, query.s1())?;
                let s2 = cache.subspace_mask_trusted(&segment, query.s2())?;
                for filter in &filters {
                    cache.filter_mask_trusted(&segment, filter.attribute(), filter.value())?;
                }
                Ok(SegmentSides { segment, s1, s2 })
            },
        )
        .into_iter()
        .collect::<Result<_>>()?;
        let s1_key = query.s1().to_string();
        let s2_key = query.s2().to_string();
        let mut ctx = SearchContext {
            store,
            query,
            attribute: attribute.to_owned(),
            filters,
            s1_key,
            s2_key,
            sides,
            delta_d: 0.0,
            epsilon: 0.0,
            sigma: 0.0,
            parallel: options.parallel,
            evaluations: AtomicUsize::new(0),
            cache,
        };
        // Δ(D) through the cache (the empty clause's complement selects the
        // full sides), shared across every attribute of the same query.
        let delta_d = ctx
            .delta_clause(&[], true)
            .ok_or_else(|| DataError::EmptyAggregate {
                aggregate: "WHY-QUERY",
                attribute: query.measure().to_owned(),
            })?;
        ctx.delta_d = delta_d;
        ctx.epsilon = options
            .epsilon
            .unwrap_or(options.epsilon_fraction * delta_d.abs());
        let m = ctx.filters.len().max(1);
        ctx.sigma = options.sigma.unwrap_or(1.0 / m as f64);
        // Δ(D) is not a search step; don't bill it to the strategies.
        ctx.evaluations.store(0, Ordering::Relaxed); // relaxed: advisory effort counter
        Ok(ctx)
    }

    /// Number of filters `m` on the attribute.
    pub fn m(&self) -> usize {
        self.filters.len()
    }

    /// The attribute of interest.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// The store the context searches over.
    pub fn store(&self) -> &SegmentedDataset {
        self.store
    }

    /// `Δ(D)` over the full store.
    pub fn delta_d(&self) -> f64 {
        self.delta_d
    }

    /// The threshold `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The conciseness regulariser `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The filters of the attribute, indexed by filter id.
    pub fn filters(&self) -> &[Filter] {
        &self.filters
    }

    /// The selection/aggregation cache answering this context's `Δ` terms.
    pub fn cache(&self) -> &Arc<SelectionCache> {
        &self.cache
    }

    /// Whether the strategies should fan their probe loops out over the
    /// thread pool.
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// Number of `Δ(·)` evaluations actually computed so far (cache replays
    /// are not counted).
    pub fn evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed) // relaxed: advisory effort counter
    }

    /// Builds a [`Predicate`] from filter indices.
    pub fn predicate_of(&self, indices: &[usize]) -> Predicate {
        Predicate::new(
            &self.attribute,
            indices.iter().map(|&i| self.filters[i].value().to_owned()),
        )
    }

    /// The canonical (sorted, deduplicated) clause values of filter indices.
    fn clause_values(&self, indices: &[usize]) -> Vec<String> {
        let mut values: Vec<String> = indices
            .iter()
            .map(|&i| self.filters[i].value().to_owned())
            .collect();
        values.sort();
        values.dedup();
        values
    }

    /// The statistics of one side over the clause selection, merged across
    /// segments in segment order (exact, so segmentation-independent).
    /// Returns the merged statistics and whether any per-segment partial
    /// was freshly computed.
    fn side_stats(
        &self,
        side_key: &str,
        pick: impl Fn(&SegmentSides) -> &Arc<RowMask> + Sync,
        values: &[String],
        complement: bool,
    ) -> (MeasureStats, bool) {
        // Per-segment partials are independent; fan them out when the store
        // is actually segmented.  The ordered collect keeps the merge
        // deterministic either way.
        let partials: Vec<(Arc<MeasureStats>, bool)> = map_items(
            self.parallel && self.sides.len() > 1,
            self.sides.iter().collect(),
            |sides| {
                self.cache
                    .partial_agg_trusted(
                        &sides.segment,
                        self.query.measure(),
                        side_key,
                        pick(sides),
                        &self.attribute,
                        values,
                        complement,
                    )
                    .expect("context attributes validated at build time")
            },
        );
        let mut merged = MeasureStats::new();
        let mut fresh = false;
        for (stats, was_fresh) in partials {
            merged.merge(&stats);
            fresh |= was_fresh;
        }
        (merged, fresh)
    }

    /// `Δ` over `side ∩ clause` (or `side − clause`), both sides, via the
    /// cache.  `None` when one sibling side's aggregate is undefined.
    fn delta_clause(&self, indices: &[usize], complement: bool) -> Option<f64> {
        let values = self.clause_values(indices);
        let (a, fresh_a) = self.side_stats(&self.s1_key, |s| &s.s1, &values, complement);
        let (b, fresh_b) = self.side_stats(&self.s2_key, |s| &s.s2, &values, complement);
        if fresh_a || fresh_b {
            self.evaluations.fetch_add(1, Ordering::Relaxed); // relaxed: advisory effort counter
        }
        let aggregate = self.query.aggregate();
        match (a.value(aggregate), b.value(aggregate)) {
            (Some(x), Some(y)) => Some(x - y),
            _ => None,
        }
    }

    /// `Δ(D_P)` where `P` is the disjunction of the given filters.
    /// Returns `None` when a sibling subspace is empty within `D_P`.
    pub fn delta_of(&self, indices: &[usize]) -> Option<f64> {
        self.delta_clause(indices, false)
    }

    /// `Δ(D − D_P)`: the difference after removing the rows matched by the
    /// given filters.  Returns `None` when a sibling subspace becomes empty.
    pub fn delta_without(&self, indices: &[usize]) -> Option<f64> {
        self.delta_clause(indices, true)
    }

    /// The paper's "`≤ ε`" check.  An undefined difference (one sibling
    /// subspace emptied entirely) does **not** count as explained away:
    /// wiping out one side of the comparison is a degenerate, uninformative
    /// "explanation" and is rejected.
    pub fn is_resolved(&self, delta: Option<f64>) -> bool {
        matches!(delta, Some(d) if d <= self.epsilon)
    }

    /// W-weight of a contingency `Γ` for an explanation `P` (Def. 3.5):
    /// `max((Δ(D − D_P) − Δ(D − D_P − D_Γ)) / Δ(D), 0)`.
    pub fn contingency_weight(&self, p: &[usize], gamma: &[usize]) -> f64 {
        let without_p = self.delta_without(p);
        let mut both: Vec<usize> = p.to_vec();
        both.extend_from_slice(gamma);
        let without_both = self.delta_without(&both);
        let a = without_p.unwrap_or(0.0);
        let b = without_both.unwrap_or(0.0);
        if self.delta_d.abs() < f64::EPSILON {
            return 0.0;
        }
        ((a - b) / self.delta_d).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, DatasetBuilder, Subspace, Value};

    fn fixture() -> (SegmentedDataset, WhyQuery) {
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "b", "b", "b"])
            .dimension("Y", ["p", "q", "q", "p", "q", "q"])
            .measure("M", [10.0, 2.0, 2.0, 1.0, 1.0, 1.0])
            .build()
            .unwrap();
        let query = WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        (SegmentedDataset::from_dataset(data), query)
    }

    #[test]
    fn context_exposes_filters_and_delta() {
        let (store, query) = fixture();
        let ctx = SearchContext::build(&store, &query, "Y", &XPlainerOptions::default()).unwrap();
        assert_eq!(ctx.m(), 2);
        assert_eq!(ctx.attribute(), "Y");
        // Δ(D) = avg(a) − avg(b) = 14/3 − 1.
        assert!((ctx.delta_d() - (14.0 / 3.0 - 1.0)).abs() < 1e-12);
        assert!(ctx.epsilon() > 0.0);
        assert_eq!(ctx.sigma(), 0.5);
        assert_eq!(ctx.store().n_segments(), 1);
    }

    #[test]
    fn delta_of_and_without_track_subsets() {
        let (store, query) = fixture();
        let ctx = SearchContext::build(&store, &query, "Y", &XPlainerOptions::default()).unwrap();
        let p_index = ctx.filters().iter().position(|f| f.value() == "p").unwrap();
        // Restricting to Y = p: avg(a) = 10, avg(b) = 1.
        assert!((ctx.delta_of(&[p_index]).unwrap() - 9.0).abs() < 1e-12);
        // Removing Y = p rows: avg(a) = 2, avg(b) = 1.
        assert!((ctx.delta_without(&[p_index]).unwrap() - 1.0).abs() < 1e-12);
        assert!(ctx.evaluations() >= 2);
    }

    #[test]
    fn segmented_deltas_match_the_single_segment_case_exactly() {
        let (store, query) = fixture();
        // The same six rows split 2 / 3 / 1 across three segments.
        let flat = store.segments()[0].data().clone();
        let row = |i: usize| -> Vec<Value> {
            vec![
                flat.value(i, "X").unwrap(),
                flat.value(i, "Y").unwrap(),
                flat.value(i, "M").unwrap(),
            ]
        };
        let split = SegmentedDataset::from_dataset(
            DatasetBuilder::new()
                .dimension("X", ["a", "a"])
                .dimension("Y", ["p", "q"])
                .measure("M", [10.0, 2.0])
                .build()
                .unwrap(),
        )
        .append_rows(&[row(2), row(3), row(4)])
        .unwrap()
        .append_rows(&[row(5)])
        .unwrap();
        assert_eq!(split.n_segments(), 3);
        let mono = SearchContext::build(&store, &query, "Y", &XPlainerOptions::default()).unwrap();
        let seg = SearchContext::build(&split, &query, "Y", &XPlainerOptions::default()).unwrap();
        assert_eq!(mono.delta_d().to_bits(), seg.delta_d().to_bits());
        for indices in [vec![0usize], vec![1], vec![0, 1]] {
            assert_eq!(
                mono.delta_of(&indices).map(f64::to_bits),
                seg.delta_of(&indices).map(f64::to_bits)
            );
            assert_eq!(
                mono.delta_without(&indices).map(f64::to_bits),
                seg.delta_without(&indices).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn filters_cover_categories_first_seen_in_later_segments() {
        let (store, query) = fixture();
        let grown = store
            .append_rows(&[vec![Value::from("a"), Value::from("z"), Value::from(50.0)]])
            .unwrap();
        let ctx = SearchContext::build(&grown, &query, "Y", &XPlainerOptions::default()).unwrap();
        assert_eq!(ctx.m(), 3, "the new category `z` must be searchable");
        let z = ctx.filters().iter().position(|f| f.value() == "z").unwrap();
        // Y = z only selects the appended row (side a): avg(a) = 50, b empty.
        assert_eq!(ctx.delta_of(&[z]), None);
        // Removing it restores the original six rows.
        assert!((ctx.delta_without(&[z]).unwrap() - (14.0 / 3.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn cached_replays_are_not_billed_as_evaluations() {
        let (store, query) = fixture();
        let ctx = SearchContext::build(&store, &query, "Y", &XPlainerOptions::default()).unwrap();
        let first = ctx.delta_of(&[0]);
        let after_first = ctx.evaluations();
        let replay = ctx.delta_of(&[0]);
        assert_eq!(first, replay);
        assert_eq!(
            ctx.evaluations(),
            after_first,
            "replaying a memoized Δ must not count as an evaluation"
        );
    }

    #[test]
    fn sibling_contexts_share_the_cache() {
        let (store, query) = fixture();
        let cache = Arc::new(SelectionCache::new());
        let opts = XPlainerOptions::default();
        let ctx1 = SearchContext::build_with_cache(&store, &query, "Y", &opts, Arc::clone(&cache))
            .unwrap();
        let _ = ctx1.delta_of(&[0]);
        let spent = ctx1.evaluations();
        assert!(spent > 0);
        // A second context over the same attribute replays everything.
        let ctx2 = SearchContext::build_with_cache(&store, &query, "Y", &opts, Arc::clone(&cache))
            .unwrap();
        let _ = ctx2.delta_of(&[0]);
        assert_eq!(ctx2.evaluations(), 0);
        assert!(cache.hits() > 0);
    }

    #[test]
    fn removing_everything_is_not_a_valid_resolution() {
        let (store, query) = fixture();
        let ctx = SearchContext::build(&store, &query, "Y", &XPlainerOptions::default()).unwrap();
        let all: Vec<usize> = (0..ctx.m()).collect();
        assert_eq!(ctx.delta_without(&all), None);
        assert!(!ctx.is_resolved(None));
        assert!(!ctx.is_resolved(Some(ctx.delta_d())));
        assert!(ctx.is_resolved(Some(0.0)));
    }

    #[test]
    fn predicate_of_maps_indices_to_values() {
        let (store, query) = fixture();
        let ctx = SearchContext::build(&store, &query, "Y", &XPlainerOptions::default()).unwrap();
        let pred = ctx.predicate_of(&[0, 1]);
        assert_eq!(pred.len(), 2);
        assert_eq!(pred.attribute(), "Y");
    }

    #[test]
    fn explicit_epsilon_and_sigma_override_defaults() {
        let (store, query) = fixture();
        let opts = XPlainerOptions {
            epsilon: Some(0.25),
            sigma: Some(0.05),
            ..XPlainerOptions::default()
        };
        let ctx = SearchContext::build(&store, &query, "Y", &opts).unwrap();
        assert_eq!(ctx.epsilon(), 0.25);
        assert_eq!(ctx.sigma(), 0.05);
    }

    #[test]
    fn unknown_measure_errors_instead_of_panicking() {
        let (store, _) = fixture();
        let bad = WhyQuery::new(
            "NoSuchMeasure",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        assert!(SearchContext::build(&store, &bad, "Y", &XPlainerOptions::default()).is_err());
        // A dimension used as a measure is rejected the same way.
        let dim = WhyQuery::new(
            "Y",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        assert!(SearchContext::build(&store, &dim, "Y", &XPlainerOptions::default()).is_err());
    }

    #[test]
    fn contingency_weight_is_nonnegative_fraction() {
        let (store, query) = fixture();
        let ctx = SearchContext::build(&store, &query, "Y", &XPlainerOptions::default()).unwrap();
        let w = ctx.contingency_weight(&[0], &[1]);
        assert!(w >= 0.0);
    }
}
