//! Brute-force explanation search (row 1 of Table 4).
//!
//! Enumerates every candidate predicate `P` and, for each, every disjoint
//! contingency `Γ`, computing the exact W-Responsibility (Def. 3.5).  The
//! cost is `O(3^m)` Δ-evaluations; the search is the ground truth against
//! which the SUM/AVG approximations are measured in Sec. 4.4.

use super::context::SearchContext;
use super::{map_items, ExplanationCandidate};

/// Runs the exhaustive search and returns the best-scoring explanation, if
/// any predicate qualifies as an actual cause.
///
/// Every candidate predicate is evaluated independently (in parallel over the
/// thread pool, sharing the context's selection cache); the winner is then
/// picked by a serial fold in ascending bitmask order, so the returned
/// explanation (predicate, responsibility, contingency, remaining delta) is
/// byte-identical to a fully serial scan.  Only the diagnostic
/// `n_delta_evaluations` may differ: concurrent workers racing on a shared
/// clause can each count it once (see `SearchContext::evaluations`).
pub fn search(ctx: &SearchContext<'_>) -> Option<ExplanationCandidate> {
    let m = ctx.m();
    let total = 1u64 << m;
    // Scan in blocks: workers stream the predicates of a block and keep only
    // that block's best qualifying candidate, so the scan itself holds
    // O(#blocks) candidates instead of materializing all 2^m.  (The shared
    // cache still accumulates one partial-aggregate entry per distinct
    // clause probed — O(2^m) for this strategy — which is what deduplicates
    // the Δ work; `max_brute_force_filters` bounds both costs.)
    const BLOCK: u64 = 1024;
    let n_blocks = total.div_ceil(BLOCK);
    let scored: Vec<Option<(f64, ExplanationCandidate)>> =
        map_items(ctx.parallel(), (0..n_blocks).collect(), |block| {
            let start = (block * BLOCK).max(1); // predicate 0 is empty
            let end = ((block + 1) * BLOCK).min(total);
            let mut best: Option<(f64, ExplanationCandidate)> = None;
            for p_bits in start..end {
                let Some((score, candidate)) = evaluate_predicate(ctx, p_bits) else {
                    continue;
                };
                let better = match &best {
                    Some((s, _)) => score > *s + 1e-12,
                    None => true,
                };
                if better {
                    best = Some((score, candidate));
                }
            }
            best
        });

    // Fold the block winners in ascending block (= bitmask) order, with the
    // same strictly-greater rule, reproducing the serial scan's tie-breaking.
    let mut best: Option<(f64, ExplanationCandidate)> = None;
    for (score, candidate) in scored.into_iter().flatten() {
        let better = match &best {
            Some((s, _)) => score > *s + 1e-12,
            None => true,
        };
        if better {
            best = Some((score, candidate));
        }
    }
    best.map(|(_, mut c)| {
        c.n_delta_evaluations = ctx.evaluations();
        c
    })
}

/// Scores one candidate predicate (given as a filter-index bitmask): finds
/// its minimal-weight certifying contingency and returns the scored
/// candidate, or `None` when the predicate is not an actual cause (or its
/// score is not positive).
fn evaluate_predicate(ctx: &SearchContext<'_>, p_bits: u64) -> Option<(f64, ExplanationCandidate)> {
    let m = ctx.m();
    let p: Vec<usize> = (0..m).filter(|i| p_bits >> i & 1 == 1).collect();
    let rest: Vec<usize> = (0..m).filter(|i| p_bits >> i & 1 == 0).collect();
    let k = rest.len();

    // Find the contingency with minimal W-weight that certifies P.
    let mut best_gamma: Option<(f64, Vec<usize>)> = None;
    for g_bits in 0u64..(1u64 << k) {
        let gamma: Vec<usize> = rest
            .iter()
            .enumerate()
            .filter(|(j, _)| g_bits >> j & 1 == 1)
            .map(|(_, &i)| i)
            .collect();
        // Validity: Δ(D − D_Γ − D_P) ≤ ε < Δ(D − D_Γ).
        let without_gamma = ctx.delta_without(&gamma);
        let mut both = p.clone();
        both.extend_from_slice(&gamma);
        let without_both = ctx.delta_without(&both);
        let valid =
            ctx.is_resolved(without_both) && matches!(without_gamma, Some(d) if d > ctx.epsilon());
        if !valid {
            continue;
        }
        let weight = ctx.contingency_weight(&p, &gamma);
        match &best_gamma {
            Some((w, _)) if *w <= weight => {}
            _ => best_gamma = Some((weight, gamma)),
        }
    }

    let (weight, gamma) = best_gamma?;
    let responsibility = 1.0 / (1.0 + weight);
    let score = responsibility - ctx.sigma() * p.len() as f64;
    // Explanations whose score is not positive are no better than the
    // degenerate "select every filter" predicate and are not reported.
    if score <= 1e-12 {
        return None;
    }
    let candidate = ExplanationCandidate {
        predicate: ctx.predicate_of(&p),
        responsibility,
        contingency: if gamma.is_empty() {
            None
        } else {
            Some(ctx.predicate_of(&gamma))
        },
        remaining_delta: ctx.delta_without(&p),
        // Filled in by `search` once the full scan is complete.
        n_delta_evaluations: 0,
    };
    Some((score, candidate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::why_query::WhyQuery;
    use crate::xplainer::XPlainerOptions;
    use xinsight_data::{Aggregate, DatasetBuilder, SegmentedDataset, Subspace};

    /// `Y = hot` fully accounts for the SUM difference between X = a and X = b.
    fn single_cause() -> (SegmentedDataset, WhyQuery) {
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "b", "b", "b"])
            .dimension("Y", ["hot", "cold", "mild", "hot", "cold", "mild"])
            .measure("M", [100.0, 5.0, 5.0, 10.0, 5.0, 5.0])
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "M",
            Aggregate::Sum,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        (data, query)
    }

    #[test]
    fn finds_the_counterfactual_cause_with_full_responsibility() {
        let (data, query) = single_cause();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        let result = search(&ctx).expect("must find an explanation");
        assert_eq!(result.predicate.values(), ["hot"]);
        assert!((result.responsibility - 1.0).abs() < 1e-9);
        assert!(result.contingency.is_none());
        assert!(result.n_delta_evaluations > 0);
    }

    #[test]
    fn contingency_needed_when_two_filters_share_blame() {
        // Both hot and warm contribute; removing either alone is not enough,
        // so each is only an actual cause with the other as contingency.
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "b"])
            .dimension("Y", ["hot", "warm", "cold", "cold"])
            .measure("M", [50.0, 50.0, 5.0, 5.0])
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "M",
            Aggregate::Sum,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let opts = XPlainerOptions {
            // Tight epsilon: the difference must be (almost) fully removed.
            epsilon: Some(1.0),
            sigma: Some(0.01),
            ..XPlainerOptions::default()
        };
        let ctx = SearchContext::build(&data, &query, "Y", &opts).unwrap();
        let result = search(&ctx).expect("must find an explanation");
        // The optimal predicate is {hot, warm} (responsibility 1, small σ cost).
        assert!(result.predicate.contains("hot"));
        assert!(result.predicate.contains("warm"));
        assert!((result.responsibility - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_filter_with_contingency_when_sigma_is_large() {
        // Same data, but a large σ pushes the optimum to a single filter whose
        // responsibility is certified by the other filter as contingency.
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "a", "b"])
            .dimension("Y", ["hot", "warm", "cold", "cold"])
            .measure("M", [50.0, 50.0, 5.0, 5.0])
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "M",
            Aggregate::Sum,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let opts = XPlainerOptions {
            epsilon: Some(1.0),
            sigma: Some(0.4),
            ..XPlainerOptions::default()
        };
        let ctx = SearchContext::build(&data, &query, "Y", &opts).unwrap();
        let result = search(&ctx).expect("must find an explanation");
        assert_eq!(result.predicate.len(), 1);
        let contingency = result.contingency.expect("a contingency is required");
        assert_eq!(contingency.len(), 1);
        assert!(result.responsibility < 1.0);
        assert!(result.responsibility > 0.0);
    }

    #[test]
    fn no_explanation_when_nothing_reduces_the_difference() {
        // The difference is driven entirely by X itself; Y is uncorrelated and
        // removing any Y category leaves the difference intact.
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "a", "b", "b"])
            .dimension("Y", ["u", "v", "u", "v"])
            .measure("M", [10.0, 10.0, 1.0, 1.0])
            .build()
            .unwrap()
            .into_segmented();
        let query = WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap();
        let ctx = SearchContext::build(&data, &query, "Y", &XPlainerOptions::default()).unwrap();
        assert!(search(&ctx).is_none());
    }
}
