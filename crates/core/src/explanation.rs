//! Explanations (Def. 2.2) and XDA semantics (Table 3).

use xinsight_data::{DataError, Predicate};

/// Whether an explanation carries causal or merely correlational meaning.
///
/// Ordered (`Causal < NonCausal`) to match the ranking convention — causal
/// explanations always come first — which also gives
/// [`ExplainRequest`](crate::ExplainRequest) type allowlists a canonical
/// order.  Round-trips through its [`std::fmt::Display`] form (`"causal"` /
/// `"non-causal"`) via [`std::str::FromStr`], which is what the `/v2` wire
/// format sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExplanationType {
    /// The explaining variable is a (possible) cause of the target.
    Causal,
    /// The explaining variable is merely statistically relevant to the target.
    NonCausal,
}

impl std::fmt::Display for ExplanationType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExplanationType::Causal => write!(f, "causal"),
            ExplanationType::NonCausal => write!(f, "non-causal"),
        }
    }
}

impl std::str::FromStr for ExplanationType {
    type Err = DataError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "causal" => Ok(ExplanationType::Causal),
            "non-causal" => Ok(ExplanationType::NonCausal),
            other => Err(DataError::Serve(format!(
                "unknown explanation type `{other}` (use `causal` or `non-causal`)"
            ))),
        }
    }
}

/// The causal primitive that qualifies a variable as a causal explainer
/// (rows ➁–➄ of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CausalRole {
    /// `X → M`: a definite direct cause.
    Parent,
    /// `X → ... → M`: a definite indirect cause.
    Ancestor,
    /// `X ∘→ M`: a possible direct cause (latent confounding not excluded).
    AlmostParent,
    /// `X ∘→ ... ∘→ M`: a possible indirect cause.
    AlmostAncestor,
}

impl std::fmt::Display for CausalRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CausalRole::Parent => "parent",
            CausalRole::Ancestor => "ancestor",
            CausalRole::AlmostParent => "almost-parent",
            CausalRole::AlmostAncestor => "almost-ancestor",
        };
        write!(f, "{s}")
    }
}

/// The XDA semantics of one variable with respect to a Why Query (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XdaSemantics {
    /// Row ➀: `X ⫫ M | F ∪ B` — the variable cannot explain the query.
    NoExplainability,
    /// Rows ➁–➄: the variable can provide a causal explanation.
    CausalExplanation(CausalRole),
    /// Row ➅: the variable can provide a non-causal explanation only.
    NonCausalExplanation,
}

impl XdaSemantics {
    /// Returns `true` when the variable is worth passing to XPlainer at all.
    pub fn has_explainability(&self) -> bool {
        !matches!(self, XdaSemantics::NoExplainability)
    }

    /// Maps the semantics to the explanation type XPlainer should report.
    pub fn explanation_type(&self) -> Option<ExplanationType> {
        match self {
            XdaSemantics::NoExplainability => None,
            XdaSemantics::CausalExplanation(_) => Some(ExplanationType::Causal),
            XdaSemantics::NonCausalExplanation => Some(ExplanationType::NonCausal),
        }
    }
}

/// A complete explanation of a Why Query: `⟨type, predicate, responsibility⟩`
/// (Def. 2.2) plus the supporting qualitative and quantitative detail.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Causal or non-causal.
    pub explanation_type: ExplanationType,
    /// The qualitative causal role of the variable, when causal.
    pub causal_role: Option<CausalRole>,
    /// The predicate that constitutes the explanation content.
    pub predicate: Predicate,
    /// Responsibility score in `[0, 1]` (Def. 3.5).
    pub responsibility: f64,
    /// The contingency that certifies the actual cause, if a non-empty one
    /// was needed.
    pub contingency: Option<Predicate>,
    /// `Δ(D)` of the query this explanation answers.
    pub original_delta: f64,
    /// `Δ(D − D_P)`: the difference remaining after removing the predicate's
    /// rows (`None` when one sibling subspace becomes empty).
    pub remaining_delta: Option<f64>,
}

impl Explanation {
    /// The attribute (dimension) the explanation predicate ranges over.
    pub fn attribute(&self) -> &str {
        self.predicate.attribute()
    }

    /// How much of the original difference the predicate accounts for,
    /// `1 − Δ(D − D_P)/Δ(D)`, when both quantities are available.
    pub fn reduction_ratio(&self) -> Option<f64> {
        match self.remaining_delta {
            Some(rem) if self.original_delta.abs() > f64::EPSILON => {
                Some(1.0 - rem / self.original_delta)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} (responsibility {:.2})",
            self.explanation_type, self.predicate, self.responsibility
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantics_mapping() {
        assert!(!XdaSemantics::NoExplainability.has_explainability());
        assert!(XdaSemantics::CausalExplanation(CausalRole::Parent).has_explainability());
        assert!(XdaSemantics::NonCausalExplanation.has_explainability());
        assert_eq!(XdaSemantics::NoExplainability.explanation_type(), None);
        assert_eq!(
            XdaSemantics::CausalExplanation(CausalRole::Ancestor).explanation_type(),
            Some(ExplanationType::Causal)
        );
        assert_eq!(
            XdaSemantics::NonCausalExplanation.explanation_type(),
            Some(ExplanationType::NonCausal)
        );
    }

    #[test]
    fn explanation_accessors_and_display() {
        let e = Explanation {
            explanation_type: ExplanationType::Causal,
            causal_role: Some(CausalRole::Parent),
            predicate: Predicate::new("Smoking", ["Yes"]),
            responsibility: 0.77,
            contingency: None,
            original_delta: 0.46,
            remaining_delta: Some(0.05),
        };
        assert_eq!(e.attribute(), "Smoking");
        let r = e.reduction_ratio().unwrap();
        assert!((r - (1.0 - 0.05 / 0.46)).abs() < 1e-12);
        let s = e.to_string();
        assert!(s.contains("causal"));
        assert!(s.contains("Smoking = Yes"));
        assert!(s.contains("0.77"));
    }

    #[test]
    fn reduction_ratio_handles_missing_values() {
        let e = Explanation {
            explanation_type: ExplanationType::NonCausal,
            causal_role: None,
            predicate: Predicate::new("Surgery", ["Yes"]),
            responsibility: 0.5,
            contingency: None,
            original_delta: 0.0,
            remaining_delta: None,
        };
        assert_eq!(e.reduction_ratio(), None);
    }

    #[test]
    fn display_of_roles_and_types() {
        assert_eq!(ExplanationType::Causal.to_string(), "causal");
        assert_eq!(ExplanationType::NonCausal.to_string(), "non-causal");
        assert_eq!(CausalRole::AlmostAncestor.to_string(), "almost-ancestor");
    }

    #[test]
    fn explanation_type_round_trips_through_from_str() {
        for t in [ExplanationType::Causal, ExplanationType::NonCausal] {
            assert_eq!(t.to_string().parse::<ExplanationType>().unwrap(), t);
        }
        assert!("causal?".parse::<ExplanationType>().is_err());
        assert!("".parse::<ExplanationType>().is_err());
        // The ranking order: causal sorts first.
        assert!(ExplanationType::Causal < ExplanationType::NonCausal);
    }
}
