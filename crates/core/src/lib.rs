//! # xinsight-core
//!
//! The paper's primary contribution: a unified, causality-based framework for
//! eXplainable Data Analysis (XDA) that answers *Why Queries* with causal and
//! non-causal, qualitative and quantitative explanations.
//!
//! The three modules mirror Fig. 3 of the paper:
//!
//! * [`xlearner`] — offline: learns an FD-augmented PAG from multi-dimensional
//!   data that is causally insufficient and contains functional dependencies
//!   (Alg. 1, Sec. 3.1).
//! * [`xtranslator`] — online: translates causal primitives of the learned
//!   graph into XDA semantics for a given Why Query (Table 3, Sec. 3.2).
//! * [`xplainer`] — online: searches predicate-level quantitative explanations
//!   with W-Causality / W-Responsibility and the SUM / AVG optimizations
//!   (Sec. 3.3).
//!
//! [`pipeline::XInsight`] wires the three modules into the end-to-end engine
//! used by the examples and the benchmark harness, [`persist`] makes the
//! fitted offline artifact a first-class, savable value ([`FittedModel`]) so
//! servers load a model instead of re-learning it, and [`execute`] defines
//! the unified request/response API every online entry point routes
//! through: an [`ExplainRequest`] (query + per-request controls) answered
//! by an [`ExplainResponse`] (ranked, scored, self-describing).
//!
//! ```
//! use xinsight_core::{ExplainRequest, WhyQuery, pipeline::{XInsight, XInsightOptions}};
//! use xinsight_data::{Aggregate, DatasetBuilder, Subspace};
//!
//! // A tiny lung-cancer-style dataset (Fig. 1 of the paper, in miniature).
//! let mut loc = Vec::new();
//! let mut smoking = Vec::new();
//! let mut severity = Vec::new();
//! for i in 0..200 {
//!     let a = i % 2 == 0;
//!     loc.push(if a { "A" } else { "B" });
//!     let smokes = if a { i % 10 < 8 } else { i % 10 < 2 };
//!     smoking.push(if smokes { "Yes" } else { "No" });
//!     // Severity is driven by smoking, with some unexplained variation.
//!     severity.push(match (smokes, i % 7) {
//!         (true, 0..=4) => 3.0,
//!         (true, _) => 2.0,
//!         (false, 0) => 2.0,
//!         (false, _) => 1.0,
//!     });
//! }
//! let data = DatasetBuilder::new()
//!     .dimension("Location", loc)
//!     .dimension("Smoking", smoking)
//!     .measure("LungCancer", severity)
//!     .build()
//!     .unwrap();
//!
//! let engine = XInsight::fit(&data, &XInsightOptions::default()).unwrap();
//! let query = WhyQuery::new(
//!     "LungCancer",
//!     Aggregate::Avg,
//!     Subspace::of("Location", "A"),
//!     Subspace::of("Location", "B"),
//! ).unwrap();
//! let response = engine.execute(&ExplainRequest::new(query)).unwrap();
//! assert!(!response.is_empty());
//! assert_eq!(response.explanations[0].rank, 1);
//! ```

#![warn(missing_docs)]

pub mod execute;
mod explanation;
pub mod json;
pub mod parallel;
pub mod persist;
pub mod pipeline;
mod why_query;
pub mod xlearner;
pub mod xplainer;
pub mod xtranslator;

pub use execute::{
    ExplainRequest, ExplainRequestBuilder, ExplainResponse, Provenance, ScoredExplanation,
};
pub use explanation::{CausalRole, Explanation, ExplanationType, XdaSemantics};
pub use persist::FittedModel;
pub use why_query::WhyQuery;
pub use xlearner::{XLearner, XLearnerOptions, XLearnerResult};
pub use xplainer::{
    ExplanationCandidate, SearchStrategy, SelectionCache, XPlainer, XPlainerOptions,
};
pub use xtranslator::{translate, translate_variable, Translation};
