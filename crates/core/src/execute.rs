//! The unified execution API: typed requests in, self-describing responses
//! out.
//!
//! The paper frames XDA as a *dialogue*: an analyst poses a Why Query,
//! inspects the ranked explanations, narrows the request ("only causal
//! ones", "just the top 3"), and iterates.  The bare
//! `explain(&WhyQuery) -> Vec<Explanation>` signature cannot carry that
//! conversation — every knob lived in fit-time options and every answer was
//! an anonymous list.  This module defines the request/response pair every
//! entry point now routes through:
//!
//! * [`ExplainRequest`] — a [`WhyQuery`] plus **per-request controls**
//!   (`top_k`, a minimum-score threshold, an [`ExplanationType`] allowlist,
//!   a parallelism override, a soft wall-clock deadline, and a provenance
//!   switch), built fluently via [`ExplainRequest::builder`];
//! * [`ExplainResponse`] — ranked [`ScoredExplanation`]s with explicit
//!   rank/score, `truncated`/`deadline_hit` markers, elapsed time, and
//!   optional [`Provenance`] explaining *how* the answer was produced
//!   (per-strategy `Δ(·)` evaluation counts, cache attribution).
//!
//! [`XInsight::execute`](crate::pipeline::XInsight::execute) and
//! [`XInsight::execute_batch`](crate::pipeline::XInsight::execute_batch)
//! consume these; the deprecated `explain*` methods are thin adapters that
//! build a default request and call
//! [`ExplainResponse::into_explanations`].  A default request reproduces
//! the old path byte-for-byte (property-tested in `tests/api_v2.rs`).

use crate::explanation::{Explanation, ExplanationType};
use crate::why_query::WhyQuery;
use std::time::Duration;
use xinsight_stats::CacheStats;

/// A complete, self-contained explain request: the query plus every
/// per-request control.
///
/// Construct with [`ExplainRequest::new`] for defaults (behaviorally
/// identical to the old `explain` path) or [`ExplainRequest::builder`] for
/// the fluent form:
///
/// ```
/// use std::time::Duration;
/// use xinsight_core::{ExplainRequest, ExplanationType, WhyQuery};
/// use xinsight_data::{Aggregate, Subspace};
///
/// let query = WhyQuery::new(
///     "Delay",
///     Aggregate::Avg,
///     Subspace::of("Airline", "A"),
///     Subspace::of("Airline", "B"),
/// )
/// .unwrap();
/// let request = ExplainRequest::builder(query)
///     .top_k(3)
///     .min_score(0.2)
///     .allow_types([ExplanationType::Causal])
///     .parallel(false)
///     .deadline(Duration::from_millis(250))
///     .include_provenance(true)
///     .build();
/// assert_eq!(request.top_k(), Some(3));
/// assert_eq!(request.types(), Some(&[ExplanationType::Causal][..]));
/// assert!(request.include_provenance());
/// // A fresh request carries no controls at all.
/// assert!(ExplainRequest::new(request.query().clone()).has_default_options());
/// assert!(!request.has_default_options());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRequest {
    query: WhyQuery,
    top_k: Option<usize>,
    min_score: Option<f64>,
    types: Option<Vec<ExplanationType>>,
    parallel: Option<bool>,
    deadline: Option<Duration>,
    include_provenance: bool,
}

impl ExplainRequest {
    /// A request with default options: no ranking cut-offs, no type
    /// filter, engine-level parallelism, no deadline, no provenance.
    /// Executing it is byte-identical to the legacy `explain` path.
    pub fn new(query: WhyQuery) -> Self {
        ExplainRequest {
            query,
            top_k: None,
            min_score: None,
            types: None,
            parallel: None,
            deadline: None,
            include_provenance: false,
        }
    }

    /// Starts a fluent builder over a query.
    pub fn builder(query: WhyQuery) -> ExplainRequestBuilder {
        ExplainRequestBuilder {
            request: ExplainRequest::new(query),
        }
    }

    /// The Why Query being answered.
    pub fn query(&self) -> &WhyQuery {
        &self.query
    }

    /// Keep only the `k` best-ranked explanations (`None` = all).
    pub fn top_k(&self) -> Option<usize> {
        self.top_k
    }

    /// Drop explanations scoring below this responsibility (`None` = keep
    /// all).
    pub fn min_score(&self) -> Option<f64> {
        self.min_score
    }

    /// The [`ExplanationType`] allowlist (`None` = every type).  Always
    /// sorted and deduplicated.
    pub fn types(&self) -> Option<&[ExplanationType]> {
        self.types.as_deref()
    }

    /// Per-request override of the engine's parallelism switch (`None` =
    /// inherit the fit-time option).  The answer is identical either way;
    /// this only trades latency for CPU.
    pub fn parallel(&self) -> Option<bool> {
        self.parallel
    }

    /// Soft wall-clock budget for the search.  Candidate attributes whose
    /// search has not *started* when the budget runs out are skipped; the
    /// response still ranks everything that finished and flags itself with
    /// [`ExplainResponse::deadline_hit`].
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Whether the response should carry a [`Provenance`] section.
    pub fn include_provenance(&self) -> bool {
        self.include_provenance
    }

    /// `true` when no per-request control is set — including
    /// `include_provenance` — i.e. this request is exactly what
    /// [`ExplainRequest::new`] builds, and executing it reproduces the
    /// legacy `explain` ranking byte-for-byte with no extra response
    /// sections.
    pub fn has_default_options(&self) -> bool {
        self.top_k.is_none()
            && self.min_score.is_none()
            && self.types.is_none()
            && self.parallel.is_none()
            && self.deadline.is_none()
            && !self.include_provenance
    }
}

/// Fluent builder for [`ExplainRequest`]; see
/// [`ExplainRequest::builder`] for an example.
#[derive(Debug, Clone)]
pub struct ExplainRequestBuilder {
    request: ExplainRequest,
}

impl ExplainRequestBuilder {
    /// Keep only the `k` best-ranked explanations.
    pub fn top_k(mut self, k: usize) -> Self {
        self.request.top_k = Some(k);
        self
    }

    /// Drop explanations whose responsibility is below `score`.
    pub fn min_score(mut self, score: f64) -> Self {
        self.request.min_score = Some(score);
        self
    }

    /// Restrict the search to the given explanation types.  The allowlist
    /// is applied *before* searching, so excluded types cost nothing.
    pub fn allow_types(mut self, types: impl IntoIterator<Item = ExplanationType>) -> Self {
        let mut types: Vec<ExplanationType> = types.into_iter().collect();
        types.sort();
        types.dedup();
        self.request.types = Some(types);
        self
    }

    /// Override the engine's parallelism for this request only.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.request.parallel = Some(parallel);
        self
    }

    /// Give the search a soft wall-clock budget (see
    /// [`ExplainRequest::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.request.deadline = Some(deadline);
        self
    }

    /// Ask for a [`Provenance`] section in the response.
    pub fn include_provenance(mut self, include: bool) -> Self {
        self.request.include_provenance = include;
        self
    }

    /// Finishes the request.
    pub fn build(self) -> ExplainRequest {
        self.request
    }
}

/// One ranked entry of an [`ExplainResponse`]: the explanation plus its
/// explicit position and score, so a client never has to re-derive the
/// ranking from list order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredExplanation {
    /// 1-based rank within the response (after all request filters).
    pub rank: usize,
    /// The ranking score — the explanation's W-Responsibility (causal
    /// explanations always outrank non-causal ones regardless of score).
    pub score: f64,
    /// The explanation itself.
    pub explanation: Explanation,
}

/// How an [`ExplainResponse`] was produced: evaluation counts and cache
/// attribution, for analysts and dashboards that ask "why is this answer
/// ranked/priced the way it is?".
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// `Δ(·)` evaluations per search strategy, e.g.
    /// `[("avg-optimized", 34)]`.  One Why Query engages one strategy
    /// (chosen from its aggregate), so this usually has one entry; counts
    /// cover the searches that returned an explanation (a search that
    /// found no admissible predicate does not report its spend).
    pub strategy_evaluations: Vec<(String, usize)>,
    /// Candidate attributes whose search ran to completion.
    pub attributes_searched: usize,
    /// Candidate attributes skipped because the deadline expired before
    /// their search started.
    pub attributes_skipped: usize,
    /// Snapshot of the [`SelectionCache`](crate::SelectionCache) the
    /// request was answered through, taken after the search.  For batch
    /// execution the cache is shared, so this attributes the *cumulative*
    /// state, not this request alone.
    pub selection_cache: CacheStats,
    /// Fit-time CI-test cache counters of the model that answered (zero
    /// for engines restored via
    /// [`XInsight::from_fitted`](crate::pipeline::XInsight::from_fitted)
    /// unless the caller restores them from bundle metadata).
    pub ci_cache_fit_time: CacheStats,
}

/// The self-describing answer to an [`ExplainRequest`].
///
/// ```
/// use std::time::Duration;
/// use xinsight_core::{ExplainResponse, Explanation, ExplanationType, ScoredExplanation};
/// use xinsight_data::Predicate;
///
/// let response = ExplainResponse {
///     explanations: vec![ScoredExplanation {
///         rank: 1,
///         score: 0.8,
///         explanation: Explanation {
///             explanation_type: ExplanationType::Causal,
///             causal_role: None,
///             predicate: Predicate::new("Smoking", ["Yes"]),
///             responsibility: 0.8,
///             contingency: None,
///             original_delta: 1.0,
///             remaining_delta: Some(0.2),
///         },
///     }],
///     truncated: false,
///     deadline_hit: false,
///     elapsed: Duration::from_millis(2),
///     provenance: None,
/// };
/// assert_eq!(response.explanations[0].rank, 1);
/// // The legacy shape is one call away.
/// let flat = response.into_explanations();
/// assert_eq!(flat[0].attribute(), "Smoking");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainResponse {
    /// The ranked explanations, best first, after the request's type
    /// allowlist, `min_score` and `top_k` filters.
    pub explanations: Vec<ScoredExplanation>,
    /// `true` when `min_score`/`top_k` dropped explanations that the
    /// search had found.
    pub truncated: bool,
    /// `true` when the deadline expired before every candidate attribute
    /// was searched — the ranked list is then a valid answer over the
    /// attributes that were searched, not necessarily over all of them.
    pub deadline_hit: bool,
    /// Wall-clock time the engine spent answering.
    pub elapsed: Duration,
    /// Present when the request set
    /// [`include_provenance`](ExplainRequest::include_provenance).
    pub provenance: Option<Provenance>,
}

impl ExplainResponse {
    /// Strips ranks and scores, returning the explanations in rank order —
    /// exactly the legacy `explain` return value.
    pub fn into_explanations(self) -> Vec<Explanation> {
        self.explanations
            .into_iter()
            .map(|scored| scored.explanation)
            .collect()
    }

    /// The number of ranked explanations.
    pub fn len(&self) -> usize {
        self.explanations.len()
    }

    /// Whether the response carries no explanations.
    pub fn is_empty(&self) -> bool {
        self.explanations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, Subspace};

    fn query() -> WhyQuery {
        WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap()
    }

    #[test]
    fn builder_sets_every_control_and_normalizes_types() {
        let request = ExplainRequest::builder(query())
            .top_k(5)
            .min_score(0.1)
            .allow_types([
                ExplanationType::NonCausal,
                ExplanationType::Causal,
                ExplanationType::Causal,
            ])
            .parallel(true)
            .deadline(Duration::from_secs(1))
            .include_provenance(true)
            .build();
        assert_eq!(request.top_k(), Some(5));
        assert_eq!(request.min_score(), Some(0.1));
        // Sorted (Causal first) and deduplicated.
        assert_eq!(
            request.types(),
            Some(&[ExplanationType::Causal, ExplanationType::NonCausal][..])
        );
        assert_eq!(request.parallel(), Some(true));
        assert_eq!(request.deadline(), Some(Duration::from_secs(1)));
        assert!(request.include_provenance());
        assert!(!request.has_default_options());
    }

    #[test]
    fn new_request_is_default() {
        let request = ExplainRequest::new(query());
        assert!(request.has_default_options());
        assert_eq!(request.top_k(), None);
        assert_eq!(request.types(), None);
        assert_eq!(request.deadline(), None);
        assert!(!request.include_provenance());
        // The builder with no calls is the same request.
        assert_eq!(ExplainRequest::builder(query()).build(), request);
    }

    #[test]
    fn response_accessors_and_flattening() {
        let response = ExplainResponse {
            explanations: Vec::new(),
            truncated: true,
            deadline_hit: false,
            elapsed: Duration::ZERO,
            provenance: None,
        };
        assert!(response.is_empty());
        assert_eq!(response.len(), 0);
        assert!(response.into_explanations().is_empty());
    }
}
