//! Thread-pool configuration shared by the engine and the experiment
//! binaries.
//!
//! All of XInsight's online-phase parallelism (per-query, per-attribute and
//! per-filter fan-out) and the experiment harness's sweeps run on rayon's
//! global pool.  This module is the single place that pool gets sized, so an
//! engine embedded in a server and a benchmark binary behave identically:
//!
//! 1. the `XINSIGHT_THREADS` environment variable, when set to a positive
//!    integer, pins the worker count;
//! 2. otherwise rayon's own defaults apply (`RAYON_NUM_THREADS`, then the
//!    machine's available parallelism).
//!
//! Call [`configure_pool_from_env`] once at process start (before the first
//! parallel operation — the pool size latches on first use).  Calling it
//! again, or after the pool latched, is harmless: the existing size stays.

/// Environment variable naming the worker-thread count for the shared pool.
pub const THREADS_ENV: &str = "XINSIGHT_THREADS";

/// Applies `XINSIGHT_THREADS` to the global rayon pool (see the module docs
/// for the resolution order) and returns the number of threads parallel
/// operations will use.
pub fn configure_pool_from_env() -> usize {
    if let Some(n) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        // Ignore failure: the pool size already latched, which the return
        // value below reports faithfully.
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global();
    }
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_a_positive_thread_count() {
        let n = configure_pool_from_env();
        assert!(n >= 1);
        // Idempotent: a second call reports the same latched size.
        assert_eq!(configure_pool_from_env(), n);
    }
}
