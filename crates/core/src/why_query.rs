//! Why Queries (Def. 2.1).

use crate::json::Json;
use xinsight_data::{
    Aggregate, DataError, Dataset, Filter, Result, RowMask, SegmentedDataset, Subspace,
};

/// A Why Query `Δ_{s1, s2, M, agg}(D) = agg_M(D_{s1}) − agg_M(D_{s2})` over two
/// sibling subspaces.
///
/// The paper assumes Δ is non-negative w.l.o.g.; [`WhyQuery::oriented`]
/// swaps the subspaces when necessary so user code does not have to care.
///
/// Queries are `Eq + Hash` (subspace filters are kept sorted by attribute,
/// so structurally equal queries hash equally) and serialize to a canonical
/// JSON form ([`WhyQuery::to_json`]), which doubles as the serving layer's
/// wire format and result-cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WhyQuery {
    measure: String,
    aggregate: Aggregate,
    s1: Subspace,
    s2: Subspace,
    foreground: String,
    foreground_values: (String, String),
}

impl WhyQuery {
    /// Creates a Why Query.  The two subspaces must be siblings (identical
    /// except for the value of exactly one dimension, the *foreground*
    /// variable).
    pub fn new(
        measure: impl Into<String>,
        aggregate: Aggregate,
        s1: Subspace,
        s2: Subspace,
    ) -> Result<Self> {
        let (fg, v1, v2) = s1.sibling_difference(&s2).ok_or_else(|| {
            DataError::OverlappingSubspace(
                "Why Query subspaces must be siblings (differ in exactly one filter)".into(),
            )
        })?;
        let foreground = fg.to_owned();
        let foreground_values = (v1.to_owned(), v2.to_owned());
        Ok(WhyQuery {
            measure: measure.into(),
            aggregate,
            s1,
            s2,
            foreground,
            foreground_values,
        })
    }

    /// The target measure `M`.
    pub fn measure(&self) -> &str {
        &self.measure
    }

    /// The aggregate function.
    pub fn aggregate(&self) -> Aggregate {
        self.aggregate
    }

    /// The first sibling subspace.
    pub fn s1(&self) -> &Subspace {
        &self.s1
    }

    /// The second sibling subspace.
    pub fn s2(&self) -> &Subspace {
        &self.s2
    }

    /// The foreground (breakdown) dimension `F`.
    pub fn foreground(&self) -> &str {
        &self.foreground
    }

    /// The two values the foreground dimension takes in `s1` and `s2`.
    pub fn foreground_values(&self) -> (&str, &str) {
        (&self.foreground_values.0, &self.foreground_values.1)
    }

    /// The background dimensions `B` (shared filters of the siblings).
    pub fn background(&self) -> Vec<&str> {
        self.s1
            .filters()
            .iter()
            .map(|f| f.attribute())
            .filter(|a| *a != self.foreground)
            .collect()
    }

    /// Evaluates `Δ(D)` over the whole dataset.
    pub fn delta(&self, data: &Dataset) -> Result<f64> {
        self.delta_over(data, &data.all_rows())
    }

    /// Evaluates `Δ(D')` where `D'` is the subset selected by `restriction`
    /// (the paper's `Δ(D − D_P)` etc. are expressed this way).
    ///
    /// When either sibling subspace becomes empty under a non-additive
    /// aggregate the difference is undefined; this returns `Ok(None)` in that
    /// case via [`WhyQuery::delta_over_opt`] — this method maps it to an
    /// error for callers that require a value.
    pub fn delta_over(&self, data: &Dataset, restriction: &RowMask) -> Result<f64> {
        self.delta_over_opt(data, restriction)?
            .ok_or_else(|| DataError::EmptyAggregate {
                aggregate: "WHY-QUERY",
                attribute: self.measure.clone(),
            })
    }

    /// Like [`WhyQuery::delta_over`] but returns `None` when one side is
    /// empty and the aggregate is undefined there.
    pub fn delta_over_opt(&self, data: &Dataset, restriction: &RowMask) -> Result<Option<f64>> {
        let m1 = self.s1.mask(data)?.and(restriction);
        let m2 = self.s2.mask(data)?.and(restriction);
        let a1 = self.aggregate.eval_opt(data, &self.measure, &m1)?;
        let a2 = self.aggregate.eval_opt(data, &self.measure, &m2)?;
        Ok(match (a1, a2) {
            (Some(x), Some(y)) => Some(x - y),
            _ => None,
        })
    }

    /// Serializes the query to its canonical JSON value (see
    /// [`WhyQuery::to_json`]).
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("measure".to_owned(), Json::Str(self.measure.clone())),
            (
                "aggregate".to_owned(),
                Json::Str(self.aggregate.to_string()),
            ),
            ("s1".to_owned(), subspace_to_json(&self.s1)),
            ("s2".to_owned(), subspace_to_json(&self.s2)),
        ])
    }

    /// Serializes the query to canonical JSON text:
    ///
    /// ```json
    /// {"measure":"M","aggregate":"AVG","s1":[["X","a"]],"s2":[["X","b"]]}
    /// ```
    ///
    /// Subspaces are arrays of `[attribute, value]` pairs in the (sorted)
    /// filter order [`Subspace`] maintains, so structurally equal queries
    /// serialize to identical bytes — the serving layer keys its result
    /// cache on this property.  [`WhyQuery::from_json`] round-trips exactly
    /// and re-validates the sibling constraint.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Parses a query from a JSON value (see [`WhyQuery::to_json`] for the
    /// format).  Runs the full [`WhyQuery::new`] validation, so a wire
    /// query that is not a sibling pair is rejected.
    pub fn from_json_value(doc: &Json) -> Result<WhyQuery> {
        let measure = doc.get("measure")?.as_str()?;
        let aggregate: Aggregate = doc.get("aggregate")?.as_str()?.parse()?;
        let s1 = subspace_from_json(doc.get("s1")?)?;
        let s2 = subspace_from_json(doc.get("s2")?)?;
        WhyQuery::new(measure, aggregate, s1, s2)
    }

    /// Parses a query from canonical JSON text.
    pub fn from_json(text: &str) -> Result<WhyQuery> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Returns a query with `s1`/`s2` possibly swapped so that `Δ(D) ≥ 0`
    /// (the paper's w.l.o.g. convention).
    pub fn oriented(&self, data: &Dataset) -> Result<WhyQuery> {
        if self.delta(data)? >= 0.0 {
            Ok(self.clone())
        } else {
            Ok(self.flipped())
        }
    }

    /// Evaluates `Δ(D)` over a segmented store, merging the per-segment
    /// partial aggregates exactly (bit-identical for any segmentation of
    /// the same rows).  Errors when either sibling side is empty and the
    /// aggregate undefined there; see [`WhyQuery::delta_store_opt`].
    pub fn delta_store(&self, store: &SegmentedDataset) -> Result<f64> {
        self.delta_store_opt(store)?
            .ok_or_else(|| DataError::EmptyAggregate {
                aggregate: "WHY-QUERY",
                attribute: self.measure.clone(),
            })
    }

    /// Like [`WhyQuery::delta_store`] but returns `None` when one side is
    /// empty and the aggregate is undefined there.
    pub fn delta_store_opt(&self, store: &SegmentedDataset) -> Result<Option<f64>> {
        let a1 = store.aggregate_subspace(&self.measure, self.aggregate, &self.s1)?;
        let a2 = store.aggregate_subspace(&self.measure, self.aggregate, &self.s2)?;
        Ok(match (a1, a2) {
            (Some(x), Some(y)) => Some(x - y),
            _ => None,
        })
    }

    /// [`WhyQuery::oriented`] over a segmented store: swaps `s1`/`s2` when
    /// necessary so that `Δ(D) ≥ 0`.
    pub fn oriented_store(&self, store: &SegmentedDataset) -> Result<WhyQuery> {
        if self.delta_store(store)? >= 0.0 {
            Ok(self.clone())
        } else {
            Ok(self.flipped())
        }
    }

    /// The sibling-swapped query (`s1 ↔ s2`, foreground values swapped).
    fn flipped(&self) -> WhyQuery {
        let mut flipped = self.clone();
        std::mem::swap(&mut flipped.s1, &mut flipped.s2);
        flipped.foreground_values = (
            flipped.foreground_values.1.clone(),
            flipped.foreground_values.0.clone(),
        );
        flipped
    }
}

/// A subspace as a JSON array of `[attribute, value]` pairs.
fn subspace_to_json(subspace: &Subspace) -> Json {
    Json::Arr(
        subspace
            .filters()
            .iter()
            .map(|f| {
                Json::Arr(vec![
                    Json::Str(f.attribute().to_owned()),
                    Json::Str(f.value().to_owned()),
                ])
            })
            .collect(),
    )
}

fn subspace_from_json(doc: &Json) -> Result<Subspace> {
    let filters = doc
        .as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return Err(DataError::Serve(
                    "subspace filter needs [attribute, value]".into(),
                ));
            }
            Ok(Filter::equals(pair[0].as_str()?, pair[1].as_str()?))
        })
        .collect::<Result<Vec<_>>>()?;
    Subspace::new(filters)
}

impl std::fmt::Display for WhyQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Why is {}({}) in [{}] different from [{}]?",
            self.aggregate, self.measure, self.s1, self.s2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{DatasetBuilder, Filter};

    fn data() -> Dataset {
        DatasetBuilder::new()
            .dimension("Location", ["A", "A", "A", "B", "B", "B"])
            .dimension("Smoking", ["Yes", "Yes", "No", "No", "No", "Yes"])
            .measure("LungCancer", [3.0, 3.0, 1.0, 1.0, 1.0, 3.0])
            .build()
            .unwrap()
    }

    fn query() -> WhyQuery {
        WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "A"),
            Subspace::of("Location", "B"),
        )
        .unwrap()
    }

    #[test]
    fn delta_matches_hand_computation() {
        let d = data();
        let q = query();
        // AVG(A) = 7/3, AVG(B) = 5/3, Δ = 2/3.
        assert!((q.delta(&d).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(q.foreground(), "Location");
        assert_eq!(q.foreground_values(), ("A", "B"));
        assert!(q.background().is_empty());
    }

    #[test]
    fn delta_over_restriction() {
        let d = data();
        let q = query();
        // Restricting to Smoking = Yes: AVG(A) = 3, AVG(B) = 3, Δ' = 0.
        let yes = Filter::equals("Smoking", "Yes").mask(&d).unwrap();
        assert!((q.delta_over(&d, &yes).unwrap()).abs() < 1e-12);
        // Restricting to Smoking = No: both sides average 1.
        let no = Filter::equals("Smoking", "No").mask(&d).unwrap();
        assert!((q.delta_over(&d, &no).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn empty_side_is_none() {
        let d = data();
        let q = query();
        let empty = RowMask::zeros(d.n_rows());
        assert_eq!(q.delta_over_opt(&d, &empty).unwrap(), None);
        assert!(q.delta_over(&d, &empty).is_err());
    }

    #[test]
    fn non_sibling_subspaces_rejected() {
        let err = WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "A"),
            Subspace::of("Smoking", "Yes"),
        )
        .unwrap_err();
        assert!(matches!(err, DataError::OverlappingSubspace(_)));
    }

    #[test]
    fn oriented_swaps_when_negative() {
        let d = data();
        let reversed = WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "B"),
            Subspace::of("Location", "A"),
        )
        .unwrap();
        assert!(reversed.delta(&d).unwrap() < 0.0);
        let fixed = reversed.oriented(&d).unwrap();
        assert!(fixed.delta(&d).unwrap() > 0.0);
        assert_eq!(fixed.foreground_values(), ("A", "B"));
    }

    #[test]
    fn store_deltas_match_monolithic_deltas_across_segmentations() {
        let d = data();
        let q = query();
        let mono = q.delta(&d).unwrap();
        let store = SegmentedDataset::from_dataset(d.clone());
        assert_eq!(q.delta_store(&store).unwrap().to_bits(), mono.to_bits());
        // Split the same rows across two segments: identical bits.
        let first = d
            .filter_rows(&RowMask::from_bools([true, true, true, true, false, false]))
            .unwrap();
        let rest = d
            .filter_rows(&RowMask::from_bools([
                false, false, false, false, true, true,
            ]))
            .unwrap();
        let split = SegmentedDataset::from_dataset(first).seal(&rest).unwrap();
        assert_eq!(q.delta_store(&split).unwrap().to_bits(), mono.to_bits());
        // Orientation over the store mirrors the dataset path.
        let reversed = WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "B"),
            Subspace::of("Location", "A"),
        )
        .unwrap();
        let fixed = reversed.oriented_store(&split).unwrap();
        assert!(fixed.delta_store(&split).unwrap() > 0.0);
        assert_eq!(fixed.foreground_values(), ("A", "B"));
        // Empty sides are None / an error, mirroring delta_over_opt.
        let ghost = WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "A"),
            Subspace::of("Location", "Z"),
        )
        .unwrap();
        assert_eq!(ghost.delta_store_opt(&split).unwrap(), None);
        assert!(ghost.delta_store(&split).is_err());
    }

    #[test]
    fn background_variables_reported() {
        let s1 = Subspace::new([
            Filter::equals("Location", "A"),
            Filter::equals("Smoking", "Yes"),
        ])
        .unwrap();
        let s2 = Subspace::new([
            Filter::equals("Location", "B"),
            Filter::equals("Smoking", "Yes"),
        ])
        .unwrap();
        let q = WhyQuery::new("LungCancer", Aggregate::Sum, s1, s2).unwrap();
        assert_eq!(q.background(), vec!["Smoking"]);
        assert_eq!(q.foreground(), "Location");
    }

    #[test]
    fn display_is_readable() {
        let q = query();
        let s = q.to_string();
        assert!(s.contains("AVG(LungCancer)"));
        assert!(s.contains("Location = A"));
    }

    #[test]
    fn json_round_trip_is_canonical() {
        let s1 = Subspace::new([
            Filter::equals("Smoking", "Yes"),
            Filter::equals("Location", "A"),
        ])
        .unwrap();
        let s2 = Subspace::new([
            Filter::equals("Location", "B"),
            Filter::equals("Smoking", "Yes"),
        ])
        .unwrap();
        let q = WhyQuery::new("LungCancer", Aggregate::Avg, s1, s2).unwrap();
        let json = q.to_json();
        // Filters appear sorted by attribute regardless of insertion order.
        assert_eq!(
            json,
            "{\"measure\":\"LungCancer\",\"aggregate\":\"AVG\",\
             \"s1\":[[\"Location\",\"A\"],[\"Smoking\",\"Yes\"]],\
             \"s2\":[[\"Location\",\"B\"],[\"Smoking\",\"Yes\"]]}"
        );
        let back = WhyQuery::from_json(&json).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn equal_queries_hash_equally() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |q: &WhyQuery| {
            let mut h = DefaultHasher::new();
            q.hash(&mut h);
            h.finish()
        };
        let a = query();
        let b = WhyQuery::from_json(&a.to_json()).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn wire_queries_are_validated() {
        // Not siblings: both filters differ.
        let bad = "{\"measure\":\"M\",\"aggregate\":\"AVG\",\
                    \"s1\":[[\"X\",\"a\"]],\"s2\":[[\"Y\",\"b\"]]}";
        assert!(WhyQuery::from_json(bad).is_err());
        // Unknown aggregate.
        let bad = "{\"measure\":\"M\",\"aggregate\":\"MEDIAN\",\
                    \"s1\":[[\"X\",\"a\"]],\"s2\":[[\"X\",\"b\"]]}";
        assert!(WhyQuery::from_json(bad).is_err());
        // Malformed filter pair.
        let bad = "{\"measure\":\"M\",\"aggregate\":\"AVG\",\
                    \"s1\":[[\"X\"]],\"s2\":[[\"X\",\"b\"]]}";
        assert!(WhyQuery::from_json(bad).is_err());
    }

    #[test]
    fn sum_aggregate_delta() {
        let d = data();
        let q = WhyQuery::new(
            "LungCancer",
            Aggregate::Sum,
            Subspace::of("Location", "A"),
            Subspace::of("Location", "B"),
        )
        .unwrap();
        assert!((q.delta(&d).unwrap() - 2.0).abs() < 1e-12);
    }
}
