//! Why Queries (Def. 2.1).

use xinsight_data::{Aggregate, DataError, Dataset, Result, RowMask, Subspace};

/// A Why Query `Δ_{s1, s2, M, agg}(D) = agg_M(D_{s1}) − agg_M(D_{s2})` over two
/// sibling subspaces.
///
/// The paper assumes Δ is non-negative w.l.o.g.; [`WhyQuery::oriented`]
/// swaps the subspaces when necessary so user code does not have to care.
#[derive(Debug, Clone, PartialEq)]
pub struct WhyQuery {
    measure: String,
    aggregate: Aggregate,
    s1: Subspace,
    s2: Subspace,
    foreground: String,
    foreground_values: (String, String),
}

impl WhyQuery {
    /// Creates a Why Query.  The two subspaces must be siblings (identical
    /// except for the value of exactly one dimension, the *foreground*
    /// variable).
    pub fn new(
        measure: impl Into<String>,
        aggregate: Aggregate,
        s1: Subspace,
        s2: Subspace,
    ) -> Result<Self> {
        let (fg, v1, v2) = s1.sibling_difference(&s2).ok_or_else(|| {
            DataError::OverlappingSubspace(
                "Why Query subspaces must be siblings (differ in exactly one filter)".into(),
            )
        })?;
        let foreground = fg.to_owned();
        let foreground_values = (v1.to_owned(), v2.to_owned());
        Ok(WhyQuery {
            measure: measure.into(),
            aggregate,
            s1,
            s2,
            foreground,
            foreground_values,
        })
    }

    /// The target measure `M`.
    pub fn measure(&self) -> &str {
        &self.measure
    }

    /// The aggregate function.
    pub fn aggregate(&self) -> Aggregate {
        self.aggregate
    }

    /// The first sibling subspace.
    pub fn s1(&self) -> &Subspace {
        &self.s1
    }

    /// The second sibling subspace.
    pub fn s2(&self) -> &Subspace {
        &self.s2
    }

    /// The foreground (breakdown) dimension `F`.
    pub fn foreground(&self) -> &str {
        &self.foreground
    }

    /// The two values the foreground dimension takes in `s1` and `s2`.
    pub fn foreground_values(&self) -> (&str, &str) {
        (&self.foreground_values.0, &self.foreground_values.1)
    }

    /// The background dimensions `B` (shared filters of the siblings).
    pub fn background(&self) -> Vec<&str> {
        self.s1
            .filters()
            .iter()
            .map(|f| f.attribute())
            .filter(|a| *a != self.foreground)
            .collect()
    }

    /// Evaluates `Δ(D)` over the whole dataset.
    pub fn delta(&self, data: &Dataset) -> Result<f64> {
        self.delta_over(data, &data.all_rows())
    }

    /// Evaluates `Δ(D')` where `D'` is the subset selected by `restriction`
    /// (the paper's `Δ(D − D_P)` etc. are expressed this way).
    ///
    /// When either sibling subspace becomes empty under a non-additive
    /// aggregate the difference is undefined; this returns `Ok(None)` in that
    /// case via [`WhyQuery::delta_over_opt`] — this method maps it to an
    /// error for callers that require a value.
    pub fn delta_over(&self, data: &Dataset, restriction: &RowMask) -> Result<f64> {
        self.delta_over_opt(data, restriction)?.ok_or_else(|| {
            DataError::EmptyAggregate {
                aggregate: "WHY-QUERY",
                attribute: self.measure.clone(),
            }
        })
    }

    /// Like [`WhyQuery::delta_over`] but returns `None` when one side is
    /// empty and the aggregate is undefined there.
    pub fn delta_over_opt(&self, data: &Dataset, restriction: &RowMask) -> Result<Option<f64>> {
        let m1 = self.s1.mask(data)?.and(restriction);
        let m2 = self.s2.mask(data)?.and(restriction);
        let a1 = self.aggregate.eval_opt(data, &self.measure, &m1)?;
        let a2 = self.aggregate.eval_opt(data, &self.measure, &m2)?;
        Ok(match (a1, a2) {
            (Some(x), Some(y)) => Some(x - y),
            _ => None,
        })
    }

    /// Returns a query with `s1`/`s2` possibly swapped so that `Δ(D) ≥ 0`
    /// (the paper's w.l.o.g. convention).
    pub fn oriented(&self, data: &Dataset) -> Result<WhyQuery> {
        if self.delta(data)? >= 0.0 {
            Ok(self.clone())
        } else {
            let mut flipped = self.clone();
            std::mem::swap(&mut flipped.s1, &mut flipped.s2);
            flipped.foreground_values = (
                flipped.foreground_values.1.clone(),
                flipped.foreground_values.0.clone(),
            );
            Ok(flipped)
        }
    }
}

impl std::fmt::Display for WhyQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Why is {}({}) in [{}] different from [{}]?",
            self.aggregate, self.measure, self.s1, self.s2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{DatasetBuilder, Filter};

    fn data() -> Dataset {
        DatasetBuilder::new()
            .dimension("Location", ["A", "A", "A", "B", "B", "B"])
            .dimension("Smoking", ["Yes", "Yes", "No", "No", "No", "Yes"])
            .measure("LungCancer", [3.0, 3.0, 1.0, 1.0, 1.0, 3.0])
            .build()
            .unwrap()
    }

    fn query() -> WhyQuery {
        WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "A"),
            Subspace::of("Location", "B"),
        )
        .unwrap()
    }

    #[test]
    fn delta_matches_hand_computation() {
        let d = data();
        let q = query();
        // AVG(A) = 7/3, AVG(B) = 5/3, Δ = 2/3.
        assert!((q.delta(&d).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(q.foreground(), "Location");
        assert_eq!(q.foreground_values(), ("A", "B"));
        assert!(q.background().is_empty());
    }

    #[test]
    fn delta_over_restriction() {
        let d = data();
        let q = query();
        // Restricting to Smoking = Yes: AVG(A) = 3, AVG(B) = 3, Δ' = 0.
        let yes = Filter::equals("Smoking", "Yes").mask(&d).unwrap();
        assert!((q.delta_over(&d, &yes).unwrap()).abs() < 1e-12);
        // Restricting to Smoking = No: both sides average 1.
        let no = Filter::equals("Smoking", "No").mask(&d).unwrap();
        assert!((q.delta_over(&d, &no).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn empty_side_is_none() {
        let d = data();
        let q = query();
        let empty = RowMask::zeros(d.n_rows());
        assert_eq!(q.delta_over_opt(&d, &empty).unwrap(), None);
        assert!(q.delta_over(&d, &empty).is_err());
    }

    #[test]
    fn non_sibling_subspaces_rejected() {
        let err = WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "A"),
            Subspace::of("Smoking", "Yes"),
        )
        .unwrap_err();
        assert!(matches!(err, DataError::OverlappingSubspace(_)));
    }

    #[test]
    fn oriented_swaps_when_negative() {
        let d = data();
        let reversed = WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "B"),
            Subspace::of("Location", "A"),
        )
        .unwrap();
        assert!(reversed.delta(&d).unwrap() < 0.0);
        let fixed = reversed.oriented(&d).unwrap();
        assert!(fixed.delta(&d).unwrap() > 0.0);
        assert_eq!(fixed.foreground_values(), ("A", "B"));
    }

    #[test]
    fn background_variables_reported() {
        let s1 = Subspace::new([
            Filter::equals("Location", "A"),
            Filter::equals("Smoking", "Yes"),
        ])
        .unwrap();
        let s2 = Subspace::new([
            Filter::equals("Location", "B"),
            Filter::equals("Smoking", "Yes"),
        ])
        .unwrap();
        let q = WhyQuery::new("LungCancer", Aggregate::Sum, s1, s2).unwrap();
        assert_eq!(q.background(), vec!["Smoking"]);
        assert_eq!(q.foreground(), "Location");
    }

    #[test]
    fn display_is_readable() {
        let q = query();
        let s = q.to_string();
        assert!(s.contains("AVG(LungCancer)"));
        assert!(s.contains("Location = A"));
    }

    #[test]
    fn sum_aggregate_delta() {
        let d = data();
        let q = WhyQuery::new(
            "LungCancer",
            Aggregate::Sum,
            Subspace::of("Location", "A"),
            Subspace::of("Location", "B"),
        )
        .unwrap();
        assert!((q.delta(&d).unwrap() - 2.0).abs() < 1e-12);
    }
}
