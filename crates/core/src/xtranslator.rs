//! XTranslator (Sec. 3.2): translating causal primitives into XDA semantics.
//!
//! Given the learned causal graph `G` and a Why Query with target measure `M`,
//! foreground variable `F` and background variables `B`, every other variable
//! `X` is classified per Table 3 of the paper:
//!
//! | rule | causal primitive                  | XDA semantics        |
//! |------|-----------------------------------|----------------------|
//! | ➀    | `X ⫫_G M \| F ∪ B` (m-separated)  | no explainability    |
//! | ➁    | `X → M` (parent)                  | causal explanation   |
//! | ➂    | `X → … → M` (ancestor)            | causal explanation   |
//! | ➃    | `X ∘→ M` (almost parent)          | causal explanation   |
//! | ➄    | `X ∘→ … ∘→ M` (almost ancestor)   | causal explanation   |
//! | ➅    | anything else                     | non-causal           |

use crate::explanation::{CausalRole, XdaSemantics};
use crate::why_query::WhyQuery;
use std::collections::BTreeMap;
use xinsight_graph::{separation, Mark, MixedGraph, NodeId};

/// The classification of every candidate variable for one Why Query.
///
/// Variables are stored in a sorted map so iteration order — and therefore
/// the order in which the engine searches and reports explanations — is
/// deterministic across runs.
#[derive(Debug, Clone)]
pub struct Translation {
    semantics: BTreeMap<String, XdaSemantics>,
}

impl Translation {
    /// The semantics of one variable, if it was classified.
    pub fn semantics_of(&self, variable: &str) -> Option<XdaSemantics> {
        self.semantics.get(variable).copied()
    }

    /// All variables that can potentially explain the query (rules ➁–➅),
    /// i.e. everything except "no explainability".
    pub fn explainable_variables(&self) -> Vec<&str> {
        let mut vars: Vec<&str> = self
            .semantics
            .iter()
            .filter(|(_, s)| s.has_explainability())
            .map(|(v, _)| v.as_str())
            .collect();
        vars.sort();
        vars
    }

    /// All variables classified as potential causal explainers.
    pub fn causal_variables(&self) -> Vec<&str> {
        let mut vars: Vec<&str> = self
            .semantics
            .iter()
            .filter(|(_, s)| matches!(s, XdaSemantics::CausalExplanation(_)))
            .map(|(v, _)| v.as_str())
            .collect();
        vars.sort();
        vars
    }

    /// All variables classified as non-causal explainers.
    pub fn non_causal_variables(&self) -> Vec<&str> {
        let mut vars: Vec<&str> = self
            .semantics
            .iter()
            .filter(|(_, s)| matches!(s, XdaSemantics::NonCausalExplanation))
            .map(|(v, _)| v.as_str())
            .collect();
        vars.sort();
        vars
    }

    /// Iterator over `(variable, semantics)` pairs, sorted by variable name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, XdaSemantics)> {
        self.semantics.iter().map(|(v, s)| (v.as_str(), *s))
    }
}

/// Classifies every node of `graph` (other than the target, foreground and
/// background variables) for the given Why Query.
pub fn translate(graph: &MixedGraph, query: &WhyQuery) -> Translation {
    let mut semantics = BTreeMap::new();
    let excluded: Vec<&str> = {
        let mut v = vec![query.measure(), query.foreground()];
        v.extend(query.background());
        v
    };
    for node in graph.names() {
        if excluded.contains(&node.as_str()) {
            continue;
        }
        let s = translate_variable(graph, query, node);
        semantics.insert(node.clone(), s);
    }
    Translation { semantics }
}

/// Classifies a single variable `x` for the query (Table 3).
///
/// Variables absent from the graph (e.g. attributes skipped during learning)
/// are conservatively classified as non-causal explainers.
pub fn translate_variable(graph: &MixedGraph, query: &WhyQuery, x: &str) -> XdaSemantics {
    let (xi, mi) = match (graph.id(x), graph.id(query.measure())) {
        (Some(a), Some(b)) => (a, b),
        _ => return XdaSemantics::NonCausalExplanation,
    };
    // Conditioning set: foreground plus background variables that exist in G.
    let mut cond: Vec<NodeId> = Vec::new();
    if let Some(f) = graph.id(query.foreground()) {
        cond.push(f);
    }
    for b in query.background() {
        if let Some(bi) = graph.id(b) {
            cond.push(bi);
        }
    }
    // Rule ➀: no explainability when X ⫫_G M | F ∪ B.
    if separation::m_separated(graph, xi, mi, &cond) {
        return XdaSemantics::NoExplainability;
    }
    // Rules ➁ / ➃: direct (almost-)parent.
    if graph.adjacent(xi, mi) {
        let at_x = graph.mark_at(xi, mi).expect("adjacent");
        let at_m = graph.mark_at(mi, xi).expect("adjacent");
        if at_m == Mark::Arrow {
            match at_x {
                Mark::Tail => return XdaSemantics::CausalExplanation(CausalRole::Parent),
                Mark::Circle => return XdaSemantics::CausalExplanation(CausalRole::AlmostParent),
                Mark::Arrow => {}
            }
        }
    }
    // Rules ➂ / ➄: (almost-)ancestor via a possibly-directed path.
    match possibly_directed_path(graph, xi, mi) {
        Some(PathKind::Definite) => XdaSemantics::CausalExplanation(CausalRole::Ancestor),
        Some(PathKind::Possible) => XdaSemantics::CausalExplanation(CausalRole::AlmostAncestor),
        None => XdaSemantics::NonCausalExplanation,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathKind {
    /// Every edge on the path is `→` (definite ancestor).
    Definite,
    /// Every edge is `→` or `∘→`/`∘-∘` pointing forward, with at least one circle.
    Possible,
}

/// Searches for a path from `x` to `m` on which every edge can be traversed
/// "forward": no arrowhead at the near end and an arrowhead or circle at the
/// far end.  Returns whether a fully-directed path exists (`Definite`) or only
/// a circle-bearing one (`Possible`).
fn possibly_directed_path(graph: &MixedGraph, x: NodeId, m: NodeId) -> Option<PathKind> {
    // First try definite directed paths only.
    if graph.is_ancestor_of(x, m) && x != m {
        return Some(PathKind::Definite);
    }
    // Then possibly-directed paths: near mark ∈ {Tail, Circle}, far mark ∈ {Arrow, Circle}.
    let mut stack = vec![x];
    let mut visited = vec![false; graph.n_nodes()];
    visited[x] = true;
    while let Some(v) = stack.pop() {
        for w in graph.neighbors(v) {
            if visited[w] {
                continue;
            }
            let near = graph.mark_at(v, w).expect("adjacent");
            let far = graph.mark_at(w, v).expect("adjacent");
            let forward = !near.is_arrow() && !far.is_tail();
            if !forward {
                continue;
            }
            if w == m {
                return Some(PathKind::Possible);
            }
            visited[w] = true;
            stack.push(w);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, Subspace};

    /// The paper's Fig. 1(c)/(d) graph, with the learned orientation:
    /// Location o-> Smoking <-o Stress, Smoking -> LungCancer -> Surgery,
    /// LungCancer -> Survival.
    fn lung_cancer_pag() -> MixedGraph {
        let mut g = MixedGraph::new([
            "Location",
            "Stress",
            "Smoking",
            "LungCancer",
            "Surgery",
            "Survival",
        ]);
        let loc = g.expect_id("Location");
        let stress = g.expect_id("Stress");
        let smoking = g.expect_id("Smoking");
        let cancer = g.expect_id("LungCancer");
        let surgery = g.expect_id("Surgery");
        let survival = g.expect_id("Survival");
        g.add_edge(loc, smoking, Mark::Circle, Mark::Arrow);
        g.add_edge(stress, smoking, Mark::Circle, Mark::Arrow);
        g.add_directed(smoking, cancer);
        g.add_directed(cancer, surgery);
        g.add_directed(cancer, survival);
        g
    }

    fn query() -> WhyQuery {
        WhyQuery::new(
            "LungCancer",
            Aggregate::Avg,
            Subspace::of("Location", "A"),
            Subspace::of("Location", "B"),
        )
        .unwrap()
    }

    #[test]
    fn paper_fig1d_classification() {
        let g = lung_cancer_pag();
        let t = translate(&g, &query());
        // Smoking is a definite parent of LungCancer -> causal.
        assert_eq!(
            t.semantics_of("Smoking"),
            Some(XdaSemantics::CausalExplanation(CausalRole::Parent))
        );
        // Stress is an almost-ancestor (Stress o-> Smoking -> LungCancer).
        assert_eq!(
            t.semantics_of("Stress"),
            Some(XdaSemantics::CausalExplanation(CausalRole::AlmostAncestor))
        );
        // Surgery and Survival are descendants -> non-causal explanations.
        assert_eq!(
            t.semantics_of("Surgery"),
            Some(XdaSemantics::NonCausalExplanation)
        );
        assert_eq!(
            t.semantics_of("Survival"),
            Some(XdaSemantics::NonCausalExplanation)
        );
        // The foreground variable itself is not classified.
        assert_eq!(t.semantics_of("Location"), None);
        assert_eq!(t.causal_variables(), vec!["Smoking", "Stress"]);
        assert_eq!(t.non_causal_variables(), vec!["Surgery", "Survival"]);
        assert_eq!(
            t.explainable_variables(),
            vec!["Smoking", "Stress", "Surgery", "Survival"]
        );
    }

    #[test]
    fn rule_1_no_explainability_when_m_separated_by_foreground() {
        // X -> F -> M: conditioning on F separates X from M.
        let mut g = MixedGraph::new(["X", "F", "M"]);
        g.add_directed(0, 1);
        g.add_directed(1, 2);
        let q = WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("F", "a"),
            Subspace::of("F", "b"),
        )
        .unwrap();
        assert_eq!(
            translate_variable(&g, &q, "X"),
            XdaSemantics::NoExplainability
        );
    }

    #[test]
    fn almost_parent_via_circle_arrow_edge() {
        let mut g = MixedGraph::new(["X", "F", "M"]);
        g.add_edge(0, 2, Mark::Circle, Mark::Arrow); // X o-> M
        g.add_nondirected(1, 2);
        let q = WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("F", "a"),
            Subspace::of("F", "b"),
        )
        .unwrap();
        assert_eq!(
            translate_variable(&g, &q, "X"),
            XdaSemantics::CausalExplanation(CausalRole::AlmostParent)
        );
    }

    #[test]
    fn definite_ancestor_beats_almost_ancestor() {
        // X -> A -> M (all directed): ancestor, not almost-ancestor.
        let mut g = MixedGraph::new(["X", "A", "M", "F"]);
        g.add_directed(0, 1);
        g.add_directed(1, 2);
        g.add_nondirected(3, 2);
        let q = WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("F", "a"),
            Subspace::of("F", "b"),
        )
        .unwrap();
        assert_eq!(
            translate_variable(&g, &q, "X"),
            XdaSemantics::CausalExplanation(CausalRole::Ancestor)
        );
    }

    #[test]
    fn bidirected_neighbour_is_non_causal() {
        // X <-> M: dependent but not a possible cause.
        let mut g = MixedGraph::new(["X", "M", "F"]);
        g.add_bidirected(0, 1);
        g.add_nondirected(2, 1);
        let q = WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("F", "a"),
            Subspace::of("F", "b"),
        )
        .unwrap();
        assert_eq!(
            translate_variable(&g, &q, "X"),
            XdaSemantics::NonCausalExplanation
        );
    }

    #[test]
    fn background_variables_enter_the_conditioning_set() {
        // X -> B -> M with B a background variable: X is separated given {F, B}.
        let mut g = MixedGraph::new(["X", "B", "M", "F"]);
        g.add_directed(0, 1);
        g.add_directed(1, 2);
        g.add_nondirected(3, 2);
        let s1 = Subspace::new([
            xinsight_data::Filter::equals("F", "a"),
            xinsight_data::Filter::equals("B", "high"),
        ])
        .unwrap();
        let s2 = Subspace::new([
            xinsight_data::Filter::equals("F", "b"),
            xinsight_data::Filter::equals("B", "high"),
        ])
        .unwrap();
        let q = WhyQuery::new("M", Aggregate::Avg, s1, s2).unwrap();
        assert_eq!(
            translate_variable(&g, &q, "X"),
            XdaSemantics::NoExplainability
        );
        // The background variable itself is excluded from classification.
        let t = translate(&g, &q);
        assert_eq!(t.semantics_of("B"), None);
    }

    #[test]
    fn variable_missing_from_graph_defaults_to_non_causal() {
        let g = lung_cancer_pag();
        let q = query();
        assert_eq!(
            translate_variable(&g, &q, "NotInGraph"),
            XdaSemantics::NonCausalExplanation
        );
    }
}
