//! # xinsight-service
//!
//! The online serving layer of the XInsight reproduction: everything
//! needed to run the engine as a long-lived, multi-model, concurrent
//! process answering Why Queries over HTTP.
//!
//! The paper's pipeline splits into an expensive offline phase and a
//! cheap online phase; `xinsight-core` already persists the offline
//! artifact ([`FittedModel`](xinsight_core::FittedModel)) and batches the
//! online phase ([`explain_many`](xinsight_core::pipeline::XInsight::explain_many)).
//! This crate turns those pieces into a service:
//!
//! * [`registry`] — loads model **bundles** (dataset CSV + fitted model +
//!   metadata) from a directory, keeps one warm
//!   [`XInsight`](xinsight_core::pipeline::XInsight) engine per model,
//!   and hot-reloads a bundle atomically while requests are in flight;
//! * [`http`] / [`client`] — a dependency-free HTTP/1.1 subset (the
//!   workspace builds offline: no tokio, no hyper) with keep-alive,
//!   bounded heads/bodies and defensive parsing;
//! * [`server`] — the accept thread, bounded **admission queue** (`503`
//!   backpressure when full), worker pool sized with the engine's
//!   `XINSIGHT_THREADS` knob, routing, and graceful shutdown;
//! * [`lru`] — a byte-budgeted, memory-accounted LRU **result cache** in
//!   front of the engine, keyed by `(model, WhyQuery)` and proven
//!   answer-identical to the uncached path;
//! * [`wire`] — the JSON wire format, sharing the engine's hand-rolled
//!   [`json`](xinsight_core::json) codepath and `WhyQuery`'s canonical
//!   serialization;
//! * [`stats`] — QPS, latency histogram and cache-effectiveness counters
//!   behind `GET /stats`;
//! * [`demo`] — fitted SYN-A / FLIGHT demo bundles and deterministic
//!   query pools for the smoke test and the `loadgen` bench.
//!
//! Two binaries ship with the crate: `xinsight-serve` (the server) and
//! `loadgen` (closed-loop concurrent load generation emitting
//! `BENCH_serve.json`).  See the README's serving quickstart.
//!
//! ## Endpoints
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `POST /explain` | `{"model", "query"}` | ranked explanations (LRU-cached) |
//! | `POST /explain_batch` | `{"model", "queries"}` | per-query results, shared `SelectionCache` |
//! | `GET /models` | — | loaded models + example queries |
//! | `GET /stats` | — | QPS, latency, cache hit rates |
//! | `POST /admin/reload` | `{"model"}` | atomic hot-reload of one bundle |
//! | `POST /admin/shutdown` | — | graceful shutdown |

#![warn(missing_docs)]

pub mod client;
pub mod demo;
pub mod http;
pub mod lru;
pub mod registry;
pub mod server;
pub mod stats;
pub mod wire;

pub use client::{ClientResponse, HttpClient};
pub use demo::{build_demo_bundles, demo_queries, DemoModel};
pub use lru::{CacheKey, ResultCache, ResultCacheStats};
pub use registry::{save_bundle, LoadedModel, ModelRegistry};
pub use server::{start, ServerConfig, ServerHandle};
