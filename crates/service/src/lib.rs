//! # xinsight-service
//!
//! The online serving layer of the XInsight reproduction: everything
//! needed to run the engine as a long-lived, multi-model, concurrent
//! process answering Why Queries over HTTP.
//!
//! The paper's pipeline splits into an expensive offline phase and a
//! cheap online phase; `xinsight-core` already persists the offline
//! artifact ([`FittedModel`](xinsight_core::FittedModel)) and executes the
//! online phase through the unified request/response API
//! ([`execute`](xinsight_core::pipeline::XInsight::execute) over
//! [`ExplainRequest`](xinsight_core::ExplainRequest) /
//! [`ExplainResponse`](xinsight_core::ExplainResponse)).
//! This crate turns those pieces into a service:
//!
//! * [`registry`] — loads model **bundles** (dataset CSV + fitted model +
//!   metadata) from a directory, keeps one warm
//!   [`XInsight`](xinsight_core::pipeline::XInsight) engine per model,
//!   and hot-reloads a bundle atomically while requests are in flight;
//! * [`http`] / [`client`] — a dependency-free HTTP/1.1 subset (the
//!   workspace builds offline: no tokio, no hyper) with keep-alive,
//!   bounded heads/bodies and defensive parsing;
//! * [`server`] — the readiness-driven **event loop** (epoll(7) with a
//!   portable poll(2) fallback) owning every socket, the bounded
//!   **admission queue** of parsed requests (`503` backpressure when
//!   full), the worker pool sized with the engine's `XINSIGHT_THREADS`
//!   knob, routing, and graceful drain shutdown — idle keep-alive
//!   connections park in the kernel instead of pinning threads;
//! * [`lru`] — a byte-budgeted, memory-accounted LRU **result cache** in
//!   front of the engine, scoped by segment-set fingerprints: entries
//!   survive ingest (promoted when the new rows provably cannot move the
//!   answer, merged through the engine's partial cache otherwise) and are
//!   remapped across background compaction, proven answer-identical to
//!   the uncached path;
//! * [`wire`] — the **versioned** JSON wire format (stable v1 plus the
//!   `/v2` surface carrying per-request options and the full response
//!   envelope), sharing the engine's hand-rolled
//!   [`json`](xinsight_core::json) codepath and `WhyQuery`'s canonical
//!   serialization;
//! * [`stats`] — QPS, latency histogram and cache-effectiveness counters
//!   behind `GET /stats`;
//! * [`metrics`] / [`trace`] — the observability surface: hand-rolled
//!   Prometheus text exposition at `GET /metrics` (per-endpoint counters,
//!   request and per-stage latency histograms, cache tiers, event-loop
//!   health gauges) and per-request lifecycle traces — parse, queue-wait,
//!   cache-lookup, execute, serialize, write spans on one monotonic clock
//!   — kept in a bounded ring plus a slow-trace reservoir
//!   (`--trace-slow-ms`) behind `GET /debug/traces`;
//! * [`demo`] — fitted SYN-A / FLIGHT demo bundles and deterministic
//!   query pools for the smoke test and the `loadgen` bench.
//!
//! Two binaries ship with the crate: `xinsight-serve` (the server) and
//! `loadgen` (closed-loop concurrent clients plus coordinated-omission-free
//! open-loop arrival schedules, emitting `BENCH_serve.json`).  See the
//! README's serving quickstart.
//!
//! ## Endpoints
//!
//! <!-- xlint-endpoints: begin(docs) -->
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `GET /healthz` | — | `{"ok":true}` liveness, no model touch |
//! | `POST /explain` | `{"model", "query"}` | v1: bare ranked explanations (LRU-cached) |
//! | `POST /explain_batch` | `{"model", "queries"}` | v1: per-query results, shared `SelectionCache` |
//! | `POST /v2/explain` | `{"model", "query", "options"?}` | full envelope: ranked+scored, markers, provenance |
//! | `POST /v2/explain_batch` | `{"model", "queries", "options"?}` | per-query v2 envelopes |
//! | `GET /v2/graph` | `?model=<id>&format=json\|dot\|mermaid` | the fitted PAG + FD graph + sepsets, as JSON or rendered DOT/Mermaid |
//! | `POST /v2/ingest` | `{"model", "rows"}` | appends a sealed segment, bumps the generation — no reload |
//! | `GET /models` | — | loaded models + example queries + ingest templates |
//! | `GET /stats` | — | QPS, latency, per-stage latency, cache hit rates, per-model segments/rows/epoch |
//! | `GET /metrics` | — | Prometheus text exposition of everything `/stats` counts plus per-stage histograms and event-loop gauges |
//! | `POST /admin/reload` | `{"model"}` | atomic hot-reload of one bundle |
//! | `POST /admin/shutdown` | — | graceful shutdown |
//! | `POST /debug/sleep` | `{"ms"}` | worker-occupying fixed sleep for overload experiments — gated on `--debug-endpoints`, `404` otherwise |
//! | `GET /debug/traces` | — | recent + slow request traces with per-stage spans — gated on `--debug-endpoints`, `404` otherwise |
//! <!-- xlint-endpoints: end(docs) -->
//!
//! The v1 endpoints are thin adapters that build a *default*
//! [`ExplainRequest`](xinsight_core::ExplainRequest); their wire bytes are
//! unchanged (property-tested in `tests/api_v2.rs`).

#![warn(missing_docs)]

pub mod client;
pub mod demo;
mod event;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod stats;
pub mod trace;
pub mod wire;

pub use client::{explain_v2_body, ingest_v2_body, wait_healthy, ClientResponse, HttpClient};
pub use demo::{build_demo_bundles, demo_queries, demo_v2_options, DemoModel};
pub use lru::{CacheKey, Lookup, ResultCache, ResultCacheStats, SegmentRef};
pub use metrics::validate_exposition;
pub use registry::{save_bundle, CompactionReport, IngestReport, LoadedModel, ModelRegistry};
pub use server::{start, ServerConfig, ServerHandle};
pub use trace::{Stage, TraceStore};
