//! The memory-accounted, segment-set-scoped LRU result cache in front of
//! the explain engine.
//!
//! Serving traffic repeats itself: dashboards re-issue the same Why Query
//! on every refresh, and many users look at the same anomaly.  The
//! [`ResultCache`] memoizes the *serialized explanation list* per
//! `(model, query, options)` so a repeat costs a hash lookup instead of an
//! XPlainer search — and because the cached value is the exact byte string
//! the uncached path would serialize, cached and direct answers are
//! identical by construction (property-tested in `tests/serving.rs`,
//! including across forced evictions).
//!
//! ## Segment-set scoping
//!
//! Each entry records the **fingerprint** of the store snapshot it was
//! computed against: the ordered list of `(segment id, seal epoch)` pairs
//! ([`SegmentRef`]s) plus the global-dictionary size.  Ingest only ever
//! *appends* segments, so after an ingest the previous snapshot's
//! fingerprint is a **proper prefix** of the current one — and a cached
//! entry under that prefix is still byte-exact *iff* nothing that can move
//! scores changed: the new segments contribute no rows to the query's
//! sibling subspaces and no dimension gained a category (candidate filter
//! sets and the `σ = 1/m` regulariser depend on cardinality).  The caller
//! owns that validation (it needs the engine's segment masks); the cache
//! reports the candidate via [`Lookup::Prefix`] and the caller either
//! [`ResultCache::promote`]s the entry to the current fingerprint (serving
//! the cached bytes) or recomputes through the engine's per-segment
//! partial-aggregate cache — the *prefix merge* path, in which every
//! pre-ingest segment's partials replay and only the new segments are
//! computed — and records it via [`ResultCache::merged`].
//!
//! Fingerprints also make reload and compaction race-free without a
//! generation counter: both produce freshly-identified segments, so a slow
//! pre-swap request that inserts after the swap leaves an entry no
//! post-swap lookup can hit or promote (segment ids are process-unique and
//! never reused).  [`ResultCache::invalidate_model`] (reload) and
//! [`ResultCache::remap_model`] (compaction) reclaim those bytes.
//!
//! ## Bounding
//!
//! Unlike the engine's internal [`SelectionCache`] (never-evicting), this
//! cache is long-lived, so it is bounded by a configurable **byte
//! budget**: every entry is charged for its key (model id + canonical
//! query JSON + options), its fingerprint, its value and a fixed
//! bookkeeping overhead, and the least-recently-used entries are evicted
//! until the total fits.  Values larger than the whole budget are served
//! but never admitted.
//!
//! Recency is tracked with a monotonic tick per access: a `HashMap` holds
//! the entries and a `BTreeMap<tick, key>` orders them, making
//! lookup/insert `O(log n)` without an intrusive linked list.  One mutex
//! guards both maps (lookups are cheap relative to an explain);
//! hit/miss/eviction counters are relaxed atomics so `/stats` never
//! contends with serving.
//!
//! [`SelectionCache`]: xinsight_core::SelectionCache

// HashMap here never leaks iteration order into output: cache interior; eviction order comes from the recency BTreeMap (see clippy.toml).
#![allow(clippy::disallowed_types)]

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xinsight_core::WhyQuery;

/// Fixed per-entry byte charge covering the maps' bookkeeping (hash entry,
/// tick entry, `Arc` header) on top of the measured key/value lengths.
pub const ENTRY_OVERHEAD_BYTES: usize = 128;

/// Identity of one sealed segment as the result cache sees it: the
/// process-unique segment id plus its seal epoch.  A store snapshot's
/// fingerprint is its ordered `Vec<SegmentRef>`.
pub type SegmentRef = (u64, u64);

/// Byte charge per fingerprint element.
const SEGMENT_REF_BYTES: usize = std::mem::size_of::<SegmentRef>();

/// Logical key of one cached result: the serving model, the
/// (canonicalized, hashable) query, and the canonical per-request options
/// suffix.  The store snapshot the value was computed against is *not*
/// part of the key — it is recorded on the entry as its fingerprint, so
/// one logical key holds at most one value and lookups decide between
/// exact replay, prefix promotion and recompute by comparing fingerprints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The model the query was answered against.
    pub model: String,
    /// The query itself; `WhyQuery`'s `Hash`/`Eq` make it directly usable
    /// as a map key, and its canonical JSON length is what the byte budget
    /// charges for.
    pub query: WhyQuery,
    /// Canonical serialization of the request's result-shaping options
    /// ([`RequestOptions::cache_key`](crate::wire::RequestOptions::cache_key)),
    /// so two requests that differ only in `top_k`, `min_score`, `types`
    /// or `deadline_ms` never alias.  v1 requests — whose cached value is
    /// a bare explanation array rather than a v2 result object — use the
    /// empty string.
    pub options: String,
}

/// Outcome of a [`ResultCache::lookup`] against the current store
/// fingerprint.
#[derive(Debug, Clone)]
pub enum Lookup {
    /// The entry covers exactly the current segment set: the cached bytes
    /// are the answer.
    Hit(Arc<str>),
    /// An entry exists under a **proper prefix** of the current
    /// fingerprint (the snapshot before one or more ingests).  The caller
    /// must validate whether the suffix segments can change the answer;
    /// on success call [`ResultCache::promote`], otherwise recompute
    /// through the engine's partial cache and record
    /// [`ResultCache::merged`] (or [`ResultCache::note_miss`] if the
    /// recompute was cut short by a deadline).
    Prefix {
        /// The fingerprint the cached entry was computed against — a
        /// proper prefix of the lookup fingerprint.  The suffix to
        /// validate is `current[prefix.len()..]`.
        prefix: Vec<SegmentRef>,
        /// Whether the store's global dictionary is unchanged since the
        /// entry was cached.  When `false` the entry can never be
        /// promoted (cardinality-dependent scores may differ).
        dict_unchanged: bool,
    },
    /// No usable entry: compute from scratch (already counted as a miss).
    Miss,
}

#[derive(Debug)]
struct Entry {
    value: Arc<str>,
    /// The store snapshot the value was computed against.
    fingerprint: Vec<SegmentRef>,
    /// Total global-dictionary categories at compute time.
    dict_len: usize,
    bytes: usize,
    tick: u64,
}

#[derive(Debug, Default)]
struct LruState {
    entries: HashMap<CacheKey, Entry>,
    /// `tick → key`, oldest first.  Ticks are unique (monotonic counter).
    order: BTreeMap<u64, CacheKey>,
    next_tick: u64,
    bytes: usize,
}

impl LruState {
    fn fresh_tick(&mut self) -> u64 {
        let tick = self.next_tick;
        self.next_tick += 1;
        tick
    }

    fn remove(&mut self, key: &CacheKey) -> Option<Entry> {
        let entry = self.entries.remove(key)?;
        self.order.remove(&entry.tick);
        self.bytes -= entry.bytes;
        Some(entry)
    }
}

/// A point-in-time snapshot of the result cache for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups that reached a tier verdict.  Because every tier counter is
    /// incremented together with this one under the cache's state lock —
    /// and [`ResultCache::stats`] reads under the same lock — a snapshot
    /// always satisfies `hits + prefix_hits + merged + misses == lookups`
    /// exactly.  The one tolerance: a [`Lookup::Prefix`] candidate whose
    /// caller has not yet resolved it (via promote / merged / note_miss)
    /// is counted on *neither* side until resolution.
    pub lookups: u64,
    /// Lookups whose entry covered exactly the current segment set.
    pub hits: u64,
    /// Lookups served by promoting a proper-prefix entry whose suffix was
    /// proven unable to change the answer (cached bytes replayed).
    pub prefix_hits: u64,
    /// Lookups answered by the prefix-merge path: a proper-prefix entry
    /// existed, the suffix could change the answer, and the result was
    /// recomputed by merging the cached per-segment partials with freshly
    /// computed partials from only the new segments.
    pub merged: u64,
    /// Lookups with no usable entry (full compute).
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Values too large to ever admit under the budget.
    pub uncacheable: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Accounted bytes currently held.
    pub bytes: usize,
    /// The configured budget.
    pub byte_budget: usize,
}

impl ResultCacheStats {
    /// Fraction of lookups served from cached state — exact replays,
    /// prefix promotions and prefix merges — out of all lookups (`0.0`
    /// before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.prefix_hits + self.merged;
        let lookups = served + self.misses;
        if lookups == 0 {
            0.0
        } else {
            served as f64 / lookups as f64
        }
    }
}

/// Bounded, thread-safe, memory-accounted LRU cache of serialized
/// explanation results, scoped by segment-set fingerprints (see the
/// module docs for the design).
#[derive(Debug)]
pub struct ResultCache {
    state: Mutex<LruState>,
    byte_budget: usize,
    // Tier counters are atomics for lock-free *reads*, but every write
    // happens while holding `state`, paired with a `lookups` increment —
    // that is what makes the `/stats` tier sum reconcile exactly (see
    // [`ResultCacheStats::lookups`]).
    lookups: AtomicU64,
    hits: AtomicU64,
    prefix_hits: AtomicU64,
    merged: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    uncacheable: AtomicU64,
}

fn is_proper_prefix(prefix: &[SegmentRef], full: &[SegmentRef]) -> bool {
    prefix.len() < full.len() && full[..prefix.len()] == *prefix
}

fn entry_bytes(key: &CacheKey, fingerprint: &[SegmentRef], value: &str) -> usize {
    key.model.len()
        + key.query.to_json().len()
        + key.options.len()
        + fingerprint.len() * SEGMENT_REF_BYTES
        + value.len()
        + ENTRY_OVERHEAD_BYTES
}

impl ResultCache {
    /// Creates a cache holding at most `byte_budget` accounted bytes.
    pub fn new(byte_budget: usize) -> Self {
        ResultCache {
            state: Mutex::new(LruState::default()),
            byte_budget,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            prefix_hits: AtomicU64::new(0),
            merged: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    /// Looks a result up against the current store fingerprint and
    /// dictionary size, refreshing recency on an exact hit.
    ///
    /// Counting: an exact [`Lookup::Hit`] and a [`Lookup::Miss`] are
    /// counted here; a [`Lookup::Prefix`] is counted by whichever of
    /// [`ResultCache::promote`], [`ResultCache::merged`] or
    /// [`ResultCache::note_miss`] resolves it.
    pub fn lookup(&self, key: &CacheKey, fingerprint: &[SegmentRef], dict_len: usize) -> Lookup {
        let mut state = self.state.lock();
        let state = &mut *state;
        match state.entries.get_mut(key) {
            Some(entry) if entry.fingerprint == fingerprint => {
                state.order.remove(&entry.tick);
                entry.tick = state.next_tick;
                state.next_tick += 1;
                state.order.insert(entry.tick, key.clone());
                self.lookups.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
                self.hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
                Lookup::Hit(Arc::clone(&entry.value))
            }
            Some(entry) if is_proper_prefix(&entry.fingerprint, fingerprint) => Lookup::Prefix {
                prefix: entry.fingerprint.clone(),
                dict_unchanged: entry.dict_len == dict_len,
            },
            Some(_) | None => {
                // An unrelated fingerprint is a pre-reload/pre-compaction
                // leftover: unreachable for serving, superseded on insert.
                self.lookups.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
                self.misses.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
                Lookup::Miss
            }
        }
    }

    /// Promotes a [`Lookup::Prefix`] candidate to the current fingerprint
    /// after the caller proved the suffix segments cannot change the
    /// answer: the entry is re-stamped (byte accounting adjusted for the
    /// longer fingerprint), its recency refreshed, and the cached bytes
    /// returned as a prefix hit.
    ///
    /// Returns `None` — counted as a miss — if the entry raced away or
    /// changed since the lookup (eviction, concurrent insert, another
    /// promotion); the caller then computes as usual.
    pub fn promote(
        &self,
        key: &CacheKey,
        fingerprint: &[SegmentRef],
        dict_len: usize,
    ) -> Option<Arc<str>> {
        let mut state = self.state.lock();
        let found = matches!(state.entries.get(key),
            Some(entry) if is_proper_prefix(&entry.fingerprint, fingerprint));
        if !found {
            self.lookups.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
            self.misses.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
            return None;
        }
        let mut entry = state.remove(key).expect("entry just found");
        let value = Arc::clone(&entry.value);
        entry.fingerprint = fingerprint.to_vec();
        entry.dict_len = dict_len;
        entry.bytes = entry_bytes(key, fingerprint, &entry.value);
        if entry.bytes > self.byte_budget {
            // Pathological budget: serve the bytes but do not re-admit.
            self.uncacheable.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
            self.lookups.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
            self.prefix_hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
            return Some(value);
        }
        entry.tick = state.fresh_tick();
        state.order.insert(entry.tick, key.clone());
        state.bytes += entry.bytes;
        state.entries.insert(key.clone(), entry);
        self.evict_over_budget(&mut state);
        self.lookups.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
        self.prefix_hits.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
        Some(value)
    }

    /// Records that a [`Lookup::Prefix`] candidate was resolved by the
    /// prefix-merge path: the answer was recomputed through the engine's
    /// per-segment partial cache (pre-ingest partials replayed, only new
    /// segments computed) and the caller typically re-inserts it under the
    /// current fingerprint.
    pub fn merged(&self) {
        // Taken under the state lock (like every tier increment) so a
        // racing `/stats` snapshot can never see the tier sum and
        // `lookups` disagree.
        let _state = self.state.lock();
        self.lookups.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
        self.merged.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
    }

    /// Records a plain miss for a [`Lookup::Prefix`] candidate whose
    /// recompute did not actually merge the cached partials (e.g. the
    /// request's deadline cut the search short).
    pub fn note_miss(&self) {
        let _state = self.state.lock();
        self.lookups.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
        self.misses.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
    }

    /// Inserts (or refreshes) a result computed against the given store
    /// fingerprint, evicting least-recently-used entries until the byte
    /// budget holds.  A value whose own accounted size exceeds the budget
    /// is not admitted (it would evict everything and then be evicted
    /// itself).  An insert carrying a proper prefix of the resident
    /// entry's fingerprint is dropped: it lost a race against a fresher
    /// computation (the slow-writer side of the ingest swap).
    pub fn insert(
        &self,
        key: CacheKey,
        fingerprint: Vec<SegmentRef>,
        dict_len: usize,
        value: Arc<str>,
    ) {
        let bytes = entry_bytes(&key, &fingerprint, &value);
        let mut state = self.state.lock();
        if bytes > self.byte_budget {
            // Counted under the lock like every other counter write, so a
            // concurrent snapshot sees a consistent picture.
            self.uncacheable.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
            return;
        }
        let state_ref = &mut *state;
        if let Some(resident) = state_ref.entries.get(&key) {
            if is_proper_prefix(&fingerprint, &resident.fingerprint) {
                return;
            }
        }
        state_ref.remove(&key);
        let tick = state_ref.fresh_tick();
        state_ref.bytes += bytes;
        state_ref.order.insert(tick, key.clone());
        state_ref.entries.insert(
            key,
            Entry {
                value,
                fingerprint,
                dict_len,
                bytes,
                tick,
            },
        );
        self.evict_over_budget(state_ref);
    }

    fn evict_over_budget(&self, state: &mut LruState) {
        while state.bytes > self.byte_budget {
            let Some((&oldest_tick, _)) = state.order.iter().next() else {
                break;
            };
            let oldest_key = state.order.remove(&oldest_tick).expect("tick just seen");
            let evicted = state
                .entries
                .remove(&oldest_key)
                .expect("order and entries stay in sync");
            state.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
        }
    }

    /// Drops every entry cached for `model` — called on hot-reload so a
    /// swapped model file can change answers without stale replays.
    pub fn invalidate_model(&self, model: &str) {
        let mut state = self.state.lock();
        let state = &mut *state;
        let doomed: Vec<CacheKey> = state
            .entries
            .keys()
            .filter(|k| k.model == model)
            .cloned()
            .collect();
        for key in doomed {
            state.remove(&key).expect("key just listed");
        }
    }

    /// Applies a compaction swap to `model`'s entries: entries computed
    /// against exactly `old` (the snapshot that was compacted) are
    /// re-stamped to `new` — compaction is a pure rewrite, so their bytes
    /// stay exact — with byte accounting adjusted for the new fingerprint
    /// length; every *other* entry of the model is dropped (its
    /// fingerprint can no longer match or prefix the post-compaction
    /// store).  Entries of other models are untouched.
    pub fn remap_model(&self, model: &str, old: &[SegmentRef], new: &[SegmentRef]) {
        let mut state = self.state.lock();
        let state = &mut *state;
        let affected: Vec<CacheKey> = state
            .entries
            .keys()
            .filter(|k| k.model == model)
            .cloned()
            .collect();
        for key in affected {
            let mut entry = state.remove(&key).expect("key just listed");
            if entry.fingerprint != old {
                continue;
            }
            entry.fingerprint = new.to_vec();
            entry.bytes = entry_bytes(&key, new, &entry.value);
            if entry.bytes > self.byte_budget {
                self.uncacheable.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic cache-stats counter
                continue;
            }
            state.bytes += entry.bytes;
            state.order.insert(entry.tick, key.clone());
            state.entries.insert(key, entry);
        }
        self.evict_over_budget(state);
    }

    /// A consistent snapshot of the counters and occupancy: taken under
    /// the state lock, which every counter write also holds, so the tier
    /// sum reconciles with `lookups` exactly (see
    /// [`ResultCacheStats::lookups`] for the one in-flight tolerance).
    pub fn stats(&self) -> ResultCacheStats {
        let state = self.state.lock();
        ResultCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed), // relaxed: stats snapshot read
            hits: self.hits.load(Ordering::Relaxed),       // relaxed: stats snapshot read
            prefix_hits: self.prefix_hits.load(Ordering::Relaxed), // relaxed: stats snapshot read
            merged: self.merged.load(Ordering::Relaxed),   // relaxed: stats snapshot read
            misses: self.misses.load(Ordering::Relaxed),   // relaxed: stats snapshot read
            evictions: self.evictions.load(Ordering::Relaxed), // relaxed: stats snapshot read
            uncacheable: self.uncacheable.load(Ordering::Relaxed), // relaxed: stats snapshot read
            entries: state.entries.len(),
            bytes: state.bytes,
            byte_budget: self.byte_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, Subspace};

    fn query(value: &str) -> WhyQuery {
        WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("X", value.to_owned()),
            Subspace::of("X", "base"),
        )
        .unwrap()
    }

    fn key(model: &str, value: &str) -> CacheKey {
        CacheKey {
            model: model.to_owned(),
            query: query(value),
            options: String::new(),
        }
    }

    /// The fingerprint of a store with segments `1..=n`, epochs `0..n`.
    fn fp(n: u64) -> Vec<SegmentRef> {
        (1..=n).map(|i| (i, i - 1)).collect()
    }

    fn bytes_of(key: &CacheKey, fingerprint: &[SegmentRef], value: &str) -> usize {
        entry_bytes(key, fingerprint, value)
    }

    /// `lookup` + unwrap the exact-hit value.
    fn get(cache: &ResultCache, key: &CacheKey, fingerprint: &[SegmentRef]) -> Option<Arc<str>> {
        match cache.lookup(key, fingerprint, 4) {
            Lookup::Hit(value) => Some(value),
            _ => None,
        }
    }

    #[test]
    fn lookup_after_insert_round_trips() {
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        assert!(get(&cache, &k, &fp(1)).is_none());
        cache.insert(k.clone(), fp(1), 4, Arc::from("answer"));
        assert_eq!(get(&cache, &k, &fp(1)).as_deref(), Some("answer"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, bytes_of(&k, &fp(1), "answer"));
    }

    #[test]
    fn tier_counters_reconcile_with_lookups_through_every_path() {
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        // Miss, then hit.
        assert!(get(&cache, &k, &fp(1)).is_none());
        cache.insert(k.clone(), fp(1), 4, Arc::from("answer"));
        assert!(get(&cache, &k, &fp(1)).is_some());
        // Prefix candidate resolved three ways: promote, merged, note_miss.
        assert!(matches!(cache.lookup(&k, &fp(2), 4), Lookup::Prefix { .. }));
        assert!(cache.promote(&k, &fp(2), 4).is_some());
        assert!(matches!(cache.lookup(&k, &fp(3), 4), Lookup::Prefix { .. }));
        cache.merged();
        assert!(matches!(cache.lookup(&k, &fp(4), 4), Lookup::Prefix { .. }));
        cache.note_miss();
        // A promote that raced away counts as a miss.
        assert!(cache.promote(&key("m", "zz"), &fp(2), 4).is_none());
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.prefix_hits, stats.merged, stats.misses),
            (1, 1, 1, 3)
        );
        assert_eq!(
            stats.lookups,
            stats.hits + stats.prefix_hits + stats.merged + stats.misses,
            "tier sum must reconcile with lookups"
        );
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        let k1 = key("m", "a");
        let k2 = key("m", "b");
        let k3 = key("m", "c");
        let per_entry = bytes_of(&k1, &fp(1), "v");
        // Room for exactly two entries.
        let cache = ResultCache::new(2 * per_entry + per_entry / 2);
        cache.insert(k1.clone(), fp(1), 4, Arc::from("v"));
        cache.insert(k2.clone(), fp(1), 4, Arc::from("v"));
        // Touch k1 so k2 becomes the LRU victim.
        assert!(get(&cache, &k1, &fp(1)).is_some());
        cache.insert(k3.clone(), fp(1), 4, Arc::from("v"));
        assert!(get(&cache, &k1, &fp(1)).is_some(), "recent entry survives");
        assert!(get(&cache, &k2, &fp(1)).is_none(), "LRU entry was evicted");
        assert!(get(&cache, &k3, &fp(1)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= stats.byte_budget);
    }

    #[test]
    fn reinserting_a_key_replaces_without_leaking_bytes() {
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        cache.insert(k.clone(), fp(1), 4, Arc::from("short"));
        cache.insert(k.clone(), fp(1), 4, Arc::from("a longer value than before"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(
            stats.bytes,
            bytes_of(&k, &fp(1), "a longer value than before")
        );
        assert_eq!(
            get(&cache, &k, &fp(1)).as_deref(),
            Some("a longer value than before")
        );
    }

    #[test]
    fn oversized_values_are_never_admitted() {
        let cache = ResultCache::new(256);
        let k = key("m", "a");
        let big = "x".repeat(512);
        cache.insert(k.clone(), fp(1), 4, Arc::from(big.as_str()));
        assert!(get(&cache, &k, &fp(1)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.uncacheable, 1);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn invalidate_model_is_selective() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(key("m1", "a"), fp(1), 4, Arc::from("1"));
        cache.insert(key("m1", "b"), fp(1), 4, Arc::from("2"));
        cache.insert(key("m2", "a"), fp(1), 4, Arc::from("3"));
        cache.invalidate_model("m1");
        assert!(get(&cache, &key("m1", "a"), &fp(1)).is_none());
        assert!(get(&cache, &key("m1", "b"), &fp(1)).is_none());
        assert_eq!(get(&cache, &key("m2", "a"), &fp(1)).as_deref(), Some("3"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, bytes_of(&key("m2", "a"), &fp(1), "3"));
    }

    #[test]
    fn distinct_models_do_not_collide() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(key("m1", "a"), fp(1), 4, Arc::from("one"));
        cache.insert(key("m2", "a"), fp(1), 4, Arc::from("two"));
        assert_eq!(get(&cache, &key("m1", "a"), &fp(1)).as_deref(), Some("one"));
        assert_eq!(get(&cache, &key("m2", "a"), &fp(1)).as_deref(), Some("two"));
    }

    #[test]
    fn distinct_request_options_do_not_collide() {
        // Same model, same query — only the options suffix differs; the
        // entries must stay independent (v1 vs v2 default vs v2 with a
        // top_k all store different payload shapes).
        let cache = ResultCache::new(1 << 20);
        let v1 = key("m", "a");
        let v2_default = CacheKey {
            options: "v2{}".to_owned(),
            ..v1.clone()
        };
        let v2_top1 = CacheKey {
            options: "v2{\"top_k\":1.0}".to_owned(),
            ..v1.clone()
        };
        cache.insert(v1.clone(), fp(1), 4, Arc::from("plain array"));
        cache.insert(v2_default.clone(), fp(1), 4, Arc::from("scored object"));
        cache.insert(
            v2_top1.clone(),
            fp(1),
            4,
            Arc::from("scored object, one entry"),
        );
        assert_eq!(get(&cache, &v1, &fp(1)).as_deref(), Some("plain array"));
        assert_eq!(
            get(&cache, &v2_default, &fp(1)).as_deref(),
            Some("scored object")
        );
        assert_eq!(
            get(&cache, &v2_top1, &fp(1)).as_deref(),
            Some("scored object, one entry")
        );
        assert_eq!(cache.stats().entries, 3);
        // Model-level invalidation drops every options variant.
        cache.invalidate_model("m");
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn differently_covered_segment_sets_never_alias() {
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        cache.insert(k.clone(), fp(2), 4, Arc::from("two segments"));
        // Exact match requires the same segment list.
        assert!(get(&cache, &k, &fp(3)).is_none());
        // A *different* two-element set (same length, other ids) neither
        // hits nor offers a prefix.
        let other: Vec<SegmentRef> = vec![(7, 0), (8, 1)];
        assert!(matches!(cache.lookup(&k, &other, 4), Lookup::Miss));
        // A shorter fingerprint (the entry is *newer* than the lookup —
        // a reader on an old snapshot) is not a hit either.
        assert!(matches!(cache.lookup(&k, &fp(1), 4), Lookup::Miss));
        // Same ids at different epochs do not alias.
        let reepoched: Vec<SegmentRef> = vec![(1, 0), (2, 5)];
        assert!(matches!(cache.lookup(&k, &reepoched, 4), Lookup::Miss));
    }

    #[test]
    fn prefix_candidates_surface_and_promote_byte_exactly() {
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        cache.insert(k.clone(), fp(1), 4, Arc::from("pre-ingest answer"));
        // After one ingest the old fingerprint is a proper prefix.
        match cache.lookup(&k, &fp(2), 4) {
            Lookup::Prefix {
                prefix,
                dict_unchanged,
            } => {
                assert_eq!(prefix, fp(1));
                assert!(dict_unchanged);
            }
            other => panic!("expected a prefix candidate, got {other:?}"),
        }
        // Caller validates the suffix, promotes, and the bytes replay.
        let value = cache.promote(&k, &fp(2), 4).unwrap();
        assert_eq!(&*value, "pre-ingest answer");
        // The entry now covers the current set: the next lookup is exact.
        assert_eq!(
            get(&cache, &k, &fp(2)).as_deref(),
            Some("pre-ingest answer")
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.prefix_hits, stats.misses), (1, 1, 0));
        // Byte accounting follows the longer fingerprint exactly.
        assert_eq!(stats.bytes, bytes_of(&k, &fp(2), "pre-ingest answer"));
    }

    #[test]
    fn dictionary_growth_blocks_promotion() {
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        cache.insert(k.clone(), fp(1), 4, Arc::from("answer"));
        match cache.lookup(&k, &fp(2), 5) {
            Lookup::Prefix { dict_unchanged, .. } => assert!(!dict_unchanged),
            other => panic!("expected a prefix candidate, got {other:?}"),
        }
    }

    #[test]
    fn promote_races_resolve_to_misses() {
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        // No entry at all (evicted between lookup and promote).
        assert!(cache.promote(&k, &fp(2), 4).is_none());
        // Entry already covers the current set (another thread promoted or
        // re-inserted): promote declines, the caller's next lookup hits.
        cache.insert(k.clone(), fp(2), 4, Arc::from("fresh"));
        assert!(cache.promote(&k, &fp(2), 4).is_none());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn stale_prefix_inserts_lose_to_fresher_entries() {
        // The ingest race: a slow request computed against the pre-ingest
        // snapshot inserts *after* a fresher post-ingest computation; the
        // shorter-fingerprint insert must not clobber the newer entry.
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        cache.insert(k.clone(), fp(2), 4, Arc::from("post-ingest"));
        cache.insert(k.clone(), fp(1), 4, Arc::from("stale pre-ingest"));
        assert_eq!(get(&cache, &k, &fp(2)).as_deref(), Some("post-ingest"));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn stale_fingerprint_inserts_cannot_poison_a_reloaded_model() {
        // The hot-reload race: a slow request computed against the
        // pre-reload store inserts *after* the reload invalidated.  The
        // reloaded store has freshly-identified segments, so the stale
        // entry can neither hit nor prefix-match — and the reload's
        // invalidate_model reclaims it.
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        cache.invalidate_model("m"); // the reload's invalidation
        cache.insert(k.clone(), fp(2), 4, Arc::from("stale pre-reload answer"));
        let reloaded: Vec<SegmentRef> = vec![(9, 0)];
        assert!(
            matches!(cache.lookup(&k, &reloaded, 4), Lookup::Miss),
            "stale answer leaked across reload"
        );
        assert!(cache.promote(&k, &reloaded, 4).is_none());
        cache.invalidate_model("m");
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn remap_on_compaction_preserves_byte_budget_accounting() {
        let cache = ResultCache::new(1 << 20);
        let compacted_away = key("m", "a");
        let current = key("m", "b");
        let survivor = key("other", "a");
        // `current` was computed against the snapshot being compacted;
        // `compacted_away` against an older prefix (never promoted).
        cache.insert(compacted_away.clone(), fp(1), 4, Arc::from("old"));
        cache.insert(current.clone(), fp(3), 4, Arc::from("exact"));
        cache.insert(survivor.clone(), fp(3), 4, Arc::from("other model"));
        let new_fp: Vec<SegmentRef> = vec![(10, 3)];
        cache.remap_model("m", &fp(3), &new_fp);
        // The exact-snapshot entry was re-stamped and still replays.
        assert_eq!(get(&cache, &current, &new_fp).as_deref(), Some("exact"));
        // The stale-prefix entry is gone; other models untouched.
        assert!(matches!(
            cache.lookup(&compacted_away, &new_fp, 4),
            Lookup::Miss
        ));
        assert_eq!(
            get(&cache, &survivor, &fp(3)).as_deref(),
            Some("other model")
        );
        // Accounting is exact: the remapped entry is charged for the new
        // (shorter) fingerprint, the dropped entry's bytes are reclaimed.
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(
            stats.bytes,
            bytes_of(&current, &new_fp, "exact") + bytes_of(&survivor, &fp(3), "other model")
        );
    }
}
