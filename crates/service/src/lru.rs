//! The memory-accounted LRU result cache in front of the explain engine.
//!
//! Serving traffic repeats itself: dashboards re-issue the same Why Query
//! on every refresh, and many users look at the same anomaly.  The
//! [`ResultCache`] memoizes the *serialized explanation list* per
//! `(model, query)` so a repeat costs a hash lookup instead of an XPlainer
//! search — and because the cached value is the exact byte string the
//! uncached path would serialize, cached and direct answers are identical
//! by construction (property-tested in `tests/serving.rs`, including
//! across forced evictions).
//!
//! Unlike the engine's internal [`SelectionCache`]
//! (never-evicting, scoped to a batch), this cache is long-lived, so it is
//! bounded by a configurable **byte budget**: every entry is charged for
//! its key (model id + canonical query JSON), its value and a fixed
//! bookkeeping overhead, and the least-recently-used entries are evicted
//! until the total fits.  Values larger than the whole budget are served
//! but never admitted.
//!
//! Recency is tracked with a monotonic tick per access: a `HashMap` holds
//! the entries and a `BTreeMap<tick, key>` orders them, making get/insert
//! `O(log n)` without an intrusive linked list.  One mutex guards both maps
//! (lookups are cheap relative to an explain); hit/miss/eviction counters
//! are relaxed atomics so `/stats` never contends with serving.
//!
//! [`SelectionCache`]: xinsight_core::SelectionCache

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xinsight_core::WhyQuery;

/// Fixed per-entry byte charge covering the maps' bookkeeping (hash entry,
/// tick entry, `Arc` header) on top of the measured key/value lengths.
pub const ENTRY_OVERHEAD_BYTES: usize = 128;

/// Key of one cached result: the serving model (id **and** reload
/// generation), the (canonicalized, hashable) query, and the canonical
/// per-request options suffix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The model the query was answered against.
    pub model: String,
    /// The model's reload generation.  Keying on it makes hot-reload
    /// race-free: a slow request that finishes *after* a reload inserts
    /// under the old generation, which post-reload lookups (built from the
    /// new `LoadedModel`) can never hit.  [`ResultCache::invalidate_model`]
    /// then reclaims the old generation's bytes.
    pub generation: u64,
    /// The query itself; `WhyQuery`'s `Hash`/`Eq` make it directly usable
    /// as a map key, and its canonical JSON length is what the byte budget
    /// charges for.
    pub query: WhyQuery,
    /// Canonical serialization of the request's result-shaping options
    /// ([`RequestOptions::cache_key`](crate::wire::RequestOptions::cache_key)),
    /// so two requests that differ only in `top_k`, `min_score`, `types`
    /// or `deadline_ms` never alias.  v1 requests — whose cached value is
    /// a bare explanation array rather than a v2 result object — use the
    /// empty string.
    pub options: String,
}

#[derive(Debug)]
struct Entry {
    value: Arc<str>,
    bytes: usize,
    tick: u64,
}

#[derive(Debug, Default)]
struct LruState {
    entries: HashMap<CacheKey, Entry>,
    /// `tick → key`, oldest first.  Ticks are unique (monotonic counter).
    order: BTreeMap<u64, CacheKey>,
    next_tick: u64,
    bytes: usize,
}

/// A point-in-time snapshot of the result cache for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (the caller computed and usually inserted).
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Values too large to ever admit under the budget.
    pub uncacheable: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Accounted bytes currently held.
    pub bytes: usize,
    /// The configured budget.
    pub byte_budget: usize,
}

impl ResultCacheStats {
    /// Fraction of lookups served from the cache (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Bounded, thread-safe, memory-accounted LRU cache of serialized
/// explanation results (see the module docs for the design).
#[derive(Debug)]
pub struct ResultCache {
    state: Mutex<LruState>,
    byte_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    uncacheable: AtomicU64,
}

impl ResultCache {
    /// Creates a cache holding at most `byte_budget` accounted bytes.
    pub fn new(byte_budget: usize) -> Self {
        ResultCache {
            state: Mutex::new(LruState::default()),
            byte_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    /// Looks a result up, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<str>> {
        let mut state = self.state.lock();
        let state = &mut *state;
        match state.entries.get_mut(key) {
            Some(entry) => {
                state.order.remove(&entry.tick);
                entry.tick = state.next_tick;
                state.next_tick += 1;
                state.order.insert(entry.tick, key.clone());
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a result, evicting least-recently-used
    /// entries until the byte budget holds.  A value whose own accounted
    /// size exceeds the budget is not admitted (it would evict everything
    /// and then be evicted itself).
    pub fn insert(&self, key: CacheKey, value: Arc<str>) {
        let entry_bytes = key.model.len()
            + key.query.to_json().len()
            + key.options.len()
            + value.len()
            + ENTRY_OVERHEAD_BYTES;
        if entry_bytes > self.byte_budget {
            self.uncacheable.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut state = self.state.lock();
        if let Some(old) = state.entries.remove(&key) {
            state.order.remove(&old.tick);
            state.bytes -= old.bytes;
        }
        let tick = state.next_tick;
        state.next_tick += 1;
        state.bytes += entry_bytes;
        state.order.insert(tick, key.clone());
        state.entries.insert(
            key,
            Entry {
                value,
                bytes: entry_bytes,
                tick,
            },
        );
        while state.bytes > self.byte_budget {
            let Some((&oldest_tick, _)) = state.order.iter().next() else {
                break;
            };
            let oldest_key = state.order.remove(&oldest_tick).expect("tick just seen");
            let evicted = state
                .entries
                .remove(&oldest_key)
                .expect("order and entries stay in sync");
            state.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every entry cached for `model` — called on hot-reload so a
    /// swapped model file can change answers without stale replays.
    pub fn invalidate_model(&self, model: &str) {
        let mut state = self.state.lock();
        let state = &mut *state;
        let doomed: Vec<CacheKey> = state
            .entries
            .keys()
            .filter(|k| k.model == model)
            .cloned()
            .collect();
        for key in doomed {
            let entry = state.entries.remove(&key).expect("key just listed");
            state.order.remove(&entry.tick);
            state.bytes -= entry.bytes;
        }
    }

    /// A consistent snapshot of the counters and occupancy.
    pub fn stats(&self) -> ResultCacheStats {
        let state = self.state.lock();
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
            entries: state.entries.len(),
            bytes: state.bytes,
            byte_budget: self.byte_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, Subspace};

    fn query(value: &str) -> WhyQuery {
        WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("X", value.to_owned()),
            Subspace::of("X", "base"),
        )
        .unwrap()
    }

    fn key(model: &str, value: &str) -> CacheKey {
        CacheKey {
            model: model.to_owned(),
            generation: 1,
            query: query(value),
            options: String::new(),
        }
    }

    fn entry_bytes(key: &CacheKey, value: &str) -> usize {
        key.model.len()
            + key.query.to_json().len()
            + key.options.len()
            + value.len()
            + ENTRY_OVERHEAD_BYTES
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), Arc::from("answer"));
        assert_eq!(cache.get(&k).as_deref(), Some("answer"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, entry_bytes(&k, "answer"));
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        let k1 = key("m", "a");
        let k2 = key("m", "b");
        let k3 = key("m", "c");
        let per_entry = entry_bytes(&k1, "v");
        // Room for exactly two entries.
        let cache = ResultCache::new(2 * per_entry + per_entry / 2);
        cache.insert(k1.clone(), Arc::from("v"));
        cache.insert(k2.clone(), Arc::from("v"));
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.get(&k1).is_some());
        cache.insert(k3.clone(), Arc::from("v"));
        assert!(cache.get(&k1).is_some(), "recently used entry survives");
        assert!(cache.get(&k2).is_none(), "LRU entry was evicted");
        assert!(cache.get(&k3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= stats.byte_budget);
    }

    #[test]
    fn reinserting_a_key_replaces_without_leaking_bytes() {
        let cache = ResultCache::new(1 << 20);
        let k = key("m", "a");
        cache.insert(k.clone(), Arc::from("short"));
        cache.insert(k.clone(), Arc::from("a longer value than before"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, entry_bytes(&k, "a longer value than before"));
        assert_eq!(cache.get(&k).as_deref(), Some("a longer value than before"));
    }

    #[test]
    fn oversized_values_are_never_admitted() {
        let cache = ResultCache::new(256);
        let k = key("m", "a");
        let big = "x".repeat(512);
        cache.insert(k.clone(), Arc::from(big.as_str()));
        assert!(cache.get(&k).is_none());
        let stats = cache.stats();
        assert_eq!(stats.uncacheable, 1);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn invalidate_model_is_selective() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(key("m1", "a"), Arc::from("1"));
        cache.insert(key("m1", "b"), Arc::from("2"));
        cache.insert(key("m2", "a"), Arc::from("3"));
        cache.invalidate_model("m1");
        assert!(cache.get(&key("m1", "a")).is_none());
        assert!(cache.get(&key("m1", "b")).is_none());
        assert_eq!(cache.get(&key("m2", "a")).as_deref(), Some("3"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, entry_bytes(&key("m2", "a"), "3"));
    }

    #[test]
    fn distinct_models_do_not_collide() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(key("m1", "a"), Arc::from("one"));
        cache.insert(key("m2", "a"), Arc::from("two"));
        assert_eq!(cache.get(&key("m1", "a")).as_deref(), Some("one"));
        assert_eq!(cache.get(&key("m2", "a")).as_deref(), Some("two"));
    }

    #[test]
    fn distinct_request_options_do_not_collide() {
        // Same model, same generation, same query — only the options
        // suffix differs; the entries must stay independent (v1 vs v2
        // default vs v2 with a top_k all store different payload shapes).
        let cache = ResultCache::new(1 << 20);
        let v1 = key("m", "a");
        let v2_default = CacheKey {
            options: "v2{}".to_owned(),
            ..v1.clone()
        };
        let v2_top1 = CacheKey {
            options: "v2{\"top_k\":1.0}".to_owned(),
            ..v1.clone()
        };
        cache.insert(v1.clone(), Arc::from("plain array"));
        cache.insert(v2_default.clone(), Arc::from("scored object"));
        cache.insert(v2_top1.clone(), Arc::from("scored object, one entry"));
        assert_eq!(cache.get(&v1).as_deref(), Some("plain array"));
        assert_eq!(cache.get(&v2_default).as_deref(), Some("scored object"));
        assert_eq!(
            cache.get(&v2_top1).as_deref(),
            Some("scored object, one entry")
        );
        assert_eq!(cache.stats().entries, 3);
        // Model-level invalidation drops every options variant.
        cache.invalidate_model("m");
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn stale_generation_inserts_cannot_poison_the_new_generation() {
        // The hot-reload race: a slow request computed against generation 1
        // inserts *after* the reload invalidated; generation-2 lookups must
        // not see it.
        let cache = ResultCache::new(1 << 20);
        let old = key("m", "a"); // generation 1
        let new = CacheKey {
            generation: 2,
            ..old.clone()
        };
        cache.invalidate_model("m"); // the reload's invalidation
        cache.insert(old.clone(), Arc::from("stale pre-reload answer"));
        assert!(
            cache.get(&new).is_none(),
            "stale answer leaked across reload"
        );
        // invalidate_model drops every generation's entries.
        cache.insert(new.clone(), Arc::from("fresh"));
        cache.invalidate_model("m");
        assert!(cache.get(&old).is_none());
        assert!(cache.get(&new).is_none());
        assert_eq!(cache.stats().bytes, 0);
    }
}
