//! Demo model bundles and deterministic query pools.
//!
//! The serving layer needs real, fitted models to exercise — for the
//! `xinsight-serve --demo` flag, the verify-script smoke test, the
//! `loadgen` bench and the integration tests.  This module builds them
//! from the workspace's own generators: a SYN-A instance augmented with a
//! synthetic measure (SYN-A data is purely categorical, but a Why Query
//! aggregates a measure), and the FLIGHT case-study simulator.
//!
//! [`demo_queries`] also serves as the generic example-query derivation
//! for any bundle saved without explicit queries: a deterministic pool of
//! sibling-subspace queries spread over the dataset's dimensions, category
//! pairs and aggregate functions, so load generation gets realistic
//! variety (distinct cache keys) without shipping a query log.

use crate::registry::ModelRegistry;
use xinsight_core::WhyQuery;
use xinsight_data::{Aggregate, Dataset, DatasetBuilder, Result, Subspace};
use xinsight_synth::{flight, syn_a};

/// The demo models the serving binaries can build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemoModel {
    /// A SYN-A causal-discovery instance with an added synthetic measure.
    SynA,
    /// The FLIGHT case-study simulator (Fig. 6 of the paper).
    Flight,
}

impl DemoModel {
    /// The registry id the bundle is saved under.
    pub fn id(&self) -> &'static str {
        match self {
            DemoModel::SynA => "syn_a",
            DemoModel::Flight => "flight",
        }
    }

    /// Parses a demo model name (`syn_a` / `flight`).
    pub fn parse(name: &str) -> Option<DemoModel> {
        match name {
            "syn_a" => Some(DemoModel::SynA),
            "flight" => Some(DemoModel::Flight),
            _ => None,
        }
    }

    /// Builds the demo dataset and its example queries.  `n_rows == 0`
    /// picks a default sized for a few-second fit.
    pub fn build(&self, n_rows: usize) -> Result<(Dataset, Vec<WhyQuery>)> {
        match self {
            DemoModel::SynA => {
                let n = if n_rows == 0 { 1200 } else { n_rows };
                let data = syn_a_serving_data(n, 7)?;
                let queries = demo_queries(&data, 8)?;
                Ok((data, queries))
            }
            DemoModel::Flight => {
                let n = if n_rows == 0 { 4000 } else { n_rows };
                let data = flight::generate(n, 1);
                let mut queries = vec![flight::why_query()];
                queries.extend(demo_queries(&data, 7)?);
                Ok((data, queries))
            }
        }
    }
}

/// A SYN-A instance reshaped for serving: the observed categorical
/// variables plus a synthetic measure `M` that is a deterministic weighted
/// combination of the variables' category codes — so the learned graph has
/// a measure node to explain and queries have non-trivial answers.
pub fn syn_a_serving_data(n_rows: usize, seed: u64) -> Result<Dataset> {
    let instance = syn_a::generate(&syn_a::SynAOptions {
        n_core_variables: 7,
        n_rows,
        seed,
        fd_nodes_per_leaf: 1,
        ..syn_a::SynAOptions::default()
    });
    let data = instance.data;
    let dims: Vec<String> = data
        .schema()
        .dimension_names()
        .into_iter()
        .map(str::to_owned)
        .collect();
    let mut measure = vec![0.0f64; data.n_rows()];
    for (i, name) in dims.iter().enumerate() {
        let column = data.dimension(name)?;
        let weight = 1.0 / (i + 1) as f64;
        for (row, value) in measure.iter_mut().enumerate() {
            *value += column.code(row) as f64 * weight;
        }
    }
    let mut builder = DatasetBuilder::new();
    for name in &dims {
        builder = builder.dimension_column(name, data.dimension(name)?.clone());
    }
    builder.measure("M", measure).build()
}

/// Derives a deterministic pool of up to `limit` valid Why Queries from a
/// dataset: for each dimension with at least two categories, sibling
/// single-filter subspaces over adjacent category pairs, crossed with the
/// dataset's measures and a rotating aggregate (`AVG`, `SUM`, `COUNT`).
pub fn demo_queries(data: &Dataset, limit: usize) -> Result<Vec<WhyQuery>> {
    const AGGREGATES: [Aggregate; 3] = [Aggregate::Avg, Aggregate::Sum, Aggregate::Count];
    let measures = data.schema().measure_names();
    let mut queries = Vec::new();
    if measures.is_empty() {
        return Ok(queries);
    }
    let mut round = 0usize;
    // Rotate through (category pair) × dimension × measure so the first few
    // queries already cover several dimensions.
    while queries.len() < limit {
        let mut grew = false;
        for dim in data.schema().dimension_names() {
            let categories = data.dimension(dim)?.categories();
            if categories.len() < 2 || round + 1 >= categories.len() {
                continue;
            }
            for measure in &measures {
                if queries.len() >= limit {
                    break;
                }
                let aggregate = AGGREGATES[queries.len() % AGGREGATES.len()];
                queries.push(WhyQuery::new(
                    *measure,
                    aggregate,
                    Subspace::of(dim, categories[round].as_ref()),
                    Subspace::of(dim, categories[round + 1].as_ref()),
                )?);
                grew = true;
            }
        }
        if !grew {
            break;
        }
        round += 1;
    }
    Ok(queries)
}

/// A deterministic pool of `/v2/explain` options objects (pre-serialized
/// JSON), rotating through the per-request controls — different `top_k`s,
/// a score floor, a causal-only allowlist, provenance — so v2 load
/// generation exercises distinct LRU keys and every response shape without
/// shipping a request log.  The pool repeats cyclically up to `limit`.
pub fn demo_v2_options(limit: usize) -> Vec<String> {
    const POOL: [&str; 6] = [
        "{}",
        "{\"top_k\":1}",
        "{\"top_k\":3}",
        "{\"min_score\":0.05}",
        "{\"types\":[\"causal\"]}",
        "{\"top_k\":2,\"include_provenance\":true}",
    ];
    (0..limit)
        .map(|i| POOL[i % POOL.len()].to_owned())
        .collect()
}

/// Fits and saves the requested demo bundles into the registry's
/// directory, returning their ids.  `n_rows == 0` uses each model's
/// default scale.
pub fn build_demo_bundles(
    registry: &ModelRegistry,
    which: &[DemoModel],
    n_rows: usize,
) -> Result<Vec<String>> {
    let mut ids = Vec::new();
    for model in which {
        let (data, queries) = model.build(n_rows)?;
        registry.fit_and_save(model.id(), &data, queries)?;
        ids.push(model.id().to_owned());
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syn_a_serving_data_has_a_measure_and_dimensions() {
        let data = syn_a_serving_data(300, 3).unwrap();
        assert_eq!(data.schema().measure_names(), vec!["M"]);
        assert!(data.schema().dimension_names().len() >= 5);
        assert_eq!(data.n_rows(), 300);
    }

    #[test]
    fn demo_queries_are_valid_and_deterministic() {
        let data = flight::generate(500, 1);
        let queries = demo_queries(&data, 8).unwrap();
        assert_eq!(queries.len(), 8);
        assert_eq!(queries, demo_queries(&data, 8).unwrap());
        // Every query evaluates (possibly to an undefined Δ on an empty
        // side, but construction itself is valid and sibling-checked).
        for q in &queries {
            assert!(!q.measure().is_empty());
            assert!(WhyQuery::from_json(&q.to_json()).is_ok());
        }
        // Several distinct dimensions are covered.
        let foregrounds: std::collections::HashSet<&str> =
            queries.iter().map(|q| q.foreground()).collect();
        assert!(foregrounds.len() >= 2, "got {foregrounds:?}");
    }

    #[test]
    fn v2_option_pool_is_deterministic_and_parseable() {
        let pool = demo_v2_options(8);
        assert_eq!(pool.len(), 8);
        assert_eq!(pool, demo_v2_options(8));
        assert_eq!(pool[0], pool[6], "pool repeats cyclically");
        for options in &pool {
            let doc = xinsight_core::json::Json::parse(options).unwrap();
            crate::wire::RequestOptions::parse(Some(&doc)).unwrap();
        }
        // The pool produces several distinct LRU key suffixes.
        let keys: std::collections::HashSet<String> = demo_v2_options(6)
            .iter()
            .map(|options| {
                let doc = xinsight_core::json::Json::parse(options).unwrap();
                crate::wire::RequestOptions::parse(Some(&doc))
                    .unwrap()
                    .cache_key()
            })
            .collect();
        assert!(keys.len() >= 5, "got {keys:?}");
    }

    #[test]
    fn datasets_without_measures_yield_no_queries() {
        let data = DatasetBuilder::new()
            .dimension("X", ["a", "b", "a"])
            .build()
            .unwrap();
        assert!(demo_queries(&data, 4).unwrap().is_empty());
    }
}
