//! Per-request lifecycle tracing: where one request spent its time.
//!
//! The serving stack has five distinct places a request can wait — event-
//! loop framing, the admission queue, result-cache tier resolution, engine
//! execution, and the staged socket write — and the aggregate `/stats`
//! histogram cannot attribute a tail-latency regression to any of them.
//! This module records, per request, a **trace**: an ordered list of
//! monotonic [`Span`]s on one shared clock (the instant the request's
//! first byte arrived), assembled as the request moves through the stack:
//!
//! ```text
//!  first byte ──parse──▶ admitted ──queue_wait──▶ worker pop
//!      │                                             │
//!      │            cache_lookup (tier + single-flight role)
//!      │            execute      (engine, provenance attribution)
//!      │            serialize    (wire bytes)
//!      │                                             │
//!      └──────── total ──▶ write (staged ──▶ flushed on the socket)
//! ```
//!
//! The event loop assigns the trace id at framing and records the parse
//! span; the worker records queue-wait and the handler-side spans; the
//! event loop closes the trace when the response's last byte is accepted
//! by the socket.  Span starts are offsets from the trace epoch, so spans
//! are monotonic by construction and sequential spans never overlap; the
//! gaps between them (completion hand-off, poller wake-ups) are visible as
//! exactly that — gaps.
//!
//! Completed traces land in a [`TraceStore`]: a bounded ring buffer of the
//! most recent traces plus a separately-bounded **slow reservoir** that
//! retains any trace whose total meets the `--trace-slow-ms` threshold, so
//! a burst of fast requests cannot evict the one slow trace being
//! debugged.  `GET /debug/traces` (behind `--debug-endpoints`) serves both
//! as JSON.  Background work publishes into the same stream: the
//! compactor's rewrite/swap and the registry ingest path emit spans too.
//!
//! Everything here is allocation-light and lock-cheap: a trace is built
//! without synchronization (it is owned by whichever thread holds the
//! request) and published under one short mutex at completion.

use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use xinsight_core::json::Json;

/// Completed traces retained in the recent-trace ring buffer.
pub const RING_CAPACITY: usize = 256;

/// Slow traces retained in the reservoir regardless of ring churn.
pub const SLOW_CAPACITY: usize = 64;

/// One stage of the request lifecycle.  The set is closed on purpose: each
/// stage has a per-stage latency histogram in `/metrics`, and a bounded
/// vocabulary is what makes cross-request aggregation meaningful.  Stage-
/// specific context (cache tier, single-flight role, provenance counts)
/// goes in the span's free-form detail instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// First byte of the request seen to request fully framed.
    Parse,
    /// Admitted onto the bounded queue to popped by a worker.
    QueueWait,
    /// Result-cache resolution: lookup, promotion attempt, and any
    /// single-flight wait for another request computing the same key.
    CacheLookup,
    /// Handler execution — for explains, the engine search; for other
    /// endpoints, the whole handler body.
    Execute,
    /// Serializing the response body onto the wire format.
    Serialize,
    /// Response staged on the connection to last byte accepted by the
    /// socket.
    Write,
}

impl Stage {
    /// Every stage, in lifecycle order.
    pub const ALL: [Stage; 6] = [
        Stage::Parse,
        Stage::QueueWait,
        Stage::CacheLookup,
        Stage::Execute,
        Stage::Serialize,
        Stage::Write,
    ];

    /// The stable wire name (`/debug/traces` span tags and the `/metrics`
    /// `stage` label).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::CacheLookup => "cache_lookup",
            Stage::Execute => "execute",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
        }
    }

    /// The index of this stage in [`Stage::ALL`] (per-stage histogram
    /// arrays are indexed by it).
    pub fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::QueueWait => 1,
            Stage::CacheLookup => 2,
            Stage::Execute => 3,
            Stage::Serialize => 4,
            Stage::Write => 5,
        }
    }
}

/// One timed stage of a trace.  `start_us` is the offset from the trace
/// epoch (the request's first byte), so spans within a trace share one
/// clock and sequential spans are non-overlapping by construction.
///
/// `detail` is a `Cow` so the hot request path can tag spans with static
/// strings (`"hit"`, `"hit,flight=follower"`) without allocating; only
/// details that genuinely carry per-request numbers pay for a `String`.
#[derive(Debug, Clone)]
pub struct Span {
    /// Which lifecycle stage this span timed.
    pub stage: Stage,
    /// Microseconds from the trace epoch to the span start.
    pub start_us: u64,
    /// Span length in microseconds.
    pub duration_us: u64,
    /// Stage-specific context: the cache tier and single-flight role for
    /// `cache_lookup`, provenance counts for `execute`, and so on.  Empty
    /// when the stage has nothing to add.
    pub detail: Cow<'static, str>,
}

/// One completed request (or background-work) lifecycle.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Process-unique trace id, assigned at framing.
    pub id: u64,
    /// What was traced: `"POST /v2/explain"` for requests, `"compact
    /// <model>"` for background compactions.  Borrowed for every known
    /// route (see [`endpoint_label`]) so framing a request does not
    /// allocate for it.
    pub endpoint: Cow<'static, str>,
    /// The response status (`0` while unset; background work uses `200`).
    pub status: u16,
    /// End-to-end microseconds from the trace epoch to completion.
    pub total_us: u64,
    /// The recorded spans, in the order they were recorded (which is
    /// lifecycle order — each stage records once, when it finishes).
    pub spans: Vec<Span>,
}

impl Trace {
    /// The `/debug/traces` JSON rendering of one trace.
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|span| {
                Json::Obj(vec![
                    ("stage".to_owned(), Json::Str(span.stage.name().to_owned())),
                    ("start_us".to_owned(), Json::Num(span.start_us as f64)),
                    ("duration_us".to_owned(), Json::Num(span.duration_us as f64)),
                    ("detail".to_owned(), Json::Str(span.detail.to_string())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("id".to_owned(), Json::Num(self.id as f64)),
            ("endpoint".to_owned(), Json::Str(self.endpoint.to_string())),
            ("status".to_owned(), Json::Num(self.status as f64)),
            ("total_us".to_owned(), Json::Num(self.total_us as f64)),
            ("spans".to_owned(), Json::Arr(spans)),
        ])
    }
}

/// An in-flight trace, carried through `Job`/`Completion` and finished by
/// the event loop once the response's last byte is on the socket.  Owned
/// by exactly one thread at a time, so recording a span is two
/// subtractions and a push — no synchronization.
#[derive(Debug)]
pub struct TraceBuilder {
    id: u64,
    /// The shared clock every span start is measured against.
    epoch: Instant,
    endpoint: Cow<'static, str>,
    status: u16,
    spans: Vec<Span>,
}

impl TraceBuilder {
    /// Starts a trace whose spans are measured from `epoch` (the request's
    /// first byte, or the start of a background task).
    pub fn begin(id: u64, epoch: Instant, endpoint: impl Into<Cow<'static, str>>) -> Self {
        TraceBuilder {
            id,
            epoch,
            endpoint: endpoint.into(),
            status: 0,
            // xlint: allow(no-alloc-hot-path, one bounded spans buffer per request sized at admission)
            spans: Vec::with_capacity(Stage::ALL.len()),
        }
    }

    /// Records one completed stage.  `start`/`end` are wall instants; both
    /// are clamped to the epoch so a span can never start before the trace
    /// does.
    pub fn span(
        &mut self,
        stage: Stage,
        start: Instant,
        end: Instant,
        detail: impl Into<Cow<'static, str>>,
    ) {
        let start = start.max(self.epoch);
        let start_us = us(start.saturating_duration_since(self.epoch));
        let duration_us = us(end.saturating_duration_since(start));
        self.spans.push(Span {
            stage,
            start_us,
            duration_us,
            detail: detail.into(),
        });
    }

    /// How many spans have been recorded — the worker uses this to detect
    /// handlers without internal instrumentation and cover them with one
    /// whole-handler `execute` span.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Sets the response status the trace will report.
    pub fn set_status(&mut self, status: u16) {
        self.status = status;
    }

    /// Closes the trace at `end` and returns the immutable record.
    pub fn finish(self, end: Instant) -> Trace {
        Trace {
            id: self.id,
            endpoint: self.endpoint,
            status: self.status,
            total_us: us(end.saturating_duration_since(self.epoch)),
            spans: self.spans,
        }
    }
}

fn us(duration: Duration) -> u64 {
    duration.as_micros().min(u64::MAX as u128) as u64
}

/// The trace endpoint label for a framed request.  Every route the server
/// serves maps to a static string so framing does not allocate on the hot
/// path; unknown paths (which will 404 anyway) fall back to an owned
/// `"METHOD path"`.
pub fn endpoint_label(method: &str, path: &str) -> Cow<'static, str> {
    // Routing ignores the query string (`/v2/graph?model=m` is the
    // `/v2/graph` endpoint), so the label must too — otherwise every query
    // combination would mint its own label and allocate.
    let path = path.split_once('?').map_or(path, |(p, _)| p);
    // xlint-endpoints: begin(trace-labels)
    Cow::Borrowed(match (method, path) {
        ("GET", "/healthz") => "GET /healthz",
        ("POST", "/explain") => "POST /explain",
        ("POST", "/explain_batch") => "POST /explain_batch",
        ("POST", "/v2/explain") => "POST /v2/explain",
        ("POST", "/v2/explain_batch") => "POST /v2/explain_batch",
        ("POST", "/v2/ingest") => "POST /v2/ingest",
        ("GET", "/v2/graph") => "GET /v2/graph",
        ("GET", "/models") => "GET /models",
        ("GET", "/stats") => "GET /stats",
        ("GET", "/metrics") => "GET /metrics",
        ("POST", "/admin/reload") => "POST /admin/reload",
        ("POST", "/admin/shutdown") => "POST /admin/shutdown",
        ("POST", "/debug/sleep") => "POST /debug/sleep",
        ("GET", "/debug/traces") => "GET /debug/traces",
        // xlint: allow(no-alloc-hot-path, unknown routes 404 anyway — this arm is off the served path)
        _ => return Cow::Owned(format!("{method} {path}")),
    })
    // xlint-endpoints: end(trace-labels)
}

#[derive(Debug, Default)]
struct StoreState {
    ring: VecDeque<Trace>,
    slow: VecDeque<Trace>,
}

/// The bounded store of completed traces behind `GET /debug/traces`.
///
/// Two views: a ring buffer of the most recent [`RING_CAPACITY`]
/// completions (whatever their latency), and a **slow reservoir** holding
/// the most recent [`SLOW_CAPACITY`] traces whose total met the slow
/// threshold — so the interesting trace survives even when a flood of
/// fast requests churns the ring.  Publication moves the trace into the
/// ring under one short mutex (slow traces are additionally cloned into
/// the reservoir — rare by definition); id assignment is a relaxed
/// atomic.  The evicted trace is dropped after the lock is released so
/// its frees never extend the critical section.
#[derive(Debug)]
pub struct TraceStore {
    next_id: AtomicU64,
    recorded: AtomicU64,
    slow_threshold: Duration,
    state: Mutex<StoreState>,
}

impl TraceStore {
    /// A store whose slow reservoir retains traces at least
    /// `slow_threshold` long end to end.
    pub fn new(slow_threshold: Duration) -> Self {
        TraceStore {
            next_id: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            slow_threshold,
            state: Mutex::new(StoreState::default()),
        }
    }

    /// The configured slow-trace threshold.
    pub fn slow_threshold(&self) -> Duration {
        self.slow_threshold
    }

    /// Total traces ever published (ring evictions included).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed) // relaxed: monotonic stats counter
    }

    /// Allocates the next trace id (process-unique, starting at 1).
    pub fn next_id(&self) -> u64 {
        // relaxed: uniqueness only needs atomicity, not ordering.
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Publishes a completed trace into the ring (and, when its total
    /// meets the threshold, the slow reservoir), evicting the oldest
    /// entries past each bound.
    pub fn publish(&self, trace: Trace) {
        let slow = trace.total_us >= us(self.slow_threshold);
        self.recorded.fetch_add(1, Ordering::Relaxed); // relaxed: monotonic stats counter
        let mut state = self.state.lock();
        if slow {
            // xlint: allow(no-alloc-hot-path, slow traces are rare by definition — the clone keeps the ring move-only)
            state.slow.push_back(trace.clone());
            while state.slow.len() > SLOW_CAPACITY {
                state.slow.pop_front();
            }
        }
        let evicted = if state.ring.len() >= RING_CAPACITY {
            state.ring.pop_front()
        } else {
            None
        };
        state.ring.push_back(trace);
        drop(state);
        drop(evicted);
    }

    /// The `GET /debug/traces` document: configuration, totals, and both
    /// views (oldest first).
    pub fn to_json(&self) -> Json {
        let state = self.state.lock();
        let render =
            |traces: &VecDeque<Trace>| Json::Arr(traces.iter().map(|t| t.to_json()).collect());
        Json::Obj(vec![
            (
                "slow_threshold_ms".to_owned(),
                Json::Num(self.slow_threshold.as_millis() as f64),
            ),
            ("ring_capacity".to_owned(), Json::Num(RING_CAPACITY as f64)),
            ("slow_capacity".to_owned(), Json::Num(SLOW_CAPACITY as f64)),
            ("recorded".to_owned(), Json::Num(self.recorded() as f64)),
            ("recent".to_owned(), render(&state.ring)),
            ("slow".to_owned(), render(&state.slow)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(store: &TraceStore, total: Duration, endpoint: &str) -> Trace {
        let epoch = Instant::now();
        let mut tb = TraceBuilder::begin(store.next_id(), epoch, endpoint.to_owned());
        tb.set_status(200);
        tb.span(Stage::Execute, epoch, epoch + total, "work");
        tb.finish(epoch + total)
    }

    #[test]
    fn spans_share_the_epoch_clock_and_never_precede_it() {
        let epoch = Instant::now();
        let mut tb = TraceBuilder::begin(7, epoch, "POST /x".to_owned());
        // A start before the epoch clamps to offset 0 instead of wrapping.
        tb.span(
            Stage::Parse,
            epoch.checked_sub(Duration::from_secs(1)).unwrap_or(epoch),
            epoch + Duration::from_micros(10),
            "",
        );
        tb.span(
            Stage::QueueWait,
            epoch + Duration::from_micros(10),
            epoch + Duration::from_micros(30),
            "",
        );
        let trace = tb.finish(epoch + Duration::from_micros(40));
        assert_eq!(trace.id, 7);
        assert_eq!(trace.spans[0].start_us, 0);
        assert_eq!(trace.spans[1].start_us, 10);
        assert_eq!(trace.spans[1].duration_us, 20);
        assert!(trace.total_us >= 40);
        // Sequential spans are non-overlapping and the sum fits the total.
        let sum: u64 = trace.spans.iter().map(|s| s.duration_us).sum();
        assert!(sum <= trace.total_us);
        // The JSON view is parseable and carries every span.
        let doc = Json::parse(&trace.to_json().to_string()).unwrap();
        assert_eq!(doc.get("spans").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn ring_is_bounded_and_slow_traces_survive_eviction() {
        let store = TraceStore::new(Duration::from_millis(5));
        store.publish(trace_of(&store, Duration::from_millis(50), "POST /slow"));
        for _ in 0..(RING_CAPACITY + 10) {
            store.publish(trace_of(&store, Duration::from_micros(10), "GET /fast"));
        }
        let doc = store.to_json();
        let recent = doc.get("recent").unwrap().as_arr().unwrap().len();
        assert_eq!(recent, RING_CAPACITY, "ring must stay bounded");
        // The slow trace was evicted from the ring long ago but the
        // reservoir still has it.
        let slow = doc.get("slow").unwrap().as_arr().unwrap();
        assert_eq!(slow.len(), 1);
        assert_eq!(
            slow[0].get("endpoint").unwrap().as_str().unwrap(),
            "POST /slow"
        );
        assert_eq!(
            doc.get("recorded").unwrap().as_u64().unwrap(),
            (RING_CAPACITY + 11) as u64
        );
    }

    #[test]
    fn slow_reservoir_is_bounded_too() {
        let store = TraceStore::new(Duration::from_micros(1));
        for _ in 0..(SLOW_CAPACITY + 5) {
            store.publish(trace_of(&store, Duration::from_millis(1), "POST /x"));
        }
        let doc = store.to_json();
        assert_eq!(
            doc.get("slow").unwrap().as_arr().unwrap().len(),
            SLOW_CAPACITY
        );
    }

    #[test]
    fn stage_names_and_indexes_are_stable() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "parse",
                "queue_wait",
                "cache_lookup",
                "execute",
                "serialize",
                "write"
            ]
        );
    }
}
