//! Server-side observability: request counters and a latency histogram.
//!
//! Everything is lock-free (relaxed atomics): the serving hot path only
//! ever increments counters, and `/stats` assembles a point-in-time JSON
//! snapshot without contending with workers.  Latencies go into a
//! log-linear (HDR-style) microsecond histogram — exact below 16 µs, 16
//! sub-buckets per power of two above, so every reported percentile is
//! within 6.25 % of the true value — from which percentiles are derived as
//! the upper bound of their bucket (conservative).  The `loadgen` bench
//! reports *exact* percentiles from its own recorded samples; the
//! histogram is for the live endpoint.

use crate::trace::{Stage, Trace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use xinsight_core::json::Json;
use xinsight_stats::CacheStats;

/// Values below this many microseconds get one exact bucket each.
const LINEAR_LIMIT: u64 = 16;

/// Sub-buckets per power of two above [`LINEAR_LIMIT`]: quantization error
/// is bounded by `1/SUB_BUCKETS` (6.25 %).
const SUB_BUCKETS: usize = 16;

/// Powers of two covered above the linear range: `2^4 ..= 2^39` µs
/// (≈ 9 days); anything larger lands in the final (open) bucket.
const OCTAVES: usize = 36;

/// Total histogram bucket count.
pub const LATENCY_BUCKETS: usize = LINEAR_LIMIT as usize + OCTAVES * SUB_BUCKETS;

/// The bucket a microsecond value lands in.
fn bucket_index(us: u64) -> usize {
    if us < LINEAR_LIMIT {
        return us as usize;
    }
    if us >= 1u64 << (4 + OCTAVES) {
        return LATENCY_BUCKETS - 1;
    }
    let octave = 63 - us.leading_zeros() as usize; // >= 4 here
    let shift = octave - 4;
    let sub = ((us >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
    LINEAR_LIMIT as usize + (octave - 4) * SUB_BUCKETS + sub
}

/// The (inclusive) upper bound of a bucket, in microseconds.
fn bucket_upper_us(index: usize) -> u64 {
    if index < LINEAR_LIMIT as usize {
        return index as u64;
    }
    let i = index - LINEAR_LIMIT as usize;
    let shift = (i / SUB_BUCKETS) as u64;
    let sub = (i % SUB_BUCKETS) as u64;
    ((LINEAR_LIMIT + sub) << shift) + (1u64 << shift) - 1
}

/// A fixed-bucket, lock-free, log-linear latency histogram over
/// microseconds (exact below 16 µs, ≤ 6.25 % quantization above).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        // relaxed: each cell is an independent monotonic counter; readers
        // snapshot without a lock and tolerate torn cross-cell views.
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed); // relaxed: see above
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // relaxed: monotonic stats counter
    }

    /// Mean latency in microseconds (`0` before any sample).
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            // relaxed: stats read; sum/count may skew, the mean is advisory
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Sum of all recorded samples, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed) // relaxed: monotonic stats counter
    }

    /// The cumulative count of samples `<= bound_us`, reported against the
    /// exact internal bucket boundary: returns `(snapped_upper_us, count)`
    /// where `snapped_upper_us >= bound_us` is the upper bound of the
    /// bucket `bound_us` falls in.  Because the count is taken at a real
    /// bucket edge, it is exact for the snapped bound — this is what lets
    /// `/metrics` publish a coarse `le` ladder without re-introducing
    /// quantization error on the published bounds.
    pub fn cumulative_le(&self, bound_us: u64) -> (u64, u64) {
        let index = bucket_index(bound_us);
        let mut seen = 0u64;
        for bucket in self.buckets.iter().take(index + 1) {
            // relaxed: advisory histogram read; cells may skew slightly
            seen += bucket.load(Ordering::Relaxed);
        }
        (bucket_upper_us(index), seen)
    }

    /// `quantile` (in `[0, 1]`) as the upper bound of the bucket containing
    /// it, in microseconds — within 6.25 % of the true sample value.
    pub fn quantile_upper_us(&self, quantile: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((count as f64) * quantile.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            // relaxed: advisory histogram read; cells may skew slightly
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_us(i);
            }
        }
        bucket_upper_us(LATENCY_BUCKETS - 1)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_owned(), Json::Num(self.count() as f64)),
            ("mean_us".to_owned(), Json::Num(self.mean_us() as f64)),
            (
                "p50_us".to_owned(),
                Json::Num(self.quantile_upper_us(0.50) as f64),
            ),
            (
                "p99_us".to_owned(),
                Json::Num(self.quantile_upper_us(0.99) as f64),
            ),
        ])
    }
}

/// The externally-owned pieces of one `/stats` snapshot, assembled by the
/// server at request time and rendered by [`ServerStats::to_json`].
#[derive(Debug)]
pub struct StatsSnapshot {
    /// The LRU result cache's counters and occupancy.
    pub result_cache: crate::lru::ResultCacheStats,
    /// Live sum of every loaded model's persistent `SelectionCache`
    /// counters (summed at snapshot time — the caches are shared across
    /// requests, so per-request accumulation would double count).
    pub selection: CacheStats,
    /// Merged fit-time CI-test cache counters over all loaded models.
    pub ci_cache: CacheStats,
    /// Per-model store shapes (id / generation / segments / rows / epoch),
    /// already rendered.
    pub models: Json,
    /// Admitted connections currently waiting for a worker.
    pub queue_depth: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// The compaction threshold (`0` = compactor disabled).
    pub compact_after: usize,
}

/// Aggregate counters of one server instance.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    /// Requests answered, by endpoint.
    pub explain: AtomicU64,
    /// `POST /explain_batch` requests answered.
    pub explain_batch: AtomicU64,
    /// `POST /v2/explain` requests answered.
    pub explain_v2: AtomicU64,
    /// `POST /v2/explain_batch` requests answered.
    pub explain_batch_v2: AtomicU64,
    /// `POST /v2/ingest` requests answered (segments appended).
    pub ingest_v2: AtomicU64,
    /// `GET /v2/graph` requests answered (fitted-graph renderings).
    pub graph_v2: AtomicU64,
    /// Individual queries inside batch requests (v1 and v2).
    pub batch_queries: AtomicU64,
    /// `GET /models` requests answered.
    pub models: AtomicU64,
    /// `GET /stats` requests answered.
    pub stats: AtomicU64,
    /// `GET /metrics` scrapes answered.
    pub metrics: AtomicU64,
    /// Debug requests (`/debug/sleep`, `/debug/traces`) answered.
    pub debug: AtomicU64,
    /// Admin requests (reload + shutdown) answered.
    pub admin: AtomicU64,
    /// Requests rejected with `4xx` (bad wire format, unknown paths…).
    pub client_errors: AtomicU64,
    /// Requests failed with `500`.
    pub server_errors: AtomicU64,
    /// Requests rejected with `503` by the admission queue.
    pub rejected: AtomicU64,
    /// Connections the event loop has accepted, cumulatively.
    pub conn_accepted: AtomicU64,
    /// Currently open connections (gauge).
    pub conn_active: AtomicU64,
    /// Open connections currently parked idle between requests, waiting in
    /// the kernel at zero thread cost (gauge, refreshed each sweep tick).
    pub conn_parked_idle: AtomicU64,
    /// Connections the server closed on its own: admission-queue 503s,
    /// idle-timeout reaps, and the connection cap.
    pub conn_shed: AtomicU64,
    /// Partial requests that hit the slow-loris read deadline (answered
    /// `408` and closed).
    pub read_timeouts: AtomicU64,
    /// Request latencies from admission (request fully parsed and queued)
    /// to response computed — queue wait included, socket writes excluded.
    pub latency: LatencyHistogram,
    /// Per-stage latency histograms, indexed by [`Stage::index`].  Fed by
    /// [`ServerStats::record_trace`] when the event loop finalizes a
    /// request trace, so background-work traces (compaction) never skew
    /// the request-stage distributions.
    pub stages: [LatencyHistogram; Stage::ALL.len()],
    /// Duration of the event loop's most recent sweep tick, µs (gauge).
    pub loop_last_tick_us: AtomicU64,
    /// The event loop's most recent poller wait, µs (gauge) — near the
    /// 50 ms tick when idle, near zero under load.
    pub loop_last_poll_wait_us: AtomicU64,
    /// Connection slots occupied at the last sweep (gauge).
    pub loop_slots_occupied: AtomicU64,
    /// Sweep ticks the event loop has run, cumulatively.
    pub loop_ticks: AtomicU64,
    /// Background compactions completed (swaps that actually happened —
    /// stale rewrites discarded at the swap check are not counted).
    pub compactions: AtomicU64,
    /// Segment count of the most recently compacted store, before.
    pub compaction_last_before: AtomicU64,
    /// Segment count of the most recently compacted store, after.
    pub compaction_last_after: AtomicU64,
    /// Cumulative estimated bytes reclaimed by compactions.
    pub compaction_bytes_reclaimed: AtomicU64,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            started: Instant::now(),
            explain: AtomicU64::new(0),
            explain_batch: AtomicU64::new(0),
            explain_v2: AtomicU64::new(0),
            explain_batch_v2: AtomicU64::new(0),
            ingest_v2: AtomicU64::new(0),
            graph_v2: AtomicU64::new(0),
            batch_queries: AtomicU64::new(0),
            models: AtomicU64::new(0),
            stats: AtomicU64::new(0),
            metrics: AtomicU64::new(0),
            debug: AtomicU64::new(0),
            admin: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            conn_accepted: AtomicU64::new(0),
            conn_active: AtomicU64::new(0),
            conn_parked_idle: AtomicU64::new(0),
            conn_shed: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            stages: std::array::from_fn(|_| LatencyHistogram::default()),
            loop_last_tick_us: AtomicU64::new(0),
            loop_last_poll_wait_us: AtomicU64::new(0),
            loop_slots_occupied: AtomicU64::new(0),
            loop_ticks: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compaction_last_before: AtomicU64::new(0),
            compaction_last_after: AtomicU64::new(0),
            compaction_bytes_reclaimed: AtomicU64::new(0),
        }
    }
}

impl ServerStats {
    /// Seconds since the server started.
    pub fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Records one completed background compaction.
    pub fn record_compaction(
        &self,
        segments_before: usize,
        segments_after: usize,
        bytes_reclaimed: usize,
    ) {
        // relaxed: compaction counters/gauges feed /stats only; the single
        // compactor thread is the only writer.
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.compaction_last_before
            .store(segments_before as u64, Ordering::Relaxed);
        self.compaction_last_after
            // relaxed: see above — single-writer compaction gauge
            .store(segments_after as u64, Ordering::Relaxed);
        self.compaction_bytes_reclaimed
            // relaxed: see above — monotonic compaction counter
            .fetch_add(bytes_reclaimed as u64, Ordering::Relaxed);
    }

    /// Folds a completed request trace into the per-stage latency
    /// histograms.  Called once per request by the event loop at write
    /// completion; background traces (compaction) are published to the
    /// trace store only and never pass through here.
    pub fn record_trace(&self, trace: &Trace) {
        for span in &trace.spans {
            self.stages[span.stage.index()].record(Duration::from_micros(span.duration_us));
        }
    }

    /// Total requests that reached a handler (everything but `503`s).
    pub fn requests_total(&self) -> u64 {
        // relaxed: a /stats aggregate over independent counters; a torn
        // cross-counter view is inherent and harmless.
        self.explain.load(Ordering::Relaxed)
            + self.explain_batch.load(Ordering::Relaxed)
            + self.explain_v2.load(Ordering::Relaxed)
            + self.explain_batch_v2.load(Ordering::Relaxed)
            + self.ingest_v2.load(Ordering::Relaxed)
            + self.graph_v2.load(Ordering::Relaxed)
            + self.models.load(Ordering::Relaxed)
            + self.stats.load(Ordering::Relaxed)
            + self.metrics.load(Ordering::Relaxed)
            + self.debug.load(Ordering::Relaxed)
            + self.admin.load(Ordering::Relaxed)
            + self.client_errors.load(Ordering::Relaxed)
            + self.server_errors.load(Ordering::Relaxed)
    }

    /// The `/stats` JSON document, assembled from this instance's counters
    /// plus the externally-owned pieces in the [`StatsSnapshot`].
    pub fn to_json(&self, snapshot: StatsSnapshot) -> Json {
        let StatsSnapshot {
            result_cache,
            selection,
            ci_cache,
            models,
            queue_depth,
            queue_capacity,
            workers,
            compact_after,
        } = snapshot;
        let uptime = self.started.elapsed().as_secs_f64();
        let total = self.requests_total();
        let qps = if uptime > 0.0 {
            total as f64 / uptime
        } else {
            0.0
        };
        // relaxed: /stats snapshot reads of independent counters
        let load = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as f64);
        Json::Obj(vec![
            ("uptime_s".to_owned(), Json::Num(uptime)),
            ("requests_total".to_owned(), Json::Num(total as f64)),
            ("qps".to_owned(), Json::Num(qps)),
            (
                "requests".to_owned(),
                Json::Obj(vec![
                    ("explain".to_owned(), load(&self.explain)),
                    ("explain_batch".to_owned(), load(&self.explain_batch)),
                    ("explain_v2".to_owned(), load(&self.explain_v2)),
                    ("explain_batch_v2".to_owned(), load(&self.explain_batch_v2)),
                    ("ingest_v2".to_owned(), load(&self.ingest_v2)),
                    ("graph_v2".to_owned(), load(&self.graph_v2)),
                    ("batch_queries".to_owned(), load(&self.batch_queries)),
                    ("models".to_owned(), load(&self.models)),
                    ("stats".to_owned(), load(&self.stats)),
                    ("metrics".to_owned(), load(&self.metrics)),
                    ("debug".to_owned(), load(&self.debug)),
                    ("admin".to_owned(), load(&self.admin)),
                    ("client_errors".to_owned(), load(&self.client_errors)),
                    ("server_errors".to_owned(), load(&self.server_errors)),
                    ("rejected_503".to_owned(), load(&self.rejected)),
                ]),
            ),
            ("latency".to_owned(), self.latency.to_json()),
            (
                "latency_stages".to_owned(),
                Json::Obj(
                    Stage::ALL
                        .iter()
                        .map(|stage| {
                            (
                                stage.name().to_owned(),
                                self.stages[stage.index()].to_json(),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "event_loop".to_owned(),
                Json::Obj(vec![
                    ("last_tick_us".to_owned(), load(&self.loop_last_tick_us)),
                    (
                        "last_poll_wait_us".to_owned(),
                        load(&self.loop_last_poll_wait_us),
                    ),
                    ("slots_occupied".to_owned(), load(&self.loop_slots_occupied)),
                    ("ticks".to_owned(), load(&self.loop_ticks)),
                ]),
            ),
            (
                "connections".to_owned(),
                Json::Obj(vec![
                    ("accepted".to_owned(), load(&self.conn_accepted)),
                    ("active".to_owned(), load(&self.conn_active)),
                    ("parked_idle".to_owned(), load(&self.conn_parked_idle)),
                    ("shed".to_owned(), load(&self.conn_shed)),
                    ("read_timeouts".to_owned(), load(&self.read_timeouts)),
                ]),
            ),
            ("models".to_owned(), models),
            (
                "queue".to_owned(),
                Json::Obj(vec![
                    ("depth".to_owned(), Json::Num(queue_depth as f64)),
                    ("capacity".to_owned(), Json::Num(queue_capacity as f64)),
                    ("workers".to_owned(), Json::Num(workers as f64)),
                ]),
            ),
            (
                "compaction".to_owned(),
                Json::Obj(vec![
                    ("enabled".to_owned(), Json::Bool(compact_after >= 2)),
                    ("compact_after".to_owned(), Json::Num(compact_after as f64)),
                    ("runs".to_owned(), load(&self.compactions)),
                    (
                        "last_segments_before".to_owned(),
                        load(&self.compaction_last_before),
                    ),
                    (
                        "last_segments_after".to_owned(),
                        load(&self.compaction_last_after),
                    ),
                    (
                        "bytes_reclaimed".to_owned(),
                        load(&self.compaction_bytes_reclaimed),
                    ),
                ]),
            ),
            (
                "result_cache".to_owned(),
                Json::Obj(vec![
                    ("lookups".to_owned(), Json::Num(result_cache.lookups as f64)),
                    ("hits".to_owned(), Json::Num(result_cache.hits as f64)),
                    (
                        "prefix_hits".to_owned(),
                        Json::Num(result_cache.prefix_hits as f64),
                    ),
                    ("merged".to_owned(), Json::Num(result_cache.merged as f64)),
                    ("misses".to_owned(), Json::Num(result_cache.misses as f64)),
                    ("hit_rate".to_owned(), Json::Num(result_cache.hit_rate())),
                    (
                        "evictions".to_owned(),
                        Json::Num(result_cache.evictions as f64),
                    ),
                    (
                        "uncacheable".to_owned(),
                        Json::Num(result_cache.uncacheable as f64),
                    ),
                    ("entries".to_owned(), Json::Num(result_cache.entries as f64)),
                    ("bytes".to_owned(), Json::Num(result_cache.bytes as f64)),
                    (
                        "byte_budget".to_owned(),
                        Json::Num(result_cache.byte_budget as f64),
                    ),
                ]),
            ),
            (
                "selection_cache".to_owned(),
                Json::Obj(vec![
                    ("hits".to_owned(), Json::Num(selection.hits as f64)),
                    ("misses".to_owned(), Json::Num(selection.misses as f64)),
                    ("hit_rate".to_owned(), Json::Num(selection.hit_rate())),
                ]),
            ),
            (
                "ci_cache_fit_time".to_owned(),
                Json::Obj(vec![
                    ("hits".to_owned(), Json::Num(ci_cache.hits as f64)),
                    ("misses".to_owned(), Json::Num(ci_cache.misses as f64)),
                    ("hit_rate".to_owned(), Json::Num(ci_cache.hit_rate())),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles_are_monotone() {
        let h = LatencyHistogram::default();
        for us in [1u64, 3, 3, 10, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        assert!(h.mean_us() > 0);
        let p50 = h.quantile_upper_us(0.50);
        let p99 = h.quantile_upper_us(0.99);
        assert!(p50 <= p99, "p50 {p50} must be <= p99 {p99}");
        // The linear range is exact: the 4th smallest sample is 10 µs.
        assert_eq!(p50, 10);
        // p99 covers the largest sample within the 6.25 % bound.
        assert!((10_000..=10_625).contains(&p99), "got {p99}");
        // Empty histogram.
        let empty = LatencyHistogram::default();
        assert_eq!(empty.quantile_upper_us(0.5), 0);
        assert_eq!(empty.mean_us(), 0);
    }

    #[test]
    fn log_linear_buckets_bound_quantization_error() {
        // Round-tripping any value through its bucket's upper bound may
        // only inflate it, and by at most 1/SUB_BUCKETS.
        for us in (0..5_000_000u64).step_by(997) {
            let upper = bucket_upper_us(bucket_index(us));
            assert!(upper >= us, "upper {upper} < sample {us}");
            assert!(
                (upper - us) as f64 <= (us as f64 / SUB_BUCKETS as f64) + 1.0,
                "bucket for {us} µs too coarse: upper {upper}"
            );
        }
        // Bucket uppers are strictly monotone over the whole range.
        let mut last = None;
        for i in 0..LATENCY_BUCKETS {
            let upper = bucket_upper_us(i);
            if let Some(prev) = last {
                assert!(upper > prev, "bucket {i} not monotone");
            }
            last = Some(upper);
        }
        // The overflow clamp lands in the final bucket.
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn cumulative_le_snaps_bounds_and_counts_exactly() {
        let h = LatencyHistogram::default();
        for us in [5u64, 10, 100, 150, 5_000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.sum_us(), 105_265);
        // The snapped bound is always >= the requested one, and the count
        // at the snapped edge is exact.
        let (upper, count) = h.cumulative_le(10);
        assert_eq!((upper, count), (10, 2)); // linear range: exact bucket
        let (upper, count) = h.cumulative_le(200);
        assert!(upper >= 200);
        assert_eq!(count, 4);
        let (_, all) = h.cumulative_le(u64::MAX / 2);
        assert_eq!(all, 6);
        // Counts are monotone as the bound grows.
        let mut last = 0;
        for bound in [1u64, 16, 64, 1_000, 10_000, 1_000_000] {
            let (_, c) = h.cumulative_le(bound);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn record_trace_feeds_the_matching_stage_histograms() {
        use crate::trace::{Stage, TraceBuilder};
        let stats = ServerStats::default();
        let epoch = Instant::now();
        let mut tb = TraceBuilder::begin(1, epoch, "POST /explain".to_owned());
        tb.span(Stage::Parse, epoch, epoch + Duration::from_micros(10), "");
        tb.span(
            Stage::QueueWait,
            epoch + Duration::from_micros(10),
            epoch + Duration::from_micros(60),
            "",
        );
        tb.span(
            Stage::Execute,
            epoch + Duration::from_micros(60),
            epoch + Duration::from_micros(1_060),
            "",
        );
        stats.record_trace(&tb.finish(epoch + Duration::from_micros(1_100)));
        assert_eq!(stats.stages[Stage::Parse.index()].count(), 1);
        assert_eq!(stats.stages[Stage::QueueWait.index()].count(), 1);
        assert_eq!(stats.stages[Stage::Execute.index()].count(), 1);
        assert_eq!(stats.stages[Stage::Serialize.index()].count(), 0);
        assert_eq!(stats.stages[Stage::Parse.index()].sum_us(), 10);
        // The /stats rendering exposes the fed stages.
        let doc = stats.to_json(StatsSnapshot {
            result_cache: crate::lru::ResultCacheStats::default(),
            selection: CacheStats::default(),
            ci_cache: CacheStats::default(),
            models: Json::Arr(Vec::new()),
            queue_depth: 0,
            queue_capacity: 64,
            workers: 2,
            compact_after: 0,
        });
        let stages = doc.get("latency_stages").unwrap();
        assert_eq!(
            stages
                .get("queue_wait")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
        assert!(doc.get("event_loop").unwrap().get("ticks").is_ok());
    }

    #[test]
    fn stats_json_assembles_every_section() {
        let stats = ServerStats::default();
        stats.explain.fetch_add(3, Ordering::Relaxed);
        stats.rejected.fetch_add(1, Ordering::Relaxed);
        stats.conn_accepted.fetch_add(5, Ordering::Relaxed);
        stats.conn_active.store(2, Ordering::Relaxed);
        stats.conn_parked_idle.store(1, Ordering::Relaxed);
        stats.conn_shed.fetch_add(1, Ordering::Relaxed);
        stats.latency.record(Duration::from_micros(500));
        stats.record_compaction(5, 1, 4096);
        stats.record_compaction(3, 1, 1024);
        let result_cache = crate::lru::ResultCacheStats {
            hits: 2,
            prefix_hits: 1,
            merged: 1,
            misses: 4,
            ..Default::default()
        };
        let doc = stats.to_json(StatsSnapshot {
            result_cache,
            selection: CacheStats {
                hits: 10,
                misses: 5,
                entries: 7,
            },
            ci_cache: CacheStats::default(),
            models: Json::Arr(Vec::new()),
            queue_depth: 2,
            queue_capacity: 64,
            workers: 4,
            compact_after: 6,
        });
        assert_eq!(doc.get("requests_total").unwrap().as_u64().unwrap(), 3);
        let requests = doc.get("requests").unwrap();
        assert_eq!(requests.get("explain").unwrap().as_u64().unwrap(), 3);
        assert_eq!(requests.get("rejected_503").unwrap().as_u64().unwrap(), 1);
        let connections = doc.get("connections").unwrap();
        assert_eq!(connections.get("accepted").unwrap().as_u64().unwrap(), 5);
        assert_eq!(connections.get("active").unwrap().as_u64().unwrap(), 2);
        assert_eq!(connections.get("parked_idle").unwrap().as_u64().unwrap(), 1);
        assert_eq!(connections.get("shed").unwrap().as_u64().unwrap(), 1);
        assert_eq!(
            connections.get("read_timeouts").unwrap().as_u64().unwrap(),
            0
        );
        let selection = doc.get("selection_cache").unwrap();
        assert!((selection.get("hit_rate").unwrap().as_f64().unwrap() - 10.0 / 15.0).abs() < 1e-12);
        // All three served classes count toward the result-cache hit rate.
        let result_cache = doc.get("result_cache").unwrap();
        assert_eq!(
            result_cache.get("prefix_hits").unwrap().as_u64().unwrap(),
            1
        );
        assert_eq!(result_cache.get("merged").unwrap().as_u64().unwrap(), 1);
        assert!((result_cache.get("hit_rate").unwrap().as_f64().unwrap() - 0.5).abs() < 1e-12);
        // Compaction: runs count, the *last* before/after shape, and the
        // *cumulative* bytes reclaimed.
        let compaction = doc.get("compaction").unwrap();
        assert!(compaction.get("enabled").unwrap().as_bool().unwrap());
        assert_eq!(
            compaction.get("compact_after").unwrap().as_u64().unwrap(),
            6
        );
        assert_eq!(compaction.get("runs").unwrap().as_u64().unwrap(), 2);
        assert_eq!(
            compaction
                .get("last_segments_before")
                .unwrap()
                .as_u64()
                .unwrap(),
            3
        );
        assert_eq!(
            compaction
                .get("last_segments_after")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );
        assert_eq!(
            compaction.get("bytes_reclaimed").unwrap().as_u64().unwrap(),
            5120
        );
        assert_eq!(
            doc.get("queue")
                .unwrap()
                .get("capacity")
                .unwrap()
                .as_u64()
                .unwrap(),
            64
        );
        // The document is valid canonical JSON.
        assert!(Json::parse(&doc.to_string()).is_ok());
    }
}
