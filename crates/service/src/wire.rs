//! The JSON wire format of the serving endpoints.
//!
//! Requests and responses reuse the engine's hand-rolled
//! [`Json`] codepath and [`WhyQuery`]'s
//! canonical form, so the HTTP body, the LRU cache key and the persisted
//! artifacts all share one serialization convention (and one set of
//! defensive parsers).
//!
//! The explanation list serializes **deterministically** — field order is
//! fixed, numbers use the canonical `f64` writer — which is what lets the
//! result cache store the serialized string itself and still be provably
//! answer-identical to the uncached path.

use xinsight_core::json::Json;
use xinsight_core::{Explanation, WhyQuery};
use xinsight_data::{DataError, Predicate, Result};

/// A parsed `POST /explain` body: `{"model": "...", "query": {...}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRequest {
    /// The registry id of the model to answer against.
    pub model: String,
    /// The query, validated (sibling subspaces, known aggregate).
    pub query: WhyQuery,
}

/// A parsed `POST /explain_batch` body:
/// `{"model": "...", "queries": [{...}, ...]}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainBatchRequest {
    /// The registry id of the model to answer against.
    pub model: String,
    /// The queries, in request order.
    pub queries: Vec<WhyQuery>,
}

fn parse_body(body: &[u8]) -> Result<Json> {
    let text = std::str::from_utf8(body)
        .map_err(|_| DataError::Serve("request body is not utf-8".into()))?;
    Json::parse(text)
}

fn model_of(doc: &Json) -> Result<String> {
    let model = doc.get("model")?.as_str()?;
    if model.is_empty() {
        return Err(DataError::Serve("`model` must be non-empty".into()));
    }
    Ok(model.to_owned())
}

impl ExplainRequest {
    /// Parses and validates a `POST /explain` body.
    pub fn parse(body: &[u8]) -> Result<Self> {
        let doc = parse_body(body)?;
        Ok(ExplainRequest {
            model: model_of(&doc)?,
            query: WhyQuery::from_json_value(doc.get("query")?)?,
        })
    }
}

/// Upper bound on the number of queries one batch request may carry —
/// keeps a single request from monopolizing a worker unboundedly.
pub const MAX_BATCH_QUERIES: usize = 256;

impl ExplainBatchRequest {
    /// Parses and validates a `POST /explain_batch` body.
    pub fn parse(body: &[u8]) -> Result<Self> {
        let doc = parse_body(body)?;
        let queries = doc
            .get("queries")?
            .as_arr()?
            .iter()
            .map(WhyQuery::from_json_value)
            .collect::<Result<Vec<_>>>()?;
        if queries.is_empty() {
            return Err(DataError::Serve("`queries` must be non-empty".into()));
        }
        if queries.len() > MAX_BATCH_QUERIES {
            return Err(DataError::Serve(format!(
                "batch of {} queries exceeds the limit of {MAX_BATCH_QUERIES}",
                queries.len()
            )));
        }
        Ok(ExplainBatchRequest {
            model: model_of(&doc)?,
            queries,
        })
    }
}

/// A parsed `POST /admin/reload` body: `{"model": "..."}`.
pub fn parse_reload_request(body: &[u8]) -> Result<String> {
    model_of(&parse_body(body)?)
}

fn predicate_to_json(predicate: &Predicate) -> Json {
    Json::Obj(vec![
        (
            "attribute".to_owned(),
            Json::Str(predicate.attribute().to_owned()),
        ),
        (
            "values".to_owned(),
            Json::Arr(
                predicate
                    .values()
                    .iter()
                    .map(|v| Json::Str(v.clone()))
                    .collect(),
            ),
        ),
    ])
}

fn opt_f64(value: Option<f64>) -> Json {
    match value {
        Some(v) => Json::Num(v),
        None => Json::Null,
    }
}

/// Serializes one explanation to its wire object.
pub fn explanation_to_json(explanation: &Explanation) -> Json {
    Json::Obj(vec![
        (
            "type".to_owned(),
            Json::Str(explanation.explanation_type.to_string()),
        ),
        (
            "causal_role".to_owned(),
            match explanation.causal_role {
                Some(role) => Json::Str(role.to_string()),
                None => Json::Null,
            },
        ),
        (
            "predicate".to_owned(),
            predicate_to_json(&explanation.predicate),
        ),
        (
            "responsibility".to_owned(),
            Json::Num(explanation.responsibility),
        ),
        (
            "contingency".to_owned(),
            match &explanation.contingency {
                Some(p) => predicate_to_json(p),
                None => Json::Null,
            },
        ),
        (
            "original_delta".to_owned(),
            Json::Num(explanation.original_delta),
        ),
        (
            "remaining_delta".to_owned(),
            opt_f64(explanation.remaining_delta),
        ),
    ])
}

/// Serializes a ranked explanation list to the canonical string the result
/// cache stores and `/explain` responses embed.
pub fn explanations_to_string(explanations: &[Explanation]) -> String {
    Json::Arr(explanations.iter().map(explanation_to_json).collect()).to_string()
}

/// Assembles the `/explain` response envelope around an (often cached)
/// pre-serialized explanation list.
pub fn explain_response(model: &str, cached: bool, explanations_json: &str) -> String {
    let mut out = String::from("{\"model\":");
    Json::Str(model.to_owned()).write(&mut out);
    out.push_str(",\"cached\":");
    out.push_str(if cached { "true" } else { "false" });
    out.push_str(",\"explanations\":");
    out.push_str(explanations_json);
    out.push('}');
    out
}

/// Assembles the `/explain_batch` response envelope;
/// `results[i]` is the `(cached, serialized explanations)` pair of
/// `queries[i]`.
pub fn explain_batch_response(model: &str, results: &[(bool, std::sync::Arc<str>)]) -> String {
    let mut out = String::from("{\"model\":");
    Json::Str(model.to_owned()).write(&mut out);
    out.push_str(",\"results\":[");
    for (i, (cached, json)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"cached\":");
        out.push_str(if *cached { "true" } else { "false" });
        out.push_str(",\"explanations\":");
        out.push_str(json);
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xinsight_core::{CausalRole, ExplanationType};
    use xinsight_data::{Aggregate, Subspace};

    fn query() -> WhyQuery {
        WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap()
    }

    fn explanation() -> Explanation {
        Explanation {
            explanation_type: ExplanationType::Causal,
            causal_role: Some(CausalRole::Parent),
            predicate: Predicate::new("Smoking", ["Yes"]),
            responsibility: 0.75,
            contingency: None,
            original_delta: 1.5,
            remaining_delta: Some(0.25),
        }
    }

    #[test]
    fn explain_request_round_trips_through_query_json() {
        let body = format!(
            "{{\"model\":\"flight\",\"query\":{}}}",
            query().to_json()
        );
        let parsed = ExplainRequest::parse(body.as_bytes()).unwrap();
        assert_eq!(parsed.model, "flight");
        assert_eq!(parsed.query, query());
    }

    #[test]
    fn batch_request_preserves_order_and_validates() {
        let q = query().to_json();
        let body = format!("{{\"model\":\"m\",\"queries\":[{q},{q}]}}");
        let parsed = ExplainBatchRequest::parse(body.as_bytes()).unwrap();
        assert_eq!(parsed.queries.len(), 2);
        assert!(ExplainBatchRequest::parse(b"{\"model\":\"m\",\"queries\":[]}").is_err());
        assert!(ExplainBatchRequest::parse(b"{\"model\":\"\",\"queries\":[]}").is_err());
        assert!(ExplainRequest::parse(b"not json").is_err());
        assert!(ExplainRequest::parse(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn oversized_batches_are_rejected() {
        let q = query().to_json();
        let queries = vec![q; MAX_BATCH_QUERIES + 1].join(",");
        let body = format!("{{\"model\":\"m\",\"queries\":[{queries}]}}");
        let err = ExplainBatchRequest::parse(body.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn explanations_serialize_deterministically() {
        let json = explanations_to_string(&[explanation()]);
        assert_eq!(
            json,
            "[{\"type\":\"causal\",\"causal_role\":\"parent\",\
             \"predicate\":{\"attribute\":\"Smoking\",\"values\":[\"Yes\"]},\
             \"responsibility\":0.75,\"contingency\":null,\
             \"original_delta\":1.5,\"remaining_delta\":0.25}]"
        );
        // Envelope embeds the list verbatim.
        let envelope = explain_response("m", true, &json);
        assert!(envelope.starts_with("{\"model\":\"m\",\"cached\":true,\"explanations\":["));
        assert!(Json::parse(&envelope).is_ok());
    }

    #[test]
    fn batch_envelope_embeds_each_result() {
        let json: Arc<str> = Arc::from(explanations_to_string(&[explanation()]).as_str());
        let body = explain_batch_response("m", &[(true, Arc::clone(&json)), (false, json)]);
        let doc = Json::parse(&body).unwrap();
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].get("cached").unwrap().as_bool().unwrap());
        assert!(!results[1].get("cached").unwrap().as_bool().unwrap());
    }
}
