//! The JSON wire format of the serving endpoints — both generations.
//!
//! Requests and responses reuse the engine's hand-rolled
//! [`Json`] codepath and [`WhyQuery`]'s
//! canonical form, so the HTTP body, the LRU cache key and the persisted
//! artifacts all share one serialization convention (and one set of
//! defensive parsers).
//!
//! Two wire generations coexist:
//!
//! * **v1** (`/explain`, `/explain_batch`) — `{"model", "query"}` in, a
//!   bare explanation array out.  Kept byte-for-byte stable; the server
//!   answers it by building a *default* [`ExplainRequest`].
//! * **v2** (`/v2/explain`, `/v2/explain_batch`) — adds an `"options"`
//!   object carrying the per-request controls of
//!   [`ExplainRequest`] and returns the full
//!   [`ExplainResponse`] envelope: ranked/scored
//!   explanations, `truncated`/`deadline_hit` markers, elapsed time and
//!   optional provenance.  Errors carry the [`DataError::code`] vocabulary
//!   next to the human-readable message.
//!
//! The explanation payloads serialize **deterministically** — field order
//! is fixed, numbers use the canonical `f64` writer — which is what lets
//! the result cache store the serialized string itself and still be
//! provably answer-identical to the uncached path.  [`RequestOptions`]
//! also derives the canonical [cache-key suffix](RequestOptions::cache_key)
//! that keeps differently-parameterized v2 requests from ever aliasing in
//! the LRU.

use std::time::Duration;
use xinsight_core::json::Json;
use xinsight_core::{
    ExplainRequest, ExplainResponse, Explanation, ExplanationType, Provenance, WhyQuery,
};
use xinsight_data::{DataError, Dataset, Predicate, Result, Schema, Value};

/// A parsed `POST /explain` body: `{"model": "...", "query": {...}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainV1 {
    /// The registry id of the model to answer against.
    pub model: String,
    /// The query, validated (sibling subspaces, known aggregate).
    pub query: WhyQuery,
}

/// A parsed `POST /explain_batch` body:
/// `{"model": "...", "queries": [{...}, ...]}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainBatchV1 {
    /// The registry id of the model to answer against.
    pub model: String,
    /// The queries, in request order.
    pub queries: Vec<WhyQuery>,
}

fn parse_body(body: &[u8]) -> Result<Json> {
    let text = std::str::from_utf8(body)
        .map_err(|_| DataError::Serve("request body is not utf-8".into()))?;
    Json::parse(text)
}

fn model_of(doc: &Json) -> Result<String> {
    let model = doc.get("model")?.as_str()?;
    if model.is_empty() {
        return Err(DataError::Serve("`model` must be non-empty".into()));
    }
    Ok(model.to_owned())
}

fn queries_of(doc: &Json) -> Result<Vec<WhyQuery>> {
    let queries = doc
        .get("queries")?
        .as_arr()?
        .iter()
        .map(WhyQuery::from_json_value)
        .collect::<Result<Vec<_>>>()?;
    if queries.is_empty() {
        return Err(DataError::Serve("`queries` must be non-empty".into()));
    }
    if queries.len() > MAX_BATCH_QUERIES {
        return Err(DataError::Serve(format!(
            "batch of {} queries exceeds the limit of {MAX_BATCH_QUERIES}",
            queries.len()
        )));
    }
    Ok(queries)
}

impl ExplainV1 {
    /// Parses and validates a `POST /explain` body.
    pub fn parse(body: &[u8]) -> Result<Self> {
        let doc = parse_body(body)?;
        Ok(ExplainV1 {
            model: model_of(&doc)?,
            query: WhyQuery::from_json_value(doc.get("query")?)?,
        })
    }
}

/// Upper bound on the number of queries one batch request may carry —
/// keeps a single request from monopolizing a worker unboundedly.
pub const MAX_BATCH_QUERIES: usize = 256;

impl ExplainBatchV1 {
    /// Parses and validates a `POST /explain_batch` body.
    pub fn parse(body: &[u8]) -> Result<Self> {
        let doc = parse_body(body)?;
        Ok(ExplainBatchV1 {
            model: model_of(&doc)?,
            queries: queries_of(&doc)?,
        })
    }
}

/// The `"options"` object of a v2 request: every per-request control of
/// [`ExplainRequest`], all optional on the wire.
///
/// ```json
/// {"top_k": 3, "min_score": 0.1, "types": ["causal"],
///  "parallel": false, "deadline_ms": 250, "include_provenance": true}
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestOptions {
    /// Keep only the `k` best-ranked explanations.
    pub top_k: Option<usize>,
    /// Drop explanations scoring below this responsibility.
    pub min_score: Option<f64>,
    /// Restrict the search to these explanation types (normalized: sorted,
    /// deduplicated).
    pub types: Option<Vec<ExplanationType>>,
    /// Per-request parallelism override.
    pub parallel: Option<bool>,
    /// Soft wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Whether the response should carry a provenance section.
    pub include_provenance: bool,
}

impl RequestOptions {
    /// Parses the optional `"options"` object of a v2 body (`None` —
    /// options absent — yields the default).  Unknown keys are rejected so
    /// a typoed control fails loudly instead of being silently ignored.
    pub fn parse(doc: Option<&Json>) -> Result<Self> {
        let Some(doc) = doc else {
            return Ok(RequestOptions::default());
        };
        let Json::Obj(fields) = doc else {
            return Err(DataError::Serve("`options` must be an object".into()));
        };
        let mut options = RequestOptions::default();
        for (key, value) in fields {
            match key.as_str() {
                "top_k" => {
                    let top_k = value.as_u64()? as usize;
                    if top_k == 0 {
                        return Err(DataError::Serve("`top_k` must be at least 1".into()));
                    }
                    options.top_k = Some(top_k);
                }
                "min_score" => {
                    let min_score = value.as_f64()?;
                    if !min_score.is_finite() {
                        return Err(DataError::Serve("`min_score` must be finite".into()));
                    }
                    options.min_score = Some(min_score);
                }
                "types" => {
                    let mut types = value
                        .as_arr()?
                        .iter()
                        .map(|t| t.as_str()?.parse::<ExplanationType>())
                        .collect::<Result<Vec<_>>>()?;
                    if types.is_empty() {
                        return Err(DataError::Serve(
                            "`types` must name at least one explanation type".into(),
                        ));
                    }
                    types.sort();
                    types.dedup();
                    options.types = Some(types);
                }
                "parallel" => options.parallel = Some(value.as_bool()?),
                "deadline_ms" => options.deadline_ms = Some(value.as_u64()?),
                "include_provenance" => options.include_provenance = value.as_bool()?,
                other => {
                    return Err(DataError::Serve(format!(
                        "unknown option `{other}` (supported: top_k, min_score, types, \
                         parallel, deadline_ms, include_provenance)"
                    )));
                }
            }
        }
        Ok(options)
    }

    /// Builds the engine request for one query.
    pub fn to_engine_request(&self, query: WhyQuery) -> ExplainRequest {
        let mut builder = ExplainRequest::builder(query);
        if let Some(top_k) = self.top_k {
            builder = builder.top_k(top_k);
        }
        if let Some(min_score) = self.min_score {
            builder = builder.min_score(min_score);
        }
        if let Some(types) = &self.types {
            builder = builder.allow_types(types.iter().copied());
        }
        if let Some(parallel) = self.parallel {
            builder = builder.parallel(parallel);
        }
        if let Some(deadline_ms) = self.deadline_ms {
            builder = builder.deadline(Duration::from_millis(deadline_ms));
        }
        builder.include_provenance(self.include_provenance).build()
    }

    /// The canonical cache-key suffix for these options.
    ///
    /// Covers every **result-shaping** control (`top_k`, `min_score`,
    /// `types`, `deadline_ms`), so two v2 requests that differ in any of
    /// them can never alias in the LRU.  Deliberately excluded:
    /// `parallel` (results are identical by construction on either path)
    /// and `include_provenance` (provenance lives in the envelope, not the
    /// cached payload).  The leading `v2` tag also keeps v2 entries — which
    /// store the scored result object — disjoint from v1 entries, which
    /// store a bare explanation array under an empty suffix.
    pub fn cache_key(&self) -> String {
        let mut fields = Vec::new();
        if let Some(top_k) = self.top_k {
            fields.push(("top_k".to_owned(), Json::Num(top_k as f64)));
        }
        if let Some(min_score) = self.min_score {
            fields.push(("min_score".to_owned(), Json::Num(min_score)));
        }
        if let Some(types) = &self.types {
            fields.push((
                "types".to_owned(),
                Json::Arr(types.iter().map(|t| Json::Str(t.to_string())).collect()),
            ));
        }
        if let Some(deadline_ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_owned(), Json::Num(deadline_ms as f64)));
        }
        format!("v2{}", Json::Obj(fields))
    }
}

/// A parsed `POST /v2/explain` body:
/// `{"model": "...", "query": {...}, "options": {...}?}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainV2 {
    /// The registry id of the model to answer against.
    pub model: String,
    /// The query, validated (sibling subspaces, known aggregate).
    pub query: WhyQuery,
    /// The per-request controls (default when absent).
    pub options: RequestOptions,
}

impl ExplainV2 {
    /// Parses and validates a `POST /v2/explain` body.
    pub fn parse(body: &[u8]) -> Result<Self> {
        let doc = parse_body(body)?;
        Ok(ExplainV2 {
            model: model_of(&doc)?,
            query: WhyQuery::from_json_value(doc.get("query")?)?,
            options: RequestOptions::parse(doc.opt("options"))?,
        })
    }
}

/// A parsed `POST /v2/explain_batch` body:
/// `{"model": "...", "queries": [{...}, ...], "options": {...}?}`.
/// One options object applies to every query in the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainBatchV2 {
    /// The registry id of the model to answer against.
    pub model: String,
    /// The queries, in request order.
    pub queries: Vec<WhyQuery>,
    /// The per-request controls, shared by the whole batch.
    pub options: RequestOptions,
}

impl ExplainBatchV2 {
    /// Parses and validates a `POST /v2/explain_batch` body.
    pub fn parse(body: &[u8]) -> Result<Self> {
        let doc = parse_body(body)?;
        Ok(ExplainBatchV2 {
            model: model_of(&doc)?,
            queries: queries_of(&doc)?,
            options: RequestOptions::parse(doc.opt("options"))?,
        })
    }
}

/// A parsed `POST /admin/reload` body: `{"model": "..."}`.
pub fn parse_reload_request(body: &[u8]) -> Result<String> {
    model_of(&parse_body(body)?)
}

/// Upper bound on the number of rows one ingest request may carry — keeps a
/// single request from monopolizing a worker (and a segment from growing
/// unboundedly); stream larger loads as several batches.
pub const MAX_INGEST_ROWS: usize = 4096;

/// A parsed `POST /v2/ingest` body:
///
/// ```json
/// {"model": "flight", "rows": [{"Month": "May", "Rain": "Yes", "DelayMinute": 42.0}, ...]}
/// ```
///
/// Each row is an object mapping attribute names to values: strings for
/// dimensions, numbers for measures, `null` for a missing cell.  Rows are
/// kept as name/value pairs here; [`rows_to_dataset`] validates them
/// against the target model's raw schema.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestV2 {
    /// The registry id of the model to append to.
    pub model: String,
    /// The rows, each as `(attribute, value)` pairs in wire order.
    pub rows: Vec<Vec<(String, Value)>>,
}

impl IngestV2 {
    /// Parses and validates a `POST /v2/ingest` body (schema validation
    /// happens later, against the model, in [`rows_to_dataset`]).
    pub fn parse(body: &[u8]) -> Result<Self> {
        let doc = parse_body(body)?;
        let model = model_of(&doc)?;
        let rows_doc = doc.get("rows")?.as_arr()?;
        if rows_doc.is_empty() {
            return Err(DataError::Serve("`rows` must be non-empty".into()));
        }
        if rows_doc.len() > MAX_INGEST_ROWS {
            return Err(DataError::Serve(format!(
                "ingest of {} rows exceeds the limit of {MAX_INGEST_ROWS}; send several batches",
                rows_doc.len()
            )));
        }
        let mut rows = Vec::with_capacity(rows_doc.len());
        for (i, row) in rows_doc.iter().enumerate() {
            let Json::Obj(fields) = row else {
                return Err(DataError::Serve(format!(
                    "row {i} must be an object of attribute → value"
                )));
            };
            let mut cells = Vec::with_capacity(fields.len());
            for (name, value) in fields {
                let value = match value {
                    Json::Str(s) => Value::Category(s.clone()),
                    Json::Num(x) => Value::Number(*x),
                    Json::Null => Value::Null,
                    other => {
                        return Err(DataError::Serve(format!(
                            "row {i} attribute `{name}`: unsupported value {other} \
                             (use a string, a number or null)"
                        )));
                    }
                };
                cells.push((name.clone(), value));
            }
            rows.push(cells);
        }
        Ok(IngestV2 { model, rows })
    }
}

/// Validates wire ingest rows against a model's raw schema and assembles
/// them into the batch [`Dataset`] the engine appends: every attribute of
/// the schema must be present exactly once per row, dimension cells must be
/// strings and measure cells numbers (`null` marks a missing cell of either
/// kind — such rows are dropped by the engine's preprocessing).  The
/// name-to-position mapping happens here; the row-to-column assembly and
/// kind checking are the engine's own [`Dataset::from_rows`] codepath, so
/// wire ingest and library ingest can never diverge.
pub fn rows_to_dataset(schema: &Schema, rows: &[Vec<(String, Value)>]) -> Result<Dataset> {
    let mut cells: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let mut ordered = vec![Value::Null; schema.len()];
        let mut seen = vec![false; schema.len()];
        for (name, value) in row {
            let idx = schema.index_of(name).map_err(|_| {
                DataError::Serve(format!(
                    "row {i}: attribute `{name}` is not part of the model schema"
                ))
            })?;
            if seen[idx] {
                return Err(DataError::Serve(format!(
                    "row {i}: attribute `{name}` appears twice"
                )));
            }
            seen[idx] = true;
            ordered[idx] = value.clone();
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(DataError::Serve(format!(
                "row {i}: missing attribute `{}` (send null for a missing cell)",
                schema.attribute(missing).name
            )));
        }
        cells.push(ordered);
    }
    Dataset::from_rows(schema, &cells)
}

fn predicate_to_json(predicate: &Predicate) -> Json {
    Json::Obj(vec![
        (
            "attribute".to_owned(),
            Json::Str(predicate.attribute().to_owned()),
        ),
        (
            "values".to_owned(),
            Json::Arr(
                predicate
                    .values()
                    .iter()
                    .map(|v| Json::Str(v.clone()))
                    .collect(),
            ),
        ),
    ])
}

fn opt_f64(value: Option<f64>) -> Json {
    match value {
        Some(v) => Json::Num(v),
        None => Json::Null,
    }
}

/// Serializes one explanation to its wire object.
pub fn explanation_to_json(explanation: &Explanation) -> Json {
    Json::Obj(vec![
        (
            "type".to_owned(),
            Json::Str(explanation.explanation_type.to_string()),
        ),
        (
            "causal_role".to_owned(),
            match explanation.causal_role {
                Some(role) => Json::Str(role.to_string()),
                None => Json::Null,
            },
        ),
        (
            "predicate".to_owned(),
            predicate_to_json(&explanation.predicate),
        ),
        (
            "responsibility".to_owned(),
            Json::Num(explanation.responsibility),
        ),
        (
            "contingency".to_owned(),
            match &explanation.contingency {
                Some(p) => predicate_to_json(p),
                None => Json::Null,
            },
        ),
        (
            "original_delta".to_owned(),
            Json::Num(explanation.original_delta),
        ),
        (
            "remaining_delta".to_owned(),
            opt_f64(explanation.remaining_delta),
        ),
    ])
}

/// Serializes a ranked explanation list to the canonical string the result
/// cache stores and `/explain` (v1) responses embed.
pub fn explanations_to_string(explanations: &[Explanation]) -> String {
    Json::Arr(explanations.iter().map(explanation_to_json).collect()).to_string()
}

/// Serializes a v2 result payload — the cacheable portion of an
/// [`ExplainResponse`]: the scored ranking plus its `truncated` marker.
/// (`deadline_hit` responses are never cached, so the marker lives in the
/// envelope.)
pub fn v2_result_to_string(response: &ExplainResponse) -> String {
    let explanations = Json::Arr(
        response
            .explanations
            .iter()
            .map(|scored| {
                Json::Obj(vec![
                    ("rank".to_owned(), Json::Num(scored.rank as f64)),
                    ("score".to_owned(), Json::Num(scored.score)),
                    (
                        "explanation".to_owned(),
                        explanation_to_json(&scored.explanation),
                    ),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("truncated".to_owned(), Json::Bool(response.truncated)),
        ("explanations".to_owned(), explanations),
    ])
    .to_string()
}

fn cache_stats_to_json(stats: &xinsight_stats::CacheStats) -> Json {
    Json::Obj(vec![
        ("hits".to_owned(), Json::Num(stats.hits as f64)),
        ("misses".to_owned(), Json::Num(stats.misses as f64)),
    ])
}

/// Serializes a [`Provenance`] section.
pub fn provenance_to_json(provenance: &Provenance) -> Json {
    Json::Obj(vec![
        (
            "strategy_evaluations".to_owned(),
            Json::Obj(
                provenance
                    .strategy_evaluations
                    .iter()
                    .map(|(strategy, count)| (strategy.clone(), Json::Num(*count as f64)))
                    .collect(),
            ),
        ),
        (
            "attributes_searched".to_owned(),
            Json::Num(provenance.attributes_searched as f64),
        ),
        (
            "attributes_skipped".to_owned(),
            Json::Num(provenance.attributes_skipped as f64),
        ),
        (
            "selection_cache".to_owned(),
            cache_stats_to_json(&provenance.selection_cache),
        ),
        (
            "ci_cache_fit_time".to_owned(),
            cache_stats_to_json(&provenance.ci_cache_fit_time),
        ),
    ])
}

/// Assembles the `/explain` (v1) response envelope around an (often
/// cached) pre-serialized explanation list.
pub fn explain_response(model: &str, cached: bool, explanations_json: &str) -> String {
    let mut out = String::from("{\"model\":");
    Json::Str(model.to_owned()).write(&mut out);
    out.push_str(",\"cached\":");
    out.push_str(if cached { "true" } else { "false" });
    out.push_str(",\"explanations\":");
    out.push_str(explanations_json);
    out.push('}');
    out
}

/// Assembles the `/explain_batch` (v1) response envelope;
/// `results[i]` is the `(cached, serialized explanations)` pair of
/// `queries[i]`.
pub fn explain_batch_response(model: &str, results: &[(bool, std::sync::Arc<str>)]) -> String {
    let mut out = String::from("{\"model\":");
    Json::Str(model.to_owned()).write(&mut out);
    out.push_str(",\"results\":[");
    for (i, (cached, json)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"cached\":");
        out.push_str(if *cached { "true" } else { "false" });
        out.push_str(",\"explanations\":");
        out.push_str(json);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Assembles the `/v2/explain` response envelope around a (possibly
/// cached) pre-serialized result payload:
///
/// ```json
/// {"model": "...", "cached": false, "deadline_hit": false,
///  "elapsed_us": 1234, "provenance": null | {...},
///  "result": {"truncated": false, "explanations": [...]}}
/// ```
///
/// `elapsed_us` is the server's handler wall-clock (parse + cache lookup +
/// engine work), measured the same way on cached and uncached answers so
/// the two are comparable.
pub fn explain_v2_response(
    model: &str,
    cached: bool,
    deadline_hit: bool,
    elapsed_us: u64,
    provenance: Option<&Provenance>,
    result_json: &str,
) -> String {
    let mut out = String::from("{\"model\":");
    Json::Str(model.to_owned()).write(&mut out);
    out.push_str(",\"cached\":");
    out.push_str(if cached { "true" } else { "false" });
    out.push_str(",\"deadline_hit\":");
    out.push_str(if deadline_hit { "true" } else { "false" });
    out.push_str(",\"elapsed_us\":");
    out.push_str(&elapsed_us.to_string());
    out.push_str(",\"provenance\":");
    match provenance {
        Some(p) => provenance_to_json(p).write(&mut out),
        None => out.push_str("null"),
    }
    out.push_str(",\"result\":");
    out.push_str(result_json);
    out.push('}');
    out
}

/// One slot of a v2 batch response.
#[derive(Debug, Clone)]
pub struct BatchSlotV2 {
    /// Whether the slot was answered from the result cache.
    pub cached: bool,
    /// Whether this slot's deadline expired mid-search.
    pub deadline_hit: bool,
    /// The slot's provenance, when requested and freshly computed.
    pub provenance: Option<Provenance>,
    /// The serialized result payload ([`v2_result_to_string`]).
    pub result: std::sync::Arc<str>,
}

/// Assembles the `/v2/explain_batch` response envelope; `results[i]`
/// answers `queries[i]`.
pub fn explain_batch_v2_response(model: &str, results: &[BatchSlotV2]) -> String {
    let mut out = String::from("{\"model\":");
    Json::Str(model.to_owned()).write(&mut out);
    out.push_str(",\"results\":[");
    for (i, slot) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"cached\":");
        out.push_str(if slot.cached { "true" } else { "false" });
        out.push_str(",\"deadline_hit\":");
        out.push_str(if slot.deadline_hit { "true" } else { "false" });
        out.push_str(",\"provenance\":");
        match &slot.provenance {
            Some(p) => provenance_to_json(p).write(&mut out),
            None => out.push_str("null"),
        }
        out.push_str(",\"result\":");
        out.push_str(&slot.result);
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xinsight_core::{CausalRole, ScoredExplanation};
    use xinsight_data::{Aggregate, Subspace};

    fn query() -> WhyQuery {
        WhyQuery::new(
            "M",
            Aggregate::Avg,
            Subspace::of("X", "a"),
            Subspace::of("X", "b"),
        )
        .unwrap()
    }

    fn explanation() -> Explanation {
        Explanation {
            explanation_type: ExplanationType::Causal,
            causal_role: Some(CausalRole::Parent),
            predicate: Predicate::new("Smoking", ["Yes"]),
            responsibility: 0.75,
            contingency: None,
            original_delta: 1.5,
            remaining_delta: Some(0.25),
        }
    }

    #[test]
    fn explain_request_round_trips_through_query_json() {
        let body = format!("{{\"model\":\"flight\",\"query\":{}}}", query().to_json());
        let parsed = ExplainV1::parse(body.as_bytes()).unwrap();
        assert_eq!(parsed.model, "flight");
        assert_eq!(parsed.query, query());
    }

    #[test]
    fn batch_request_preserves_order_and_validates() {
        let q = query().to_json();
        let body = format!("{{\"model\":\"m\",\"queries\":[{q},{q}]}}");
        let parsed = ExplainBatchV1::parse(body.as_bytes()).unwrap();
        assert_eq!(parsed.queries.len(), 2);
        assert!(ExplainBatchV1::parse(b"{\"model\":\"m\",\"queries\":[]}").is_err());
        assert!(ExplainBatchV1::parse(b"{\"model\":\"\",\"queries\":[]}").is_err());
        assert!(ExplainV1::parse(b"not json").is_err());
        assert!(ExplainV1::parse(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn oversized_batches_are_rejected() {
        let q = query().to_json();
        let queries = vec![q; MAX_BATCH_QUERIES + 1].join(",");
        let body = format!("{{\"model\":\"m\",\"queries\":[{queries}]}}");
        let err = ExplainBatchV1::parse(body.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn v2_request_parses_every_option() {
        let body = format!(
            "{{\"model\":\"m\",\"query\":{},\"options\":{{\
             \"top_k\":3,\"min_score\":0.25,\"types\":[\"non-causal\",\"causal\",\"causal\"],\
             \"parallel\":false,\"deadline_ms\":250,\"include_provenance\":true}}}}",
            query().to_json()
        );
        let parsed = ExplainV2::parse(body.as_bytes()).unwrap();
        assert_eq!(parsed.model, "m");
        assert_eq!(parsed.options.top_k, Some(3));
        assert_eq!(parsed.options.min_score, Some(0.25));
        assert_eq!(
            parsed.options.types,
            Some(vec![ExplanationType::Causal, ExplanationType::NonCausal])
        );
        assert_eq!(parsed.options.parallel, Some(false));
        assert_eq!(parsed.options.deadline_ms, Some(250));
        assert!(parsed.options.include_provenance);

        let engine_request = parsed.options.to_engine_request(parsed.query.clone());
        assert_eq!(engine_request.top_k(), Some(3));
        assert_eq!(engine_request.deadline(), Some(Duration::from_millis(250)));
        assert!(engine_request.include_provenance());
    }

    #[test]
    fn v2_options_are_optional_and_validated() {
        let body = format!("{{\"model\":\"m\",\"query\":{}}}", query().to_json());
        let parsed = ExplainV2::parse(body.as_bytes()).unwrap();
        assert_eq!(parsed.options, RequestOptions::default());
        assert!(parsed
            .options
            .to_engine_request(query())
            .has_default_options());

        let bad = |options: &str| {
            let body = format!(
                "{{\"model\":\"m\",\"query\":{},\"options\":{options}}}",
                query().to_json()
            );
            ExplainV2::parse(body.as_bytes()).unwrap_err().to_string()
        };
        assert!(bad("{\"top_k\":0}").contains("top_k"));
        assert!(bad("{\"types\":[]}").contains("types"));
        assert!(bad("{\"types\":[\"bogus\"]}").contains("bogus"));
        assert!(bad("{\"topk\":1}").contains("unknown option"));
        assert!(bad("[1]").contains("must be an object"));
    }

    #[test]
    fn v2_cache_keys_distinguish_result_shaping_options() {
        let keys: Vec<String> = [
            RequestOptions::default(),
            RequestOptions {
                top_k: Some(1),
                ..RequestOptions::default()
            },
            RequestOptions {
                top_k: Some(2),
                ..RequestOptions::default()
            },
            RequestOptions {
                min_score: Some(0.5),
                ..RequestOptions::default()
            },
            RequestOptions {
                types: Some(vec![ExplanationType::Causal]),
                ..RequestOptions::default()
            },
            RequestOptions {
                deadline_ms: Some(100),
                ..RequestOptions::default()
            },
        ]
        .iter()
        .map(RequestOptions::cache_key)
        .collect();
        let distinct: std::collections::HashSet<&String> = keys.iter().collect();
        assert_eq!(distinct.len(), keys.len(), "keys must not alias: {keys:?}");
        // `parallel` and `include_provenance` do not shape the cached
        // payload and share the default key.
        let envelope_only = RequestOptions {
            parallel: Some(false),
            include_provenance: true,
            ..RequestOptions::default()
        };
        assert_eq!(
            envelope_only.cache_key(),
            RequestOptions::default().cache_key()
        );
        // v1 keys use the empty suffix; every v2 key is tagged.
        assert!(keys.iter().all(|k| k.starts_with("v2")));
    }

    #[test]
    fn ingest_requests_parse_and_validate_against_a_schema() {
        let body = br#"{"model":"m","rows":[
            {"City":"A","Sales":10.5},
            {"City":null,"Sales":2}
        ]}"#;
        let parsed = IngestV2::parse(body).unwrap();
        assert_eq!(parsed.model, "m");
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(
            parsed.rows[0],
            vec![
                ("City".to_owned(), Value::Category("A".into())),
                ("Sales".to_owned(), Value::Number(10.5)),
            ]
        );
        assert_eq!(parsed.rows[1][0].1, Value::Null);
        // Structural validation at parse time.
        assert!(IngestV2::parse(b"{\"model\":\"m\",\"rows\":[]}").is_err());
        assert!(IngestV2::parse(b"{\"model\":\"m\",\"rows\":[1]}").is_err());
        assert!(IngestV2::parse(b"{\"model\":\"m\",\"rows\":[{\"X\":[1]}]}").is_err());

        // Schema validation when assembling the batch.
        let schema = {
            let data = xinsight_data::DatasetBuilder::new()
                .dimension("City", ["A"])
                .measure("Sales", [1.0])
                .build()
                .unwrap();
            data.schema().clone()
        };
        let batch = rows_to_dataset(&schema, &parsed.rows).unwrap();
        assert_eq!(batch.n_rows(), 2);
        assert_eq!(batch.value(0, "City").unwrap(), Value::Category("A".into()));
        assert!(batch.row_has_null(1));
        // Unknown attribute / missing attribute / wrong kind are rejected.
        let unknown = vec![vec![("Ghost".to_owned(), Value::Number(1.0))]];
        assert!(rows_to_dataset(&schema, &unknown).is_err());
        let missing = vec![vec![("City".to_owned(), Value::Category("A".into()))]];
        assert!(rows_to_dataset(&schema, &missing).is_err());
        let wrong_kind = vec![vec![
            ("City".to_owned(), Value::Number(1.0)),
            ("Sales".to_owned(), Value::Number(1.0)),
        ]];
        assert!(rows_to_dataset(&schema, &wrong_kind).is_err());
    }

    #[test]
    fn oversized_ingests_are_rejected() {
        let row = "{\"X\":\"a\"}";
        let rows = vec![row; MAX_INGEST_ROWS + 1].join(",");
        let body = format!("{{\"model\":\"m\",\"rows\":[{rows}]}}");
        assert!(IngestV2::parse(body.as_bytes())
            .unwrap_err()
            .to_string()
            .contains("exceeds"));
    }

    #[test]
    fn explanations_serialize_deterministically() {
        let json = explanations_to_string(&[explanation()]);
        assert_eq!(
            json,
            "[{\"type\":\"causal\",\"causal_role\":\"parent\",\
             \"predicate\":{\"attribute\":\"Smoking\",\"values\":[\"Yes\"]},\
             \"responsibility\":0.75,\"contingency\":null,\
             \"original_delta\":1.5,\"remaining_delta\":0.25}]"
        );
        // Envelope embeds the list verbatim.
        let envelope = explain_response("m", true, &json);
        assert!(envelope.starts_with("{\"model\":\"m\",\"cached\":true,\"explanations\":["));
        assert!(Json::parse(&envelope).is_ok());
    }

    #[test]
    fn batch_envelope_embeds_each_result() {
        let json: Arc<str> = Arc::from(explanations_to_string(&[explanation()]).as_str());
        let body = explain_batch_response("m", &[(true, Arc::clone(&json)), (false, json)]);
        let doc = Json::parse(&body).unwrap();
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].get("cached").unwrap().as_bool().unwrap());
        assert!(!results[1].get("cached").unwrap().as_bool().unwrap());
    }

    #[test]
    fn v2_envelopes_round_trip_and_embed_the_result_verbatim() {
        let response = ExplainResponse {
            explanations: vec![ScoredExplanation {
                rank: 1,
                score: 0.75,
                explanation: explanation(),
            }],
            truncated: true,
            deadline_hit: false,
            elapsed: Duration::from_micros(42),
            provenance: Some(Provenance {
                strategy_evaluations: vec![("avg-optimized".to_owned(), 7)],
                attributes_searched: 2,
                attributes_skipped: 0,
                selection_cache: xinsight_stats::CacheStats {
                    hits: 1,
                    misses: 2,
                    entries: 2,
                },
                ci_cache_fit_time: xinsight_stats::CacheStats::default(),
            }),
        };
        let result = v2_result_to_string(&response);
        let doc = Json::parse(&result).unwrap();
        assert!(doc.get("truncated").unwrap().as_bool().unwrap());
        let slot = doc.get("explanations").unwrap().as_arr().unwrap();
        assert_eq!(slot[0].get("rank").unwrap().as_u64().unwrap(), 1);
        assert_eq!(slot[0].get("score").unwrap().as_f64().unwrap(), 0.75);
        assert_eq!(
            slot[0].get("explanation").unwrap().to_string(),
            explanation_to_json(&explanation()).to_string()
        );

        let envelope =
            explain_v2_response("m", false, false, 42, response.provenance.as_ref(), &result);
        let doc = Json::parse(&envelope).unwrap();
        assert_eq!(doc.get("model").unwrap().as_str().unwrap(), "m");
        assert!(!doc.get("cached").unwrap().as_bool().unwrap());
        assert_eq!(doc.get("elapsed_us").unwrap().as_u64().unwrap(), 42);
        let provenance = doc.get("provenance").unwrap();
        assert_eq!(
            provenance
                .get("strategy_evaluations")
                .unwrap()
                .get("avg-optimized")
                .unwrap()
                .as_u64()
                .unwrap(),
            7
        );
        assert_eq!(doc.get("result").unwrap().to_string(), result);

        // Batch envelope: per-slot markers + verbatim results.
        let body = explain_batch_v2_response(
            "m",
            &[
                BatchSlotV2 {
                    cached: true,
                    deadline_hit: false,
                    provenance: None,
                    result: Arc::from(result.as_str()),
                },
                BatchSlotV2 {
                    cached: false,
                    deadline_hit: true,
                    provenance: response.provenance.clone(),
                    result: Arc::from(result.as_str()),
                },
            ],
        );
        let doc = Json::parse(&body).unwrap();
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].get("cached").unwrap().as_bool().unwrap());
        assert!(matches!(results[0].get("provenance").unwrap(), Json::Null));
        assert!(results[1].get("deadline_hit").unwrap().as_bool().unwrap());
        assert!(results[1]
            .get("provenance")
            .unwrap()
            .opt("attributes_searched")
            .is_some());
    }
}
