//! A dependency-free HTTP/1.1 subset: request parsing and response writing.
//!
//! The workspace builds offline — no tokio, no hyper — so the serving layer
//! hand-rolls the protocol over [`std::net::TcpStream`], the same way the
//! vendored shims hand-roll their upstream APIs.  The subset is exactly what
//! a JSON API needs: a request line, `\r\n`-terminated headers,
//! `Content-Length`-framed bodies, and keep-alive connections.  Everything
//! else (chunked encoding, continuations, upgrades) is rejected with a
//! structured error that the server maps to a `4xx` response.
//!
//! Parsing is defensive: header and body sizes are bounded
//! ([`MAX_HEAD_BYTES`], [`MAX_BODY_BYTES`]) so a hostile peer cannot balloon
//! memory, and a read timeout on an *idle* keep-alive connection surfaces as
//! [`HttpError::Idle`] so workers can poll their shutdown flag instead of
//! blocking forever.
//!
//! Two entry points share one parsing core:
//!
//! * [`RequestParser`] — a *push* parser for the event-driven server: feed
//!   it whatever bytes a non-blocking read produced, ask whether a complete
//!   request has been framed.  It never blocks and never touches a socket.
//! * [`read_request`] — the blocking *pull* wrapper over the same parser for
//!   synchronous callers (tests, simple clients).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target path (query strings are kept verbatim).
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased during parsing.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of a header, looked up case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// An outgoing HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON everywhere except `/metrics`, which serves
    /// Prometheus text exposition, and `/v2/graph`'s DOT/Mermaid text).
    pub body: String,
    /// The `Content-Type` the wire advertises.  A `&'static str` because
    /// the service only ever serves the few fixed types below.
    pub content_type: &'static str,
}

impl Response {
    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (the Prometheus exposition content type, used
    /// by `/metrics`).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
        }
    }

    /// A plain-text response with the generic `text/plain` content type
    /// (used by `/v2/graph`'s DOT and Mermaid renderings).
    pub fn plain(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A structured JSON error body: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        xinsight_core::json::Json::Str(message.to_owned()).write(&mut body);
        body.push('}');
        Response {
            status,
            body,
            content_type: "application/json",
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending any request bytes —
    /// the clean end of a keep-alive session.
    Closed,
    /// A read timed out before any request bytes arrived; the connection is
    /// idle and still usable.  Workers use this to poll their shutdown flag.
    Idle,
    /// The peer sent bytes that are not a valid request (the message is for
    /// the `400` response body).
    Malformed(String),
    /// The head or body exceeded its size bound (maps to `431`/`413`).
    TooLarge(&'static str),
    /// The underlying socket failed mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Idle => write!(f, "connection idle"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Once a request's first byte has arrived, the rest of it must arrive
/// within this budget; transient socket-timeout ticks inside that window
/// are retried rather than dropping the connection.
pub const REQUEST_DEADLINE: std::time::Duration = std::time::Duration::from_secs(10);

/// An incremental (push) HTTP/1.1 request parser.
///
/// The event-driven server owns one of these per connection: every
/// non-blocking read [`feed`](RequestParser::feed)s whatever bytes arrived,
/// then [`try_parse`](RequestParser::try_parse) either frames a complete
/// request, reports that more bytes are needed (`Ok(None)`), or rejects the
/// stream with a structured [`HttpError`].  Pipelined requests are
/// supported: bytes past the first complete request stay buffered for the
/// next `try_parse`.
///
/// The size bounds ([`MAX_HEAD_BYTES`], [`MAX_BODY_BYTES`]) are enforced
/// incrementally, so a hostile peer is rejected as soon as the bound is
/// exceeded — not once the full payload has been buffered.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Appends bytes read from the connection.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered bytes not yet consumed by a parsed request.
    /// Non-zero between requests means a *partial* request is in flight —
    /// the signal the event loop uses to arm its slow-loris deadline.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether no unconsumed bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Attempts to frame one complete request from the buffered bytes.
    ///
    /// Returns `Ok(None)` when the buffer holds only a prefix of a request;
    /// feeding more bytes and calling again resumes where it left off.  On
    /// `Ok(Some(_))` the request's bytes are consumed and any pipelined
    /// surplus remains buffered.  Errors are terminal for the connection.
    pub fn try_parse(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head_len) = find_head_end(&self.buf) else {
            // No blank line yet: either wait for more bytes or reject a
            // head that can no longer fit its bound.
            if self.buf.len() > MAX_HEAD_BYTES + 2 {
                return Err(HttpError::TooLarge("request head"));
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD_BYTES + 2 {
            return Err(HttpError::TooLarge("request head"));
        }
        let head = std::str::from_utf8(&self.buf[..head_len])
            .map_err(|_| HttpError::Malformed("non-utf8 in request head".into()))?;
        let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
        let (method, path) = parse_request_line(lines.next().unwrap_or(""))?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                break;
            }
            headers.push(parse_header_line(line)?);
        }
        let request = Request {
            method,
            path,
            headers,
            body: Vec::new(),
        };
        let length = body_length(&request)?;
        if self.buf.len() < head_len + length {
            return Ok(None); // body still arriving
        }
        let body = self.buf[head_len..head_len + length].to_vec();
        self.buf.drain(..head_len + length);
        Ok(Some(Request { body, ..request }))
    }
}

/// Byte offset one past the head terminator (the first empty line), or
/// `None` if the head is still incomplete.  Line framing is tolerant: lines
/// end at `\n`, an optional preceding `\r` is ignored.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0usize;
    for (i, byte) in buf.iter().enumerate() {
        if *byte != b'\n' {
            continue;
        }
        let line = &buf[line_start..i];
        if line.is_empty() || line == b"\r" {
            return Some(i + 1);
        }
        line_start = i + 1;
    }
    None
}

fn parse_request_line(line: &str) -> Result<(String, String), HttpError> {
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(HttpError::Malformed("bad request line".into())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    Ok((method.to_owned(), path.to_owned()))
}

fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::Malformed(format!("bad header line `{line}`")));
    };
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
}

/// Validates body framing headers and returns the declared body length.
fn body_length(request: &Request) -> Result<usize, HttpError> {
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported; frame bodies with content-length".into(),
        ));
    }
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }
    Ok(length)
}

/// Reads one request from a buffered connection (blocking wrapper over
/// [`RequestParser`]).
///
/// Distinguishes the clean cases a keep-alive server must handle: EOF
/// before any bytes ([`HttpError::Closed`]), a read timeout before any
/// bytes ([`HttpError::Idle`]), and everything else as malformed/IO
/// errors.  After the first byte, short read timeouts (the caller's idle
/// poll tick) are retried until [`REQUEST_DEADLINE`], so a slow or lossy
/// peer mid-request is not mistaken for an idle one.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, HttpError> {
    let mut parser = RequestParser::new();
    let mut deadline: Option<std::time::Instant> = None;
    loop {
        if let Some(request) = parser.try_parse()? {
            return Ok(request);
        }
        let chunk_len = match reader.fill_buf() {
            Ok([]) => {
                return Err(if parser.is_empty() {
                    HttpError::Closed
                } else {
                    HttpError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof mid-request",
                    ))
                })
            }
            Ok(chunk) => {
                parser.feed(chunk);
                chunk.len()
            }
            Err(e) if is_timeout(&e) => {
                if parser.is_empty() {
                    return Err(HttpError::Idle);
                }
                match deadline {
                    // Mid-request stall: keep waiting until the deadline.
                    Some(d) if std::time::Instant::now() >= d => return Err(HttpError::Io(e)),
                    _ => continue,
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        reader.consume(chunk_len);
        deadline.get_or_insert_with(|| std::time::Instant::now() + REQUEST_DEADLINE);
    }
}

/// The reason phrase for the status codes this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response into the exact bytes the wire carries; `close`
/// controls the `Connection` header (and tells the peer whether another
/// request may follow).
///
/// Head and body share one buffer deliberately: two separate writes would
/// trip Nagle + delayed-ACK into ~40–200 ms stalls per response.  The
/// event-driven server stages this buffer on the connection and drains it
/// as the socket reports writability.
pub fn encode_response(response: &Response, close: bool) -> Vec<u8> {
    let mut message = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    message.push_str(&response.body);
    message.into_bytes()
}

/// Writes a response in one blocking write (see [`encode_response`]).
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    stream.write_all(&encode_response(response, close))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::{TcpListener, TcpStream};

    /// Runs `parse` against raw bytes by pushing them through a real socket
    /// pair (the parser is typed against `BufReader<TcpStream>`).
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(raw).unwrap();
        drop(client); // EOF so body reads terminate deterministically
        let mut reader = BufReader::new(server);
        read_request(&mut reader)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_raw(b"POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/explain");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"body");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_get_without_body_and_connection_close() {
        let req = parse_raw(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_closed_not_an_error() {
        assert!(matches!(parse_raw(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn malformed_requests_are_structured() {
        assert!(matches!(
            parse_raw(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/9.9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_and_heads_are_rejected() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_raw(huge.as_bytes()),
            Err(HttpError::TooLarge("request body"))
        ));
        let mut head = String::from("GET / HTTP/1.1\r\n");
        head.push_str(&format!("X-Big: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES)));
        assert!(matches!(
            parse_raw(head.as_bytes()),
            Err(HttpError::TooLarge("request head"))
        ));
    }

    #[test]
    fn response_writing_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        write_response(&mut server, &Response::json(200, "{\"ok\":true}"), true).unwrap();
        drop(server);
        let mut text = String::new();
        BufReader::new(client).read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_responses_escape_the_message() {
        let resp = Response::error(400, "bad \"thing\"\n");
        assert_eq!(resp.body, "{\"error\":\"bad \\\"thing\\\"\\n\"}");
    }

    const WIRE: &[u8] = b"POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";

    #[test]
    fn incremental_parser_frames_across_arbitrary_splits() {
        // Feeding the same request one byte at a time, or split at every
        // possible boundary, must frame the identical request.
        for split in 0..=WIRE.len() {
            let mut parser = RequestParser::new();
            parser.feed(&WIRE[..split]);
            let early = parser.try_parse().unwrap();
            if split < WIRE.len() {
                assert!(early.is_none(), "complete before byte {split}?");
                parser.feed(&WIRE[split..]);
            }
            let req = match early {
                Some(req) => req,
                None => parser.try_parse().unwrap().expect("complete"),
            };
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/explain");
            assert_eq!(req.header("host"), Some("x"));
            assert_eq!(req.body, b"body");
            assert!(parser.is_empty());
        }
    }

    #[test]
    fn incremental_parser_handles_pipelined_requests() {
        let mut parser = RequestParser::new();
        let mut wire = WIRE.to_vec();
        wire.extend_from_slice(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
        parser.feed(&wire);
        let first = parser.try_parse().unwrap().expect("first framed");
        assert_eq!(first.path, "/explain");
        assert!(!parser.is_empty(), "second request stays buffered");
        let second = parser.try_parse().unwrap().expect("second framed");
        assert_eq!(second.path, "/stats");
        assert!(second.wants_close());
        assert!(parser.is_empty());
        assert!(parser.try_parse().unwrap().is_none());
    }

    #[test]
    fn incremental_parser_rejects_bad_streams_like_the_blocking_path() {
        let cases: &[&[u8]] = &[
            b"NOT-HTTP\r\n\r\n",
            b"GET / HTTP/9.9\r\n\r\n",
            b"GET / HTTP/1.1\r\nbadheader\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ];
        for raw in cases {
            let mut parser = RequestParser::new();
            parser.feed(raw);
            assert!(
                matches!(parser.try_parse(), Err(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
        // Oversized head is rejected *before* the terminator arrives.
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\nX-Big: ");
        parser.feed(&vec![b'a'; MAX_HEAD_BYTES + 1]);
        assert!(matches!(
            parser.try_parse(),
            Err(HttpError::TooLarge("request head"))
        ));
    }

    #[test]
    fn encode_response_matches_write_response_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        let resp = Response::json(200, "{\"n\":1}");
        write_response(&mut server, &resp, false).unwrap();
        drop(server);
        let mut streamed = Vec::new();
        BufReader::new(client).read_to_end(&mut streamed).unwrap();
        assert_eq!(streamed, encode_response(&resp, false));
    }
}
