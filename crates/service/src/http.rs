//! A dependency-free HTTP/1.1 subset: request parsing and response writing.
//!
//! The workspace builds offline — no tokio, no hyper — so the serving layer
//! hand-rolls the protocol over [`std::net::TcpStream`], the same way the
//! vendored shims hand-roll their upstream APIs.  The subset is exactly what
//! a JSON API needs: a request line, `\r\n`-terminated headers,
//! `Content-Length`-framed bodies, and keep-alive connections.  Everything
//! else (chunked encoding, continuations, upgrades) is rejected with a
//! structured error that the server maps to a `4xx` response.
//!
//! Parsing is defensive: header and body sizes are bounded
//! ([`MAX_HEAD_BYTES`], [`MAX_BODY_BYTES`]) so a hostile peer cannot balloon
//! memory, and a read timeout on an *idle* keep-alive connection surfaces as
//! [`HttpError::Idle`] so workers can poll their shutdown flag instead of
//! blocking forever.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target path (query strings are kept verbatim).
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased during parsing.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of a header, looked up case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// An outgoing HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON in this service).
    pub body: String,
}

impl Response {
    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
        }
    }

    /// A structured JSON error body: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        xinsight_core::json::Json::Str(message.to_owned()).write(&mut body);
        body.push('}');
        Response { status, body }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending any request bytes —
    /// the clean end of a keep-alive session.
    Closed,
    /// A read timed out before any request bytes arrived; the connection is
    /// idle and still usable.  Workers use this to poll their shutdown flag.
    Idle,
    /// The peer sent bytes that are not a valid request (the message is for
    /// the `400` response body).
    Malformed(String),
    /// The head or body exceeded its size bound (maps to `431`/`413`).
    TooLarge(&'static str),
    /// The underlying socket failed mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Idle => write!(f, "connection idle"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Once a request's first byte has arrived, the rest of it must arrive
/// within this budget; transient socket-timeout ticks inside that window
/// are retried rather than dropping the connection.
pub const REQUEST_DEADLINE: std::time::Duration = std::time::Duration::from_secs(10);

/// Reads one request from a buffered connection.
///
/// Distinguishes the clean cases a keep-alive server must handle: EOF
/// before any bytes ([`HttpError::Closed`]), a read timeout before any
/// bytes ([`HttpError::Idle`]), and everything else as malformed/IO
/// errors.  After the first byte, short read timeouts (the server's idle
/// poll tick) are retried until [`REQUEST_DEADLINE`], so a slow or lossy
/// peer mid-request is not mistaken for an idle one.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, HttpError> {
    // Idle probe: wait (up to the socket's read timeout) for the first byte
    // without consuming it, so a timeout here provably loses no data.
    match reader.fill_buf() {
        Ok([]) => return Err(HttpError::Closed),
        Ok(_) => {}
        Err(e) if is_timeout(&e) => return Err(HttpError::Idle),
        Err(e) => return Err(HttpError::Io(e)),
    }
    let deadline = std::time::Instant::now() + REQUEST_DEADLINE;
    let mut line = String::new();
    match read_crlf_line(reader, &mut line, 0, deadline) {
        Ok(0) => return Err(HttpError::Closed),
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return Err(HttpError::TooLarge("request head"))
        }
        Err(e) => return Err(HttpError::Io(e)),
    }
    let mut head_bytes = line.len();
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_owned(), p.to_owned(), v),
        _ => return Err(HttpError::Malformed("bad request line".into())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version `{version}`"
        )));
    }

    let mut headers = Vec::new();
    loop {
        line.clear();
        match read_crlf_line(reader, &mut line, head_bytes, deadline) {
            Ok(0) => return Err(HttpError::Malformed("eof inside headers".into())),
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                return Err(HttpError::TooLarge("request head"))
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
        head_bytes += line.len();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported; frame bodies with content-length".into(),
        ));
    }
    let length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length `{v}`")))?,
    };
    if length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }
    let mut body = vec![0u8; length];
    let mut filled = 0usize;
    while filled < length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(HttpError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside body",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) && std::time::Instant::now() < deadline => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(Request { body, ..request })
}

/// Reads one `\r\n`-terminated line into `out` (terminator stripped),
/// returning the number of raw bytes consumed.  Enforces
/// [`MAX_HEAD_BYTES`] against `already_read + line` via an `InvalidData`
/// error, and retries short read timeouts until `deadline` (the partial
/// line accumulates across retries, so no bytes are lost).
fn read_crlf_line(
    reader: &mut BufReader<TcpStream>,
    out: &mut String,
    already_read: usize,
    deadline: std::time::Instant,
) -> std::io::Result<usize> {
    let mut raw = Vec::new();
    let limit = (MAX_HEAD_BYTES - already_read.min(MAX_HEAD_BYTES)) + 2;
    loop {
        let take = (limit - raw.len().min(limit)) as u64;
        match reader.by_ref().take(take).read_until(b'\n', &mut raw) {
            Ok(_) => {}
            // `read_until` keeps already-appended bytes in `raw` on error,
            // so a timeout mid-line resumes exactly where it stopped.
            Err(e) if is_timeout(&e) && std::time::Instant::now() < deadline => continue,
            Err(e) => return Err(e),
        }
        if raw.ends_with(b"\n") {
            break;
        }
        if raw.len() >= limit {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "line exceeds head limit",
            ));
        }
        if raw.is_empty() {
            return Ok(0); // clean EOF before the line started
        }
        // EOF mid-line: surface as malformed via UnexpectedEof.
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "eof mid-line",
        ));
    }
    let read = raw.len();
    while raw.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
        raw.pop();
    }
    out.push_str(
        std::str::from_utf8(&raw)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 header"))?,
    );
    Ok(read)
}

/// The reason phrase for the status codes this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a response; `close` controls the `Connection` header (and tells
/// the peer whether another request may follow).
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    // One buffer, one write: head and body in separate segments would
    // trip Nagle + delayed-ACK into ~40–200 ms stalls per response.
    let mut message = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    message.push_str(&response.body);
    stream.write_all(message.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `parse` against raw bytes by pushing them through a real socket
    /// pair (the parser is typed against `BufReader<TcpStream>`).
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(raw).unwrap();
        drop(client); // EOF so body reads terminate deterministically
        let mut reader = BufReader::new(server);
        read_request(&mut reader)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_raw(b"POST /explain HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/explain");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"body");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_get_without_body_and_connection_close() {
        let req = parse_raw(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn clean_eof_is_closed_not_an_error() {
        assert!(matches!(parse_raw(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn malformed_requests_are_structured() {
        assert!(matches!(
            parse_raw(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/9.9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_and_heads_are_rejected() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse_raw(huge.as_bytes()),
            Err(HttpError::TooLarge("request body"))
        ));
        let mut head = String::from("GET / HTTP/1.1\r\n");
        head.push_str(&format!("X-Big: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES)));
        assert!(matches!(
            parse_raw(head.as_bytes()),
            Err(HttpError::TooLarge("request head"))
        ));
    }

    #[test]
    fn response_writing_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        write_response(&mut server, &Response::json(200, "{\"ok\":true}"), true).unwrap();
        drop(server);
        let mut text = String::new();
        BufReader::new(client).read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_responses_escape_the_message() {
        let resp = Response::error(400, "bad \"thing\"\n");
        assert_eq!(resp.body, "{\"error\":\"bad \\\"thing\\\"\\n\"}");
    }
}
