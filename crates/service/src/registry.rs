//! The model registry: warm, swappable [`XInsight`] engines, one per model.
//!
//! A serving process answers queries for many datasets/tenants.  Each is
//! packaged as a **bundle** — three flat files in the registry directory:
//!
//! * `<id>.csv` — the raw dataset (the engine re-applies its persisted
//!   discretizers on load, so the CSV stays the single source of truth),
//! * `<id>.model.json` — the [`FittedModel`] artifact saved by the offline
//!   phase,
//! * `<id>.meta.json` — bundle metadata: which columns are dimensions vs
//!   measures (CSV kind inference alone would mistake numeric-looking
//!   categories), example queries for smoke tests and load generation, and
//!   the fit-time CI-cache counters so `/stats` can report them even
//!   across persistence.
//!
//! [`ModelRegistry::open`] loads every bundle it finds and keeps the
//! reconstructed engines warm behind `Arc`s.  [`ModelRegistry::load`]
//! re-reads one bundle from disk and **atomically swaps** the new engine
//! into the map: requests already holding the old `Arc` finish against a
//! consistent model, new requests see the new one, and nothing blocks
//! while the (potentially slow) load runs — the write lock is held only
//! for the pointer swap.

// HashMap here never leaks iteration order into output: model map is key-looked-up only; /models output sorts explicitly (see clippy.toml).
#![allow(clippy::disallowed_types)]

use crate::demo_queries;
use crate::lru::SegmentRef;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use xinsight_core::json::Json;
use xinsight_core::pipeline::{XInsight, XInsightOptions};
use xinsight_core::{FittedModel, SelectionCache, WhyQuery};
use xinsight_data::{
    read_csv_str, write_csv_string, CsvOptions, DataError, Dataset, Result, Value,
};
use xinsight_stats::CacheStats;

/// Version stamp of the bundle metadata format (v2 added the `store`
/// section: segments / rows / epoch of the engine's segmented store at
/// save time).
pub const META_FORMAT_VERSION: u64 = 2;

/// One loaded model: the warm engine plus its serving metadata.
#[derive(Debug)]
pub struct LoadedModel {
    /// Registry id (the bundle file stem).
    pub id: String,
    /// The reconstructed engine, ready to answer queries.
    pub engine: XInsight,
    /// Rows served: the raw bundle rows, plus every row ingested since.
    pub n_rows: usize,
    /// Swap generation: 1 for the first load, +1 per hot-reload **and**
    /// per ingest (each swaps in a new engine, so LRU keys carrying the
    /// generation roll over either way).
    pub generation: u64,
    /// Example queries the bundle ships for smoke tests and load
    /// generation (may be empty).
    pub example_queries: Vec<WhyQuery>,
    /// Example raw rows (serialized JSON objects in the `/v2/ingest` row
    /// shape), derived from the bundle's dataset — ingest templates for
    /// smoke tests and mixed read/write load generation.
    pub example_rows: Vec<String>,
    /// Fit-time CI-test cache counters, restored from the bundle metadata.
    pub ci_cache_stats: CacheStats,
    /// The model's persistent per-segment partial-aggregate cache, shared
    /// across the snapshots of one store lineage: an ingest clones the
    /// `Arc` (the new engine replays every pre-ingest segment's masks and
    /// partials from it and computes only the new segment — the serving
    /// prefix-merge path), while a reload or compaction installs a fresh
    /// cache (the old segment identities are dead, so keeping the old map
    /// would only pin garbage).
    pub selection: Arc<SelectionCache>,
    /// The ordered `(segment id, seal epoch)` fingerprint of this
    /// snapshot's store — the result-cache scope of every answer computed
    /// against it (precomputed here so request handlers don't rebuild it).
    pub fingerprint: Vec<SegmentRef>,
    /// Total global-dictionary categories in this snapshot — the other
    /// half of the result-cache promotion check (a grown dictionary can
    /// move scores even when the new rows miss the query's subspaces).
    pub dict_len: usize,
}

/// Computes the store fingerprint of an engine snapshot.
fn fingerprint_of(engine: &XInsight) -> Vec<SegmentRef> {
    engine
        .data()
        .segments()
        .iter()
        .map(|s| (s.id(), s.epoch()))
        .collect()
}

/// What one completed compaction did, for LRU remapping and `/stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// The compacted model's id.
    pub model: String,
    /// Fingerprint of the snapshot that was compacted — result-cache
    /// entries computed against exactly this set can be remapped.
    pub old_fingerprint: Vec<SegmentRef>,
    /// Fingerprint of the installed snapshot (always one segment).
    pub new_fingerprint: Vec<SegmentRef>,
    /// Segment count before the rewrite.
    pub segments_before: usize,
    /// Segment count after the rewrite (always 1).
    pub segments_after: usize,
    /// Estimated heap bytes released by merging the per-segment columns
    /// and dictionary snapshots (saturating; an estimate, not an audit).
    pub bytes_reclaimed: usize,
    /// Microseconds spent in the off-lock segment rewrite.
    pub rewrite_us: u64,
    /// Microseconds spent validating and performing the pointer swap
    /// (swap-lock held).
    pub swap_us: u64,
}

/// What one completed ingest did, for the compactor/`/debug/traces` span
/// stream: where the wall time went between building the successor engine
/// and swapping it in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Microseconds spent materializing the new segment (swap-lock held —
    /// ingests are serialized by design).
    pub build_us: u64,
    /// Microseconds spent performing the pointer swap.
    pub swap_us: u64,
}

/// Thread-safe registry of loaded models, keyed by bundle id.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    options: XInsightOptions,
    models: RwLock<HashMap<String, Arc<LoadedModel>>>,
    /// Serializes engine swaps (bundle loads and ingests) per registry, so
    /// two concurrent ingests cannot both build on the same predecessor
    /// and silently drop one batch.  Readers never take it.
    swap_lock: Mutex<()>,
}

/// Bundle ids double as file stems and appear in wire requests, so they are
/// restricted to a filesystem- and URL-safe alphabet.
pub fn validate_model_id(id: &str) -> Result<()> {
    let ok = !id.is_empty()
        && id.len() <= 128
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(DataError::Serve(format!(
            "invalid model id `{id}` (use [A-Za-z0-9_-], at most 128 chars)"
        )))
    }
}

impl ModelRegistry {
    /// Opens a registry over a directory, loading every `*.meta.json`
    /// bundle found there.  A directory with no bundles is an error — a
    /// server with nothing to serve is a deployment mistake worth failing
    /// loudly on.
    pub fn open(dir: impl AsRef<Path>, options: XInsightOptions) -> Result<Self> {
        let registry = Self::open_empty(dir, options);
        let mut ids = Vec::new();
        let entries = std::fs::read_dir(&registry.dir).map_err(|e| {
            DataError::Serve(format!("reading model dir {}: {e}", registry.dir.display()))
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| DataError::Serve(format!("reading model dir: {e}")))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name.strip_suffix(".meta.json") {
                ids.push(id.to_owned());
            }
        }
        if ids.is_empty() {
            return Err(DataError::Serve(format!(
                "no model bundles (*.meta.json) in {}",
                registry.dir.display()
            )));
        }
        ids.sort();
        for id in &ids {
            registry.load(id)?;
        }
        Ok(registry)
    }

    /// Opens a registry with no loaded models (bundles are pulled in later
    /// via [`ModelRegistry::load`]); used by tests and the demo flow.
    pub fn open_empty(dir: impl AsRef<Path>, options: XInsightOptions) -> Self {
        ModelRegistry {
            dir: dir.as_ref().to_owned(),
            options,
            models: RwLock::new(HashMap::new()),
            swap_lock: Mutex::new(()),
        }
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn paths(&self, id: &str) -> (PathBuf, PathBuf, PathBuf) {
        bundle_paths(&self.dir, id)
    }

    /// Loads (or hot-reloads) one bundle from disk and atomically swaps it
    /// into the registry.  In-flight requests keep the `Arc` of the model
    /// they started with; the write lock is held only for the swap itself.
    pub fn load(&self, id: &str) -> Result<Arc<LoadedModel>> {
        validate_model_id(id)?;
        let (meta_path, model_path, csv_path) = self.paths(id);
        let meta = BundleMeta::load(&meta_path)?;
        if meta.id != id {
            return Err(DataError::Serve(format!(
                "bundle {} declares id `{}`",
                meta_path.display(),
                meta.id
            )));
        }
        let csv_text = std::fs::read_to_string(&csv_path)
            .map_err(|e| DataError::Serve(format!("reading {}: {e}", csv_path.display())))?;
        let csv_options = CsvOptions {
            force_dimensions: meta.dimensions.clone(),
            force_measures: meta.measures.clone(),
            ..CsvOptions::default()
        };
        let data = read_csv_str(&csv_text, &csv_options)?;
        let model = FittedModel::load(&model_path)?;
        let engine = XInsight::from_fitted(&data, model, &self.options)?;
        let example_rows = example_rows_of(&data, 4);
        let _guard = self.swap_lock.lock();
        let generation = self
            .models
            .read()
            .get(id)
            .map(|m| m.generation + 1)
            .unwrap_or(1);
        let fingerprint = fingerprint_of(&engine);
        let dict_len = engine.data().dictionary_len();
        let loaded = Arc::new(LoadedModel {
            id: id.to_owned(),
            engine,
            n_rows: data.n_rows(),
            generation,
            example_queries: meta.example_queries,
            example_rows,
            ci_cache_stats: meta.ci_cache_stats,
            selection: Arc::new(SelectionCache::new()),
            fingerprint,
            dict_len,
        });
        self.models
            .write()
            .insert(id.to_owned(), Arc::clone(&loaded));
        Ok(loaded)
    }

    /// Appends a validated batch of raw rows to one model's segmented
    /// store: builds a successor engine via
    /// [`XInsight::with_ingested`] (the fitted model is shared, only the
    /// new segment is materialized) and **atomically swaps** it in with a
    /// bumped generation.  In-flight requests holding the old `Arc` finish
    /// on their snapshot; nothing is invalidated — the new segment is pure
    /// growth.  Concurrent ingests and reloads are serialized by the
    /// registry's swap lock, so no batch is ever lost.
    ///
    /// The ingest is in-memory: it survives until the next
    /// [`ModelRegistry::load`] of the bundle (which restores the on-disk
    /// state).  Durable ingest would append to the bundle CSV; that is
    /// deliberately out of scope here.
    pub fn ingest(&self, id: &str, batch: &Dataset) -> Result<Arc<LoadedModel>> {
        self.ingest_with_report(id, batch).map(|(loaded, _)| loaded)
    }

    /// [`ModelRegistry::ingest`] plus an [`IngestReport`] attributing the
    /// wall time between the segment build and the pointer swap (feeds the
    /// ingest request's trace spans).
    pub fn ingest_with_report(
        &self,
        id: &str,
        batch: &Dataset,
    ) -> Result<(Arc<LoadedModel>, IngestReport)> {
        let _guard = self.swap_lock.lock();
        let current = self
            .get(id)
            .ok_or_else(|| DataError::Serve(format!("model `{id}` is not loaded")))?;
        let build_started = std::time::Instant::now();
        let engine = current.engine.with_ingested(batch)?;
        let fingerprint = fingerprint_of(&engine);
        let dict_len = engine.data().dictionary_len();
        let loaded = Arc::new(LoadedModel {
            id: id.to_owned(),
            engine,
            n_rows: current.n_rows + batch.n_rows(),
            generation: current.generation + 1,
            example_queries: current.example_queries.clone(),
            example_rows: current.example_rows.clone(),
            ci_cache_stats: current.ci_cache_stats,
            // The lineage is unchanged, so the partial cache stays valid:
            // the successor engine replays the old segments and computes
            // only the new one.
            selection: Arc::clone(&current.selection),
            fingerprint,
            dict_len,
        });
        let swap_started = std::time::Instant::now();
        let build_us = swap_started.duration_since(build_started).as_micros() as u64;
        self.models
            .write()
            .insert(id.to_owned(), Arc::clone(&loaded));
        let swap_us = swap_started.elapsed().as_micros() as u64;
        Ok((loaded, IngestReport { build_us, swap_us }))
    }

    /// Compacts one model's segmented store: rewrites its sealed segments
    /// into a single merged segment (a pure rewrite of immutable data —
    /// same rows, same order, same dictionary codes, byte-identical
    /// answers) and atomically swaps the rewritten engine in with a bumped
    /// generation and a fresh partial cache.
    ///
    /// The expensive rewrite runs **off** the swap lock; the lock is taken
    /// only to validate that the model was not reloaded or ingested into
    /// meanwhile (in which case the rewrite is discarded and `Ok(None)` is
    /// returned — the caller simply retries on its next cycle) and to
    /// perform the pointer swap.  In-flight requests holding the old `Arc`
    /// finish on their snapshot.  Returns `Ok(None)` without doing any
    /// work when the store already has at most one segment.
    pub fn compact(&self, id: &str) -> Result<Option<CompactionReport>> {
        self.compact_with_fault(id, || {})
    }

    /// [`ModelRegistry::compact`] with a fault-injection hook for crash
    /// tests: `fault` runs after the off-lock rewrite and before the swap
    /// is validated — the widest window in which a compactor can die with
    /// work in hand.  A panicking hook unwinds out of this call with the
    /// registry untouched: the partial rewrite is dropped, no lock is
    /// poisoned, and the next call starts clean.
    pub fn compact_with_fault(
        &self,
        id: &str,
        fault: impl FnOnce(),
    ) -> Result<Option<CompactionReport>> {
        let Some(current) = self.get(id) else {
            return Err(DataError::Serve(format!("model `{id}` is not loaded")));
        };
        if current.engine.data().n_segments() <= 1 {
            return Ok(None);
        }
        let bytes = |engine: &XInsight| -> usize {
            engine
                .data()
                .segments()
                .iter()
                .map(|s| s.approx_bytes())
                .sum()
        };
        let bytes_before = bytes(&current.engine);
        let rewrite_started = std::time::Instant::now();
        let engine = current.engine.with_compacted()?;
        let rewrite_us = rewrite_started.elapsed().as_micros() as u64;
        let bytes_after = bytes(&engine);
        fault();
        let mut report = CompactionReport {
            model: id.to_owned(),
            old_fingerprint: current.fingerprint.clone(),
            new_fingerprint: fingerprint_of(&engine),
            segments_before: current.engine.data().n_segments(),
            segments_after: engine.data().n_segments(),
            bytes_reclaimed: bytes_before.saturating_sub(bytes_after),
            rewrite_us,
            swap_us: 0,
        };
        let dict_len = engine.data().dictionary_len();
        let swap_started = std::time::Instant::now();
        let _guard = self.swap_lock.lock();
        let latest = self
            .get(id)
            .ok_or_else(|| DataError::Serve(format!("model `{id}` is not loaded")))?;
        if !Arc::ptr_eq(&latest, &current) {
            // The model moved on (ingest or reload) while we rewrote: the
            // rewrite is stale — discard it and let the next cycle retry.
            return Ok(None);
        }
        let loaded = Arc::new(LoadedModel {
            id: id.to_owned(),
            engine,
            n_rows: current.n_rows,
            generation: current.generation + 1,
            example_queries: current.example_queries.clone(),
            example_rows: current.example_rows.clone(),
            ci_cache_stats: current.ci_cache_stats,
            // A fresh cache: the compacted segment has a new identity, and
            // dropping the old map releases every pre-compaction partial.
            selection: Arc::new(SelectionCache::new()),
            fingerprint: report.new_fingerprint.clone(),
            dict_len,
        });
        self.models
            .write()
            .insert(id.to_owned(), Arc::clone(&loaded));
        report.swap_us = swap_started.elapsed().as_micros() as u64;
        Ok(Some(report))
    }

    /// The current engine for a model id, if loaded.
    pub fn get(&self, id: &str) -> Option<Arc<LoadedModel>> {
        self.models.read().get(id).cloned()
    }

    /// Loaded model ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.models.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Snapshots of every loaded model, sorted by id.
    pub fn models(&self) -> Vec<Arc<LoadedModel>> {
        let mut models: Vec<Arc<LoadedModel>> = self.models.read().values().cloned().collect();
        models.sort_by(|a, b| a.id.cmp(&b.id));
        models
    }

    /// Fits an engine on `data` and saves the result as a bundle in this
    /// registry's directory (without loading it — call
    /// [`ModelRegistry::load`] for that).  Returns the fitted engine.
    ///
    /// When `example_queries` is empty, a deterministic pool is derived
    /// from the dataset via [`demo_queries`] so every bundle ships
    /// queries for smoke tests and load generation.
    pub fn fit_and_save(
        &self,
        id: &str,
        data: &Dataset,
        example_queries: Vec<WhyQuery>,
    ) -> Result<XInsight> {
        let engine = XInsight::fit(data, &self.options)?;
        let queries = if example_queries.is_empty() {
            demo_queries(data, 8)?
        } else {
            example_queries
        };
        save_bundle(&self.dir, id, data, &engine, &queries)?;
        Ok(engine)
    }
}

/// Serializes the first `limit` raw rows of a dataset as `/v2/ingest`-shaped
/// JSON row objects — the ingest templates `GET /models` advertises so wire
/// clients (smoke test, `loadgen --ingest-mix`) can write without knowing
/// the schema out of band.
fn example_rows_of(data: &Dataset, limit: usize) -> Vec<String> {
    (0..data.n_rows().min(limit))
        .map(|row| {
            let fields: Vec<(String, Json)> = data
                .schema()
                .iter()
                .map(|meta| {
                    let value = match data.value(row, &meta.name) {
                        Ok(Value::Category(s)) => Json::Str(s),
                        Ok(Value::Number(x)) => Json::Num(x),
                        _ => Json::Null,
                    };
                    (meta.name.clone(), value)
                })
                .collect();
            Json::Obj(fields).to_string()
        })
        .collect()
}

/// The three file paths of a bundle: `(meta, model, csv)`.
pub fn bundle_paths(dir: &Path, id: &str) -> (PathBuf, PathBuf, PathBuf) {
    (
        dir.join(format!("{id}.meta.json")),
        dir.join(format!("{id}.model.json")),
        dir.join(format!("{id}.csv")),
    )
}

/// Saves a fitted engine plus its dataset as a loadable bundle.
///
/// The model artifact is written through [`FittedModel::save`] (atomic
/// rename), so a hot-reloading server never observes a torn model file.
pub fn save_bundle(
    dir: &Path,
    id: &str,
    data: &Dataset,
    engine: &XInsight,
    example_queries: &[WhyQuery],
) -> Result<()> {
    validate_model_id(id)?;
    std::fs::create_dir_all(dir)
        .map_err(|e| DataError::Serve(format!("creating {}: {e}", dir.display())))?;
    let (meta_path, model_path, csv_path) = bundle_paths(dir, id);
    let csv = write_csv_string(data, &CsvOptions::default());
    std::fs::write(&csv_path, csv)
        .map_err(|e| DataError::Serve(format!("writing {}: {e}", csv_path.display())))?;
    engine.fitted_model().save(&model_path)?;
    let schema = data.schema();
    let meta = BundleMeta {
        id: id.to_owned(),
        dimensions: schema
            .dimension_names()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        measures: schema
            .measure_names()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        example_queries: example_queries.to_vec(),
        ci_cache_stats: engine.learner_result().ci_cache_stats,
        store: StoreMeta {
            segments: engine.data().n_segments(),
            rows: engine.data().n_rows(),
            epoch: engine.data().epoch(),
        },
    };
    std::fs::write(&meta_path, meta.to_json())
        .map_err(|e| DataError::Serve(format!("writing {}: {e}", meta_path.display())))
}

/// The segmented-store shape of the engine at bundle-save time, surfaced in
/// the bundle metadata so operators can see what a bundle holds without
/// loading it.  (A bundle's CSV is always re-loaded as one base segment;
/// ingested segments are in-memory and not persisted.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoreMeta {
    segments: usize,
    rows: usize,
    epoch: u64,
}

/// The decoded `<id>.meta.json` document.
#[derive(Debug, Clone, PartialEq)]
struct BundleMeta {
    id: String,
    dimensions: Vec<String>,
    measures: Vec<String>,
    example_queries: Vec<WhyQuery>,
    ci_cache_stats: CacheStats,
    store: StoreMeta,
}

impl BundleMeta {
    fn to_json(&self) -> String {
        Json::Obj(vec![
            (
                "format_version".to_owned(),
                Json::Num(META_FORMAT_VERSION as f64),
            ),
            ("id".to_owned(), Json::Str(self.id.clone())),
            (
                "dimensions".to_owned(),
                Json::Arr(self.dimensions.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "measures".to_owned(),
                Json::Arr(self.measures.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "example_queries".to_owned(),
                Json::Arr(
                    self.example_queries
                        .iter()
                        .map(WhyQuery::to_json_value)
                        .collect(),
                ),
            ),
            (
                "ci_cache".to_owned(),
                Json::Obj(vec![
                    (
                        "hits".to_owned(),
                        Json::Num(self.ci_cache_stats.hits as f64),
                    ),
                    (
                        "misses".to_owned(),
                        Json::Num(self.ci_cache_stats.misses as f64),
                    ),
                ]),
            ),
            (
                "store".to_owned(),
                Json::Obj(vec![
                    ("segments".to_owned(), Json::Num(self.store.segments as f64)),
                    ("rows".to_owned(), Json::Num(self.store.rows as f64)),
                    ("epoch".to_owned(), Json::Num(self.store.epoch as f64)),
                ]),
            ),
        ])
        .to_string()
    }

    fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| DataError::Serve(format!("reading {}: {e}", path.display())))?;
        let doc = Json::parse(&text)?;
        let version = doc.get("format_version")?.as_u64()?;
        if version != META_FORMAT_VERSION {
            return Err(DataError::Serve(format!(
                "unsupported bundle meta version {version} (expected {META_FORMAT_VERSION})"
            )));
        }
        let ci = doc.get("ci_cache")?;
        let store = doc.get("store")?;
        Ok(BundleMeta {
            id: doc.get("id")?.as_str()?.to_owned(),
            dimensions: doc.get("dimensions")?.as_string_vec()?,
            measures: doc.get("measures")?.as_string_vec()?,
            example_queries: doc
                .get("example_queries")?
                .as_arr()?
                .iter()
                .map(WhyQuery::from_json_value)
                .collect::<Result<_>>()?,
            ci_cache_stats: CacheStats {
                hits: ci.get("hits")?.as_u64()?,
                misses: ci.get("misses")?.as_u64()?,
                entries: 0,
            },
            store: StoreMeta {
                segments: store.get("segments")?.as_u64()? as usize,
                rows: store.get("rows")?.as_u64()? as usize,
                epoch: store.get("epoch")?.as_u64()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xinsight_data::{Aggregate, DatasetBuilder, Subspace};

    fn tiny_data() -> Dataset {
        let mut loc = Vec::new();
        let mut smoking = Vec::new();
        let mut severity = Vec::new();
        for i in 0..120 {
            let a = i % 2 == 0;
            loc.push(if a { "A" } else { "B" });
            let smokes = if a { i % 10 < 8 } else { i % 10 < 2 };
            smoking.push(if smokes { "Yes" } else { "No" });
            severity.push(if smokes { 2.0 + (i % 3) as f64 } else { 1.0 });
        }
        DatasetBuilder::new()
            .dimension("Location", loc)
            .dimension("Smoking", smoking)
            .measure("Severity", severity)
            .build()
            .unwrap()
    }

    fn explain(engine: &XInsight, query: &WhyQuery) -> Vec<xinsight_core::Explanation> {
        engine
            .execute(&xinsight_core::ExplainRequest::new(query.clone()))
            .unwrap()
            .into_explanations()
    }

    fn tiny_query() -> WhyQuery {
        WhyQuery::new(
            "Severity",
            Aggregate::Avg,
            Subspace::of("Location", "A"),
            Subspace::of("Location", "B"),
        )
        .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xinsight_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trip_serves_identical_answers() {
        let dir = temp_dir("round_trip");
        let data = tiny_data();
        let options = XInsightOptions::default();
        let registry = ModelRegistry::open_empty(&dir, options.clone());
        let engine = registry
            .fit_and_save("tiny", &data, vec![tiny_query()])
            .unwrap();
        let direct = explain(&engine, &tiny_query());

        let reopened = ModelRegistry::open(&dir, options).unwrap();
        assert_eq!(reopened.ids(), vec!["tiny".to_owned()]);
        let loaded = reopened.get("tiny").unwrap();
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.n_rows, data.n_rows());
        assert_eq!(loaded.example_queries, vec![tiny_query()]);
        // Fit-time CI cache counters survive persistence.
        assert!(loaded.ci_cache_stats.lookups() > 0);
        assert_eq!(
            loaded.ci_cache_stats.misses,
            engine.learner_result().ci_cache_stats.misses
        );
        assert_eq!(explain(&loaded.engine, &tiny_query()), direct);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_reload_swaps_generations_and_keeps_old_arcs_valid() {
        let dir = temp_dir("reload");
        let data = tiny_data();
        let options = XInsightOptions::default();
        let registry = ModelRegistry::open_empty(&dir, options.clone());
        registry
            .fit_and_save("m", &data, vec![tiny_query()])
            .unwrap();
        let first = registry.load("m").unwrap();
        assert_eq!(first.generation, 1);
        let second = registry.load("m").unwrap();
        assert_eq!(second.generation, 2);
        // The old Arc still answers (in-flight requests are unaffected).
        assert_eq!(
            explain(&first.engine, &tiny_query()),
            explain(&second.engine, &tiny_query())
        );
        assert_eq!(registry.get("m").unwrap().generation, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_swaps_generation_and_grows_the_store() {
        let dir = temp_dir("ingest");
        let data = tiny_data();
        let registry = ModelRegistry::open_empty(&dir, XInsightOptions::default());
        registry
            .fit_and_save("m", &data, vec![tiny_query()])
            .unwrap();
        let first = registry.load("m").unwrap();
        assert_eq!(first.engine.data().n_segments(), 1);
        assert!(!first.example_rows.is_empty());
        // Ingest a small batch (here: a re-send of the first six raw rows).
        let batch = data
            .filter_rows(&xinsight_data::RowMask::from_bools(
                (0..data.n_rows()).map(|i| i < 6),
            ))
            .unwrap();
        let second = registry.ingest("m", &batch).unwrap();
        assert_eq!(second.generation, first.generation + 1);
        assert_eq!(second.engine.data().n_segments(), 2);
        assert_eq!(second.engine.data().epoch(), 1);
        assert_eq!(second.n_rows, first.n_rows + 6);
        assert_eq!(registry.get("m").unwrap().generation, second.generation);
        // The pre-ingest snapshot is untouched (in-flight requests finish
        // on the store they started with).
        assert_eq!(first.engine.data().n_segments(), 1);
        // A reload restores the on-disk state: ingest is in-memory.
        let reloaded = registry.load("m").unwrap();
        assert_eq!(reloaded.engine.data().n_segments(), 1);
        assert_eq!(reloaded.generation, second.generation + 1);
        // Ingesting into an unknown id is a structured error.
        assert!(registry.ingest("ghost", &batch).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn first_rows(data: &Dataset, n: usize) -> Dataset {
        data.filter_rows(&xinsight_data::RowMask::from_bools(
            (0..data.n_rows()).map(|i| i < n),
        ))
        .unwrap()
    }

    #[test]
    fn compaction_merges_segments_and_preserves_answers() {
        let dir = temp_dir("compact");
        let data = tiny_data();
        let registry = ModelRegistry::open_empty(&dir, XInsightOptions::default());
        registry
            .fit_and_save("m", &data, vec![tiny_query()])
            .unwrap();
        registry.load("m").unwrap();
        registry.ingest("m", &first_rows(&data, 6)).unwrap();
        let before = registry.ingest("m", &first_rows(&data, 4)).unwrap();
        assert_eq!(before.engine.data().n_segments(), 3);
        let baseline = explain(&before.engine, &tiny_query());

        let report = registry.compact("m").unwrap().expect("3 segments merge");
        assert_eq!(report.segments_before, 3);
        assert_eq!(report.segments_after, 1);
        assert_eq!(report.old_fingerprint, before.fingerprint);
        assert!(report.bytes_reclaimed > 0, "merged dictionaries shrink");

        let after = registry.get("m").unwrap();
        assert_eq!(after.generation, before.generation + 1);
        assert_eq!(after.fingerprint, report.new_fingerprint);
        assert_eq!(after.engine.data().n_segments(), 1);
        assert_eq!(after.n_rows, before.n_rows);
        // Compaction installs a fresh partial cache; ingest had shared it.
        assert!(!Arc::ptr_eq(&after.selection, &before.selection));
        // The rewrite is answer-preserving, and the old snapshot still
        // serves (in-flight requests are unaffected).
        assert_eq!(explain(&after.engine, &tiny_query()), baseline);
        assert_eq!(explain(&before.engine, &tiny_query()), baseline);
        // Already compact: a no-op.  Unknown id: a structured error.
        assert!(registry.compact("m").unwrap().is_none());
        assert!(registry.compact("ghost").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_compaction_rewrites_are_discarded() {
        let dir = temp_dir("compact_race");
        let data = tiny_data();
        let registry = ModelRegistry::open_empty(&dir, XInsightOptions::default());
        registry
            .fit_and_save("m", &data, vec![tiny_query()])
            .unwrap();
        registry.load("m").unwrap();
        registry.ingest("m", &first_rows(&data, 6)).unwrap();
        // An ingest lands in the window between the rewrite and the swap:
        // the finished rewrite no longer covers the store and must be
        // discarded, keeping the raced-in batch.
        let raced = registry
            .compact_with_fault("m", || {
                registry.ingest("m", &first_rows(&data, 4)).unwrap();
            })
            .unwrap();
        assert!(raced.is_none(), "stale rewrite must be discarded");
        let current = registry.get("m").unwrap();
        assert_eq!(current.engine.data().n_segments(), 3);
        assert_eq!(current.n_rows, data.n_rows() + 10);
        // The next cycle compacts the post-race store just fine.
        let report = registry.compact("m").unwrap().expect("retry succeeds");
        assert_eq!(report.segments_before, 3);
        assert_eq!(registry.get("m").unwrap().n_rows, data.n_rows() + 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_ids_and_missing_bundles_are_structured_errors() {
        let dir = temp_dir("errors");
        let registry = ModelRegistry::open_empty(&dir, XInsightOptions::default());
        assert!(registry.load("../escape").is_err());
        assert!(registry.load("").is_err());
        assert!(registry.load("no_such_model").is_err());
        assert!(validate_model_id("ok-id_3").is_ok());
        assert!(validate_model_id("bad/id").is_err());
        // Opening an empty directory is a loud failure.
        assert!(ModelRegistry::open(&dir, XInsightOptions::default()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_id_mismatch_is_rejected() {
        let dir = temp_dir("mismatch");
        let data = tiny_data();
        let registry = ModelRegistry::open_empty(&dir, XInsightOptions::default());
        registry
            .fit_and_save("real", &data, vec![tiny_query()])
            .unwrap();
        // Copy the bundle under a different stem: the declared id no longer
        // matches.
        for suffix in [".meta.json", ".model.json", ".csv"] {
            std::fs::copy(
                dir.join(format!("real{suffix}")),
                dir.join(format!("fake{suffix}")),
            )
            .unwrap();
        }
        assert!(registry.load("fake").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
