//! The readiness-driven event loop: one thread that owns every socket.
//!
//! ## Why an event loop
//!
//! The previous transport was thread-per-request-in-a-pool: a worker thread
//! *was* a connection slot, so live connections were capped at the pool
//! size and idle keep-alives had to be shed to avoid starving admitted
//! work.  Here the transport inverts: **all** socket I/O happens on one
//! event-loop thread over non-blocking sockets and a [`polling::Poller`]
//! (epoll(7) on Linux, poll(2) fallback), so thousands of idle keep-alive
//! connections park in the kernel at zero thread cost, and the worker pool
//! only ever sees fully-parsed requests.
//!
//! ## Per-connection state machine
//!
//! ```text
//!  accept ──▶ Reading ──complete request──▶ Dispatched ──completion──▶ Writing
//!               ▲  │                        (job queue,                  │
//!               │  └─ partial + deadline ──▶ 408 + close)  flushed ──────┤
//!               │                                                        │
//!               └──────────────── keep-alive (idle, parked in kernel) ◀──┘
//! ```
//!
//! * **Reading** — readable events append bytes to the connection's
//!   [`RequestParser`]; a framed request is dispatched onto the bounded
//!   job queue (`503` + close when the queue is full: backpressure is
//!   per-*request* now, not per-connection).
//! * **Dispatched** — the connection is disarmed (no readiness interest)
//!   while its request runs on a worker; the worker pushes a completion
//!   and wakes the loop via [`polling::Poller::notify`].
//! * **Writing** — the encoded response is staged on the connection and
//!   drained as the socket reports writability (one optimistic write
//!   first, so the common case costs no extra poll round trip).
//!
//! Registrations are oneshot: after every event the loop re-arms exactly
//! the interest the state machine wants next.  Poller keys pack
//! `(generation << 32) | slot` so a late event or completion for a closed,
//! reused slot is recognized as stale and dropped.
//!
//! Timers are a sweep: every [`TICK`] the loop reaps partial requests past
//! the slow-loris deadline (`408`), parks/reaps idle connections past the
//! idle timeout, and refreshes the `parked_idle` gauge.
//!
//! **Shutdown drain**: when the flag flips, the listener closes, idle
//! connections are reaped, freshly parsed requests get `503` + close, and
//! the loop exits once every in-flight request has been answered and every
//! staged response flushed (or [`SHUTDOWN_DRAIN_GRACE`] expires).

use crate::http::{self, RequestParser, Response};
use crate::server::{Completion, Job, Shared};
use crate::trace::{Stage, TraceBuilder};
use polling::{Event, Events};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poller key reserved for the listener.  `usize::MAX` itself is the
/// poller's internal notify key; connection keys pack `(gen, slot)` and
/// can never reach either value (that would need slot `u32::MAX`).
const LISTENER_KEY: usize = usize::MAX - 1;

/// Sweep cadence: the upper bound on how stale the timeout checks and the
/// `parked_idle` gauge can be.  Also the poller wait timeout, so a fully
/// idle server wakes ~20×/s to re-check the shutdown flag.
const TICK: Duration = Duration::from_millis(50);

/// After shutdown begins, in-flight requests and staged writes get this
/// long to drain before remaining connections are force-closed.
const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Per-event read chunk; a request larger than this simply takes several
/// readable events to arrive.
const READ_CHUNK: usize = 16 * 1024;

fn key_of(slot: usize, gen: u32) -> usize {
    (((gen as u64) << 32) | slot as u64) as usize
}

fn slot_of(key: usize) -> usize {
    (key as u64 & 0xffff_ffff) as usize
}

/// The trace of a completed request riding back through the event loop:
/// the worker's spans plus the write stage the loop itself is about to
/// time (staged → last byte handed to the kernel).
struct PendingWrite {
    trace: TraceBuilder,
    staged_at: Instant,
}

/// One connection's state, owned entirely by the event loop.
struct Conn {
    stream: TcpStream,
    gen: u32,
    parser: RequestParser,
    write_buf: Vec<u8>,
    written: usize,
    /// A request from this connection is queued or running on a worker.
    inflight: bool,
    close_after_write: bool,
    peer_closed: bool,
    /// When the first byte of a not-yet-complete request arrived.
    partial_since: Option<Instant>,
    idle_since: Instant,
    /// When the first byte of the *next* request arrived — the trace
    /// epoch, so the parse span covers the whole read-and-frame window.
    first_byte: Option<Instant>,
    /// The trace of the staged response, finalized when it flushes.
    pending: Option<PendingWrite>,
}

impl Conn {
    fn new(stream: TcpStream, gen: u32) -> Conn {
        Conn {
            stream,
            gen,
            parser: RequestParser::new(),
            write_buf: Vec::new(),
            written: 0,
            inflight: false,
            close_after_write: false,
            peer_closed: false,
            partial_since: None,
            idle_since: Instant::now(),
            first_byte: None,
            pending: None,
        }
    }
}

struct EventLoop {
    shared: Arc<Shared>,
    listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    /// Slot generations, bumped on reuse; live on after a slot is freed so
    /// stale poller events and completions never alias a new connection.
    gens: Vec<u32>,
    free: Vec<usize>,
    open: usize,
    /// Jobs dispatched and not yet completed (counts jobs whose connection
    /// has since died too — their completions still come back).
    inflight_jobs: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
}

/// The event-loop thread body.  Exits once shutdown has drained.
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>) {
    let mut lp = EventLoop {
        shared,
        listener: Some(listener),
        conns: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        open: 0,
        inflight_jobs: 0,
        draining: false,
        drain_deadline: None,
    };
    if let Some(listener) = &lp.listener {
        if lp
            .shared
            .poller
            .add(listener, Event::readable(LISTENER_KEY))
            .is_err()
        {
            lp.shared.begin_shutdown();
            return;
        }
    }
    lp.run();
}

/// The connection in `slot`, if the slot exists and is occupied.  All slot
/// access goes through this (and [`conn_mut`]) — the event loop must never
/// index-panic on a stale slot delivered by a late event.  Free functions
/// rather than methods so the borrow stays on the `conns` slab alone and
/// callers keep `shared`/`free`/`poller` usable while the guard lives.
fn conn_ref(conns: &[Option<Conn>], slot: usize) -> Option<&Conn> {
    conns.get(slot).and_then(Option::as_ref)
}

fn conn_mut(conns: &mut [Option<Conn>], slot: usize) -> Option<&mut Conn> {
    conns.get_mut(slot).and_then(Option::as_mut)
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = Events::new();
        let mut last_sweep = Instant::now();
        loop {
            let wait_started = Instant::now();
            let _ = self.shared.poller.wait(&mut events, Some(TICK));
            self.shared
                .stats
                .loop_last_poll_wait_us
                // relaxed: single-writer gauge sampled by /stats; a stale
                // read costs nothing and no other state hangs off it.
                .store(wait_started.elapsed().as_micros() as u64, Ordering::Relaxed);
            if self.shared.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.enter_drain();
            }
            let ready: Vec<Event> = events.iter().collect();
            for ev in ready {
                if ev.key == LISTENER_KEY {
                    self.handle_accept();
                    continue;
                }
                let slot = slot_of(ev.key);
                let stale = self
                    .conns
                    .get(slot)
                    .and_then(|c| c.as_ref())
                    .is_none_or(|c| key_of(slot, c.gen) != ev.key);
                if stale {
                    continue;
                }
                if ev.writable {
                    self.flush(slot);
                }
                if ev.readable {
                    self.handle_readable(slot);
                }
                self.settle(slot);
            }
            self.drain_completions();
            if last_sweep.elapsed() >= TICK {
                self.sweep();
                last_sweep = Instant::now();
            }
            if self.draining && self.drained() {
                break;
            }
        }
        for slot in 0..self.conns.len() {
            self.close(slot, false);
        }
    }

    /// Whether shutdown can finish: no request is on a worker and no
    /// response is still making its way onto the wire.
    fn drained(&self) -> bool {
        if self.drain_deadline.is_some_and(|d| Instant::now() >= d) {
            return true;
        }
        self.inflight_jobs == 0
            && self
                .conns
                .iter()
                .flatten()
                .all(|c| c.write_buf.is_empty() && !c.inflight)
    }

    fn enter_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + SHUTDOWN_DRAIN_GRACE);
        if let Some(listener) = self.listener.take() {
            let _ = self.shared.poller.delete(&listener);
        }
        // Reap everything idle right away; busy connections finish their
        // request (the response carries `Connection: close`).
        for slot in 0..self.conns.len() {
            let idle =
                conn_ref(&self.conns, slot).is_some_and(|c| !c.inflight && c.write_buf.is_empty());
            if idle {
                self.close(slot, false);
            }
        }
    }

    fn handle_accept(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.shared
                        .stats
                        .conn_accepted
                        // relaxed: monotonic stats counter; readers only
                        // ever see it lag, never go backwards.
                        .fetch_add(1, Ordering::Relaxed);
                    if self.open >= self.shared.max_connections {
                        // relaxed: both are monotonic shed counters for
                        // /stats; no ordering edge with connection state.
                        self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        self.shared.stats.conn_shed.fetch_add(1, Ordering::Relaxed);
                        // Accepted sockets don't inherit non-blocking; the
                        // send buffer is empty, so this cannot stall.
                        let mut stream = stream;
                        let goodbye = Response::error(503, "connection limit reached, retry later");
                        let _ = stream.write_all(&http::encode_response(&goodbye, true));
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let (slot, gen) = match self.free.pop() {
                        Some(slot) => match self.gens.get_mut(slot) {
                            Some(gen) => {
                                *gen = gen.wrapping_add(1);
                                (slot, *gen)
                            }
                            // A free-list entry past the slab would be a
                            // bookkeeping bug; drop the socket, don't panic.
                            None => continue,
                        },
                        None => {
                            self.conns.push(None);
                            self.gens.push(0);
                            (self.conns.len() - 1, 0)
                        }
                    };
                    let conn = Conn::new(stream, gen);
                    if self
                        .shared
                        .poller
                        .add(&conn.stream, Event::readable(key_of(slot, gen)))
                        .is_err()
                    {
                        self.free.push(slot);
                        continue;
                    }
                    match self.conns.get_mut(slot) {
                        Some(entry) => *entry = Some(conn),
                        None => {
                            // `free` and `conns` disagree — unreachable, but
                            // undo the poller registration instead of
                            // panicking the accept path.
                            let _ = self.shared.poller.delete(&conn.stream);
                            self.free.push(slot);
                            continue;
                        }
                    }
                    self.open += 1;
                    self.shared
                        .stats
                        .conn_active
                        // relaxed: live-connection gauge for /stats only.
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept error (ECONNABORTED, fd pressure…):
                // drop it and keep serving.
                Err(_) => break,
            }
        }
        if let Some(listener) = &self.listener {
            if self
                .shared
                .poller
                .modify(listener, Event::readable(LISTENER_KEY))
                .is_err()
            {
                // Cannot re-arm accepts: nothing new will ever arrive.
                self.shared.begin_shutdown();
            }
        }
    }

    fn handle_readable(&mut self, slot: usize) {
        let Some(conn) = conn_mut(&mut self.conns, slot) else {
            return;
        };
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    if conn.first_byte.is_none() {
                        conn.first_byte = Some(Instant::now());
                    }
                    // `read` never returns more than the buffer holds, but
                    // the event loop does not index on an io contract.
                    if let Some(chunk) = buf.get(..n) {
                        conn.parser.feed(chunk);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot, false);
                    return;
                }
            }
        }
        self.advance(slot);
        let Some(conn) = conn_mut(&mut self.conns, slot) else {
            return;
        };
        if conn.peer_closed {
            if conn.inflight || !conn.write_buf.is_empty() {
                // Half-close: the peer stopped sending but may still read
                // the response; finish it, then close.
                conn.close_after_write = true;
            } else {
                self.close(slot, false);
            }
        }
    }

    /// Tries to frame and dispatch the next request from the connection's
    /// buffered bytes (one request in flight per connection at a time;
    /// pipelined surplus waits for the response to flush).
    fn advance(&mut self, slot: usize) {
        let Some(conn) = conn_mut(&mut self.conns, slot) else {
            return;
        };
        if conn.inflight || !conn.write_buf.is_empty() {
            return;
        }
        match conn.parser.try_parse() {
            Ok(Some(request)) => {
                conn.partial_since = None;
                let framed = Instant::now();
                // The epoch is the first byte's arrival; a fully buffered
                // pipelined follow-up frames instantly, so `now` is right.
                let epoch = conn.first_byte.take().unwrap_or(framed);
                conn.close_after_write |= request.wants_close();
                if self.draining {
                    self.stage_close(slot, &Response::error(503, "server is shutting down"));
                    return;
                }
                let gen = conn.gen;
                // A worker that panicked mid-queue poisons the mutex; the
                // queue itself is still coherent, so keep serving.
                let mut jobs = self
                    .shared
                    .jobs
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if jobs.len() >= self.shared.queue_capacity {
                    drop(jobs);
                    // relaxed: monotonic shed counters for /stats; no
                    // ordering edge with the admission decision itself.
                    self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    self.shared.stats.conn_shed.fetch_add(1, Ordering::Relaxed);
                    self.stage_close(
                        slot,
                        &Response::error(503, "admission queue is full, retry later"),
                    );
                    return;
                }
                let mut trace = TraceBuilder::begin(
                    self.shared.traces.next_id(),
                    epoch,
                    crate::trace::endpoint_label(&request.method, &request.path),
                );
                trace.span(Stage::Parse, epoch, framed, "");
                jobs.push_back(Job {
                    slot,
                    gen,
                    request,
                    admitted: Instant::now(),
                    trace,
                });
                drop(jobs);
                self.inflight_jobs += 1;
                conn.inflight = true;
                self.shared.available.notify_one();
            }
            Ok(None) => {
                if conn.parser.is_empty() {
                    conn.partial_since = None;
                } else if conn.partial_since.is_none() {
                    conn.partial_since = Some(Instant::now());
                }
            }
            Err(e) => {
                self.shared
                    .stats
                    .client_errors
                    // relaxed: monotonic error counter for /stats.
                    .fetch_add(1, Ordering::Relaxed);
                let response = match e {
                    http::HttpError::Malformed(message) => Response::error(400, &message),
                    // Static messages: the framing path stays allocation-free
                    // even when rejecting oversized requests.
                    http::HttpError::TooLarge("request body") => {
                        Response::error(413, "request body too large")
                    }
                    http::HttpError::TooLarge(_) => Response::error(431, "request head too large"),
                    _ => Response::error(400, "bad request"),
                };
                self.stage_close(slot, &response);
            }
        }
    }

    /// Stages a response that terminates the connection after it flushes.
    fn stage_close(&mut self, slot: usize, response: &Response) {
        if let Some(conn) = conn_mut(&mut self.conns, slot) {
            conn.close_after_write = true;
        }
        self.stage(slot, response);
    }

    /// Encodes `response` onto the connection's write buffer and drains
    /// what the socket will take immediately.
    fn stage(&mut self, slot: usize, response: &Response) {
        let shutting = self.draining || self.shared.shutdown.load(Ordering::SeqCst);
        let Some(conn) = conn_mut(&mut self.conns, slot) else {
            return;
        };
        let close = conn.close_after_write || shutting;
        conn.close_after_write = close;
        conn.write_buf = http::encode_response(response, close);
        conn.written = 0;
        self.flush(slot);
    }

    /// Writes as much of the staged response as the socket accepts; on
    /// completion either closes or returns the connection to keep-alive
    /// (including dispatching a pipelined follow-up already buffered).
    fn flush(&mut self, slot: usize) {
        let Some(conn) = conn_mut(&mut self.conns, slot) else {
            return;
        };
        // `written` only ever advances by what `write` reported, so the
        // range stays in bounds; `.get` keeps that a local fact rather
        // than a panic site.
        while let Some(remaining) = conn.write_buf.get(conn.written..) {
            if remaining.is_empty() {
                break;
            }
            match conn.stream.write(remaining) {
                Ok(0) => {
                    self.close(slot, false);
                    return;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot, false);
                    return;
                }
            }
        }
        if conn.write_buf.is_empty() {
            return; // nothing was staged
        }
        conn.write_buf.clear();
        conn.written = 0;
        if let Some(pending) = conn.pending.take() {
            // The last response byte was handed to the kernel: the write
            // span closes and the finished trace is recorded (per-stage
            // histograms) and published (ring + slow reservoir).
            let now = Instant::now();
            let mut trace = pending.trace;
            trace.span(Stage::Write, pending.staged_at, now, "");
            let trace = trace.finish(now);
            self.shared.stats.record_trace(&trace);
            self.shared.traces.publish(trace);
        }
        if conn.close_after_write || conn.peer_closed {
            self.close(slot, false);
            return;
        }
        conn.idle_since = Instant::now();
        // A pipelined request may already be buffered in full.
        self.advance(slot);
    }

    /// Re-arms the oneshot readiness interest the connection's state wants
    /// next: writable while a response is staged, nothing while a request
    /// is on a worker, readable otherwise.
    fn settle(&mut self, slot: usize) {
        let Some(conn) = conn_ref(&self.conns, slot) else {
            return;
        };
        let key = key_of(slot, conn.gen);
        let interest = if !conn.write_buf.is_empty() {
            Event::writable(key)
        } else if conn.inflight {
            Event::none(key)
        } else {
            Event::readable(key)
        };
        if self.shared.poller.modify(&conn.stream, interest).is_err() {
            self.close(slot, false);
        }
    }

    /// Delivers worker completions: stage each response on its (still
    /// live, same-generation) connection and trigger any requested
    /// shutdown once the goodbye bytes are staged.
    fn drain_completions(&mut self) {
        // A poisoned completions mutex means a worker panicked after
        // pushing; the vector is still well-formed, so deliver what's there.
        let completed: Vec<Completion> = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for completion in completed {
            self.inflight_jobs = self.inflight_jobs.saturating_sub(1);
            let live = self
                .conns
                .get_mut(completion.slot)
                .and_then(|c| c.as_mut())
                .filter(|c| c.gen == completion.gen);
            match live {
                Some(conn) => {
                    conn.inflight = false;
                    if completion.shutdown_after {
                        conn.close_after_write = true;
                    }
                    // Staged before `stage()`: the optimistic write inside
                    // it may drain the whole response synchronously, and
                    // `flush` finalizes the trace from this slot.
                    conn.pending = Some(PendingWrite {
                        trace: completion.trace,
                        staged_at: Instant::now(),
                    });
                    self.stage(completion.slot, &completion.response);
                    if completion.shutdown_after {
                        self.shared.begin_shutdown();
                    }
                    self.settle(completion.slot);
                }
                None => {
                    // The connection died while its request ran; the
                    // response has nowhere to go, but a shutdown request
                    // must still take effect.  The trace is still worth
                    // keeping (the work happened) — it just never gets a
                    // write span.
                    let now = Instant::now();
                    let mut trace = completion.trace;
                    trace.span(Stage::Write, now, now, "connection closed");
                    self.shared.traces.publish(trace.finish(now));
                    if completion.shutdown_after {
                        self.shared.begin_shutdown();
                    }
                }
            }
        }
    }

    /// The periodic timer pass: slow-loris deadlines, idle reaping, and
    /// the parked-idle gauge.
    fn sweep(&mut self) {
        let now = Instant::now();
        let mut parked = 0u64;
        self.shared
            .stats
            .loop_slots_occupied
            // relaxed: single-writer gauge sampled by /stats.
            .store(self.open as u64, Ordering::Relaxed);
        for slot in 0..self.conns.len() {
            let Some(conn) = conn_ref(&self.conns, slot) else {
                continue;
            };
            if conn.inflight || !conn.write_buf.is_empty() {
                continue;
            }
            if let Some(since) = conn.partial_since {
                // A partial request stalled past the deadline: slow-loris.
                if now.duration_since(since) >= self.shared.request_deadline {
                    self.shared
                        .stats
                        .read_timeouts
                        // relaxed: monotonic stats counter.
                        .fetch_add(1, Ordering::Relaxed);
                    self.stage_close(slot, &Response::error(408, "request timed out"));
                    self.settle(slot);
                }
                continue;
            }
            if now.duration_since(conn.idle_since) >= self.shared.idle_timeout {
                self.close(slot, true);
                continue;
            }
            parked += 1;
        }
        self.shared
            .stats
            .conn_parked_idle
            // relaxed: single-writer gauge sampled by /stats.
            .store(parked, Ordering::Relaxed);
        self.shared
            .stats
            .loop_last_tick_us
            // relaxed: single-writer gauge sampled by /stats.
            .store(now.elapsed().as_micros() as u64, Ordering::Relaxed);
        // relaxed: monotonic tick counter; liveness probes tolerate lag.
        self.shared.stats.loop_ticks.fetch_add(1, Ordering::Relaxed);
    }

    fn close(&mut self, slot: usize, shed: bool) {
        let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        if let Some(pending) = conn.pending.take() {
            // The response never fully flushed; keep the trace anyway so
            // aborted requests are visible in /debug/traces.
            let now = Instant::now();
            let mut trace = pending.trace;
            trace.span(Stage::Write, pending.staged_at, now, "connection closed");
            self.shared.traces.publish(trace.finish(now));
        }
        let _ = self.shared.poller.delete(&conn.stream);
        self.free.push(slot);
        self.open -= 1;
        self.shared
            .stats
            .conn_active
            // relaxed: live-connection gauge for /stats only.
            .fetch_sub(1, Ordering::Relaxed);
        if shed {
            // relaxed: monotonic shed counter for /stats.
            self.shared.stats.conn_shed.fetch_add(1, Ordering::Relaxed);
        }
    }
}
